//! Umbrella crate for the D2M (HPCA 2017) reproduction workspace.
//!
//! Re-exports every workspace crate so integration tests and examples can
//! use a single dependency. See the individual crates for the real APIs:
//!
//! * [`d2m_core`] — the split metadata/data hierarchy (the paper's contribution)
//! * [`d2m_baseline`] — Base-2L / Base-3L comparison systems
//! * [`d2m_sim`] — the trace-driven runner and metrics
//! * [`d2m_workloads`] — synthetic workloads calibrated to the paper's suites

pub use d2m_baseline as baseline;
pub use d2m_cache as cache;
pub use d2m_common as common;
pub use d2m_core as core;
pub use d2m_energy as energy;
pub use d2m_noc as noc;
pub use d2m_sim as sim;
pub use d2m_workloads as workloads;
