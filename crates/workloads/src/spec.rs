//! Workload specifications.
//!
//! A [`WorkloadSpec`] is a compact behavioural model of one benchmark. Both
//! the code and the data side use a **hot/warm/cold mixture**:
//!
//! * *hot* — a small per-thread working set that fits in the L1s (inner
//!   loops, stack, hot objects);
//! * *warm* — an LLC-scale set addressed at **region granularity** (a Zipf
//!   pick of a 1 KB region, then a line inside it), matching the spatial
//!   locality real programs exhibit and the paper's region metadata relies
//!   on;
//! * *cold* — uniform over the full footprint.
//!
//! Strided scans model streaming/blocked kernels. The mixture weights are
//! calibrated per suite against Table IV's L1 miss ratios (see
//! `DESIGN.md` §2), which are the workload properties every figure responds
//! to.

use d2m_common::{impl_json_enum, impl_json_struct};

/// The paper's five workload suites.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Category {
    /// Parsec (paper "Parallel").
    Parallel,
    /// Splash2x (paper "HPC").
    Hpc,
    /// Chrome browser / Telemetry sites (paper "Mobile").
    Mobile,
    /// SPEC CPU2006 multiprogrammed mixes (paper "Server").
    Server,
    /// TPC-C on MySQL/InnoDB (paper "Database").
    Database,
}

impl Category {
    /// All categories in the paper's figure order.
    pub const ALL: [Category; 5] = [
        Category::Parallel,
        Category::Hpc,
        Category::Mobile,
        Category::Server,
        Category::Database,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Category::Parallel => "Parallel",
            Category::Hpc => "HPC",
            Category::Mobile => "Mobile",
            Category::Server => "Server",
            Category::Database => "Database",
        }
    }
}

/// How threads share the shared data segment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sharing {
    /// No shared segment is ever touched (multiprogrammed workloads).
    None,
    /// Mostly-read sharing: all nodes read; rare writes by any node.
    ReadShared,
    /// Migratory: each shared chunk is read+written by one node at a time;
    /// ownership rotates between epochs.
    Migratory,
    /// Producer/consumer: even nodes write their chunks, odd nodes read them.
    ProducerConsumer,
}

/// Behavioural model of one benchmark (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name as it appears in the paper's figures.
    pub name: String,
    /// Suite the benchmark belongs to.
    pub category: Category,

    // ---- instruction side ----
    /// Total code footprint in cachelines (64 B each).
    pub code_lines: u64,
    /// Hot code (inner loops) in cachelines; should fit the 512-line L1-I.
    pub hot_code_lines: u64,
    /// Probability that a taken jump targets the hot code.
    pub p_hot_code: f64,
    /// Probability that an instruction fetch block ends in a taken jump.
    pub jump_prob: f64,
    /// Average instructions represented by one fetch event.
    pub insts_per_fetch: f64,

    // ---- data side ----
    /// Fraction of instructions that are loads/stores.
    pub mem_op_frac: f64,
    /// Fraction of data accesses that are stores.
    pub write_frac: f64,
    /// Per-thread hot data set in cachelines (L1-resident).
    pub hot_lines: u64,
    /// Probability of a hot-set access.
    pub p_hot: f64,
    /// Per-thread warm set in 16-line regions (LLC-resident).
    pub warm_regions: u64,
    /// Probability of a warm-set access (remainder after hot/stride = cold).
    pub p_warm: f64,
    /// Total per-thread private footprint in cachelines.
    pub private_lines: u64,
    /// Fraction of data accesses that follow a strided scan.
    pub stride_frac: f64,
    /// Scan stride in cachelines (power-of-two strides are the §IV-D
    /// "malicious" pattern).
    pub stride_lines: u64,

    // ---- sharing ----
    /// Shared data footprint in cachelines (whole program).
    pub shared_lines: u64,
    /// Fraction of data accesses that go to the shared segment.
    pub shared_frac: f64,
    /// Zipf skew for shared chunk/region reuse.
    pub data_zipf: f64,
    /// Sharing pattern for the shared segment.
    pub sharing: Sharing,
    /// True for multiprogrammed workloads: each node runs in its own address
    /// space (own ASID), so nothing is physically shared.
    pub multiprogrammed: bool,
    /// Epoch length (in generator batches) for migratory ownership.
    pub migratory_epoch: u64,
}

impl WorkloadSpec {
    /// A neutral starting spec for `category`, calibrated so the suite's
    /// mean L1 miss ratios land near Table IV.
    pub fn base(category: Category, name: &str) -> Self {
        let mut s = Self {
            name: name.to_string(),
            category,
            code_lines: 2_000,
            hot_code_lines: 380,
            p_hot_code: 0.998,
            jump_prob: 0.25,
            insts_per_fetch: 6.0,
            mem_op_frac: 0.33,
            write_frac: 0.3,
            hot_lines: 320,
            p_hot: 0.9815,
            warm_regions: 120,
            p_warm: 0.017,
            private_lines: 1 << 17, // 8 MB / thread
            stride_frac: 0.0,
            stride_lines: 1,
            shared_lines: 1 << 14, // 1 MB
            shared_frac: 0.05,
            data_zipf: 0.9,
            sharing: Sharing::ReadShared,
            multiprogrammed: false,
            migratory_epoch: 20_000,
        };
        match category {
            // Table IV targets (per 100 insts): I 0.2, D 1.9.
            Category::Parallel => {}
            // I ~0, D 2.2.
            Category::Hpc => {
                s.p_hot_code = 0.9995;
                s.hot_code_lines = 300;
                s.jump_prob = 0.2;
                s.p_hot = 0.979;
                s.p_warm = 0.0195;
                s.shared_frac = 0.06;
                s.sharing = Sharing::Migratory;
            }
            // I 2.2, D 1.3: browser-engine code dominates.
            Category::Mobile => {
                s.code_lines = 30_000;
                s.hot_code_lines = 420;
                s.p_hot_code = 0.975;
                s.p_hot = 0.987;
                s.p_warm = 0.0115;
                s.shared_frac = 0.04;
            }
            // I 0.4, D 3.6: multiprogrammed, bigger data appetite.
            Category::Server => {
                s.code_lines = 6_000;
                s.p_hot_code = 0.994;
                s.mem_op_frac = 0.36;
                s.p_hot = 0.9655;
                s.p_warm = 0.033;
                s.shared_frac = 0.0;
                s.sharing = Sharing::None;
                s.multiprogrammed = true;
            }
            // I 8.8, D 3.3: enormous instruction footprint.
            Category::Database => {
                s.code_lines = 120_000;
                s.hot_code_lines = 450;
                s.p_hot_code = 0.91;
                s.jump_prob = 0.5;
                s.p_hot = 0.968;
                s.p_warm = 0.030;
                s.shared_frac = 0.10;
                s.shared_lines = 1 << 17; // 8 MB buffer pool
                s.sharing = Sharing::Migratory;
                s.write_frac = 0.22;
            }
        }
        s
    }

    /// Sanity-checks the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        fn frac(name: &str, v: f64) -> Result<(), String> {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
            Ok(())
        }
        frac("jump_prob", self.jump_prob)?;
        frac("p_hot_code", self.p_hot_code)?;
        frac("mem_op_frac", self.mem_op_frac)?;
        frac("write_frac", self.write_frac)?;
        frac("shared_frac", self.shared_frac)?;
        frac("stride_frac", self.stride_frac)?;
        frac("p_hot", self.p_hot)?;
        frac("p_warm", self.p_warm)?;
        if self.p_hot + self.p_warm > 1.0 {
            return Err("p_hot + p_warm must not exceed 1".into());
        }
        if self.code_lines == 0 || self.private_lines == 0 || self.hot_lines == 0 {
            return Err("footprints must be nonzero".into());
        }
        if self.hot_code_lines == 0 || self.hot_code_lines > self.code_lines {
            return Err("hot_code_lines must be in 1..=code_lines".into());
        }
        if self.hot_lines > self.private_lines {
            return Err("hot_lines must fit inside private_lines".into());
        }
        if self.warm_regions * 16 > self.private_lines {
            return Err("warm set must fit inside private_lines".into());
        }
        if self.shared_frac > 0.0 && self.shared_lines == 0 {
            return Err("shared_frac > 0 requires shared_lines > 0".into());
        }
        if self.insts_per_fetch < 1.0 {
            return Err("insts_per_fetch must be >= 1".into());
        }
        if self.multiprogrammed && self.shared_frac > 0.0 {
            return Err("multiprogrammed workloads cannot share data".into());
        }
        if self.stride_lines == 0 {
            return Err("stride_lines must be nonzero".into());
        }
        Ok(())
    }
}

impl_json_enum!(Category {
    Parallel,
    Hpc,
    Mobile,
    Server,
    Database,
});
impl_json_enum!(Sharing {
    None,
    ReadShared,
    Migratory,
    ProducerConsumer,
});
impl_json_struct!(WorkloadSpec {
    name,
    category,
    code_lines,
    hot_code_lines,
    p_hot_code,
    jump_prob,
    insts_per_fetch,
    mem_op_frac,
    write_frac,
    hot_lines,
    p_hot,
    warm_regions,
    p_warm,
    private_lines,
    stride_frac,
    stride_lines,
    shared_lines,
    shared_frac,
    data_zipf,
    sharing,
    multiprogrammed,
    migratory_epoch,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_specs_validate() {
        for cat in Category::ALL {
            WorkloadSpec::base(cat, "x").validate().unwrap();
        }
    }

    #[test]
    fn server_base_is_fully_private() {
        let s = WorkloadSpec::base(Category::Server, "mix1");
        assert!(s.multiprogrammed);
        assert_eq!(s.shared_frac, 0.0);
        assert_eq!(s.sharing, Sharing::None);
    }

    #[test]
    fn database_has_cold_heavy_code() {
        let s = WorkloadSpec::base(Category::Database, "tpc-c");
        assert!(s.code_lines > 100 * 512);
        assert!(
            s.p_hot_code < 0.95,
            "more cold-code jumps than any other suite"
        );
    }

    #[test]
    fn hot_sets_fit_the_l1() {
        for cat in Category::ALL {
            let s = WorkloadSpec::base(cat, "x");
            assert!(s.hot_lines <= 512, "{cat:?}");
            assert!(s.hot_code_lines <= 512, "{cat:?}");
        }
    }

    #[test]
    fn validate_catches_bad_mixtures() {
        let mut s = WorkloadSpec::base(Category::Parallel, "x");
        s.p_hot = 0.9;
        s.p_warm = 0.2;
        assert!(s.validate().is_err());
        let mut s2 = WorkloadSpec::base(Category::Parallel, "x");
        s2.hot_lines = s2.private_lines + 1;
        assert!(s2.validate().is_err());
        let mut s3 = WorkloadSpec::base(Category::Server, "x");
        s3.shared_frac = 0.1;
        assert!(s3.validate().is_err(), "multiprogrammed cannot share");
    }

    #[test]
    fn category_names_match_paper() {
        assert_eq!(Category::Hpc.name(), "HPC");
        assert_eq!(Category::ALL.len(), 5);
    }
}
