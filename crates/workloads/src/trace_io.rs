//! Trace recording and replay.
//!
//! The synthetic generator is deterministic, but downstream users of a cache
//! simulator routinely want to (a) snapshot a trace for exact cross-tool
//! comparisons and (b) feed in externally captured traces. This module
//! provides a compact binary format (`D2MT`), a writer, and a [`ReplayGen`]
//! with the same batch interface as [`crate::gen::TraceGen`].
//!
//! Format: 8-byte header (`b"D2MT"` + u32-LE record count), then one
//! 12-byte little-endian record per access:
//! `node:u8, kind:u8, asid:u16, vaddr:u64`.

use std::io::{self, Read, Write};

use d2m_common::addr::{Asid, NodeId, VAddr};

use crate::gen::{Access, AccessKind};

const MAGIC: [u8; 4] = *b"D2MT";

/// Serializes a slice of accesses into the `D2MT` binary format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(mut w: W, accesses: &[Access]) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&(accesses.len() as u32).to_le_bytes())?;
    for a in accesses {
        let kind = match a.kind {
            AccessKind::IFetch => 0u8,
            AccessKind::Load => 1,
            AccessKind::Store => 2,
        };
        w.write_all(&[a.node.raw(), kind])?;
        w.write_all(&a.asid.0.to_le_bytes())?;
        w.write_all(&a.vaddr.raw().to_le_bytes())?;
    }
    Ok(())
}

/// Deserializes a `D2MT` trace.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic number, a truncated stream, or
/// out-of-range fields.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<Access>> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a D2MT trace (bad magic)",
        ));
    }
    let count = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
    let mut out = Vec::with_capacity(count);
    let mut rec = [0u8; 12];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        if rec[0] >= 8 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "node id out of range",
            ));
        }
        let kind = match rec[1] {
            0 => AccessKind::IFetch,
            1 => AccessKind::Load,
            2 => AccessKind::Store,
            k => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown access kind {k}"),
                ))
            }
        };
        out.push(Access {
            node: NodeId::new(rec[0]),
            kind,
            asid: Asid(u16::from_le_bytes(rec[2..4].try_into().expect("2 bytes"))),
            vaddr: VAddr::new(u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes"))),
        });
    }
    Ok(out)
}

/// Replays a recorded trace with the batch interface of
/// [`crate::gen::TraceGen`] (so runners can drive either interchangeably).
///
/// `insts_per_access` controls how many instructions each instruction-fetch
/// record represents (the generator's `insts_per_fetch`); data records carry
/// no instruction weight.
#[derive(Clone, Debug)]
pub struct ReplayGen {
    accesses: Vec<Access>,
    pos: usize,
    batch_size: usize,
    insts_per_fetch: u64,
}

impl ReplayGen {
    /// Creates a replayer that loops over `accesses` forever.
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is empty.
    pub fn new(accesses: Vec<Access>, insts_per_fetch: u64) -> Self {
        assert!(!accesses.is_empty(), "cannot replay an empty trace");
        Self {
            accesses,
            pos: 0,
            batch_size: 64,
            insts_per_fetch: insts_per_fetch.max(1),
        }
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True when the trace holds no accesses (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Appends the next batch of accesses (wrapping at the end of the
    /// trace) and returns the instructions it represents.
    pub fn next_batch(&mut self, out: &mut Vec<Access>) -> u64 {
        let mut insts = 0;
        for _ in 0..self.batch_size {
            let a = self.accesses[self.pos];
            self.pos = (self.pos + 1) % self.accesses.len();
            if a.kind.is_ifetch() {
                insts += self.insts_per_fetch;
            }
            out.push(a);
        }
        insts.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::gen::TraceGen;

    fn sample(n_batches: usize) -> Vec<Access> {
        let spec = catalog::by_name("swaptions").unwrap();
        let mut gen = TraceGen::new(&spec, 8, 1);
        let mut v = Vec::new();
        for _ in 0..n_batches {
            gen.next_batch(&mut v);
        }
        v
    }

    #[test]
    fn roundtrip_preserves_every_record() {
        let trace = sample(50);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE\x00\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let trace = sample(2);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn bad_kind_is_rejected() {
        let trace = sample(1);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        buf[9] = 77; // corrupt the first record's kind byte
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn replay_wraps_and_counts_instructions() {
        let trace = sample(3);
        let n = trace.len();
        let mut rep = ReplayGen::new(trace.clone(), 6);
        assert_eq!(rep.len(), n);
        let mut out = Vec::new();
        let mut insts = 0;
        // Pull more than one full lap.
        while out.len() < 2 * n {
            insts += rep.next_batch(&mut out);
        }
        assert!(insts > 0);
        assert_eq!(&out[..n.min(64)], &trace[..n.min(64)]);
    }

    #[test]
    fn replayed_trace_drives_a_system_identically() {
        // Replaying a recorded trace must reproduce the same access stream
        // (spot-check: first wrap of records matches the recording).
        let trace = sample(10);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let mut rep = ReplayGen::new(read_trace(&buf[..]).unwrap(), 6);
        let mut out = Vec::new();
        rep.next_batch(&mut out);
        assert_eq!(&out[..], &trace[..out.len()]);
    }
}
