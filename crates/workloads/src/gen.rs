//! Deterministic trace generation from a [`WorkloadSpec`].
//!
//! One [`TraceGen`] produces an interleaved multicore access stream:
//! per batch, every node issues one instruction-fetch event (representing a
//! handful of instructions) plus the corresponding data accesses. All
//! randomness comes from per-node [`SimRng`] streams derived from the master
//! seed, so a `(spec, nodes, seed)` triple always yields the identical trace.
//!
//! See [`crate::spec`] for the hot/warm/cold mixture model the generator
//! implements.

use d2m_common::addr::{Asid, NodeId, VAddr, LINE_SHIFT};
use d2m_common::rng::SimRng;

use crate::spec::{Sharing, WorkloadSpec};

/// Kind of memory access issued by a core.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// Instruction fetch (L1-I side).
    IFetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl AccessKind {
    /// True for instruction fetches.
    pub fn is_ifetch(self) -> bool {
        matches!(self, AccessKind::IFetch)
    }

    /// True for stores.
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

/// One memory access of the interleaved trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// Issuing node.
    pub node: NodeId,
    /// Address space of the access.
    pub asid: Asid,
    /// Fetch / load / store.
    pub kind: AccessKind,
    /// Virtual address.
    pub vaddr: VAddr,
}

/// Virtual segment bases. Segments are far apart so footprints never overlap.
const CODE_BASE: u64 = 0x0010_0000;
const SHARED_BASE: u64 = 0x4000_0000;
const PRIVATE_BASE: u64 = 0x1_0000_0000;
const PRIVATE_STRIDE: u64 = 0x4000_0000;
/// Lines per migratory/producer-consumer chunk (4 regions).
const CHUNK_LINES: u64 = 64;
/// Lines per metadata region.
const REGION_LINES: u64 = 16;

#[derive(Clone, Debug)]
struct NodeGen {
    rng: SimRng,
    pc: u64,
    scan_pos: u64,
    scan_dwell: u8,
    cold_region: u64,
}

/// Deterministic interleaved trace generator (see module docs).
#[derive(Clone, Debug)]
pub struct TraceGen {
    spec: WorkloadSpec,
    nodes: Vec<NodeGen>,
    batches: u64,
}

impl TraceGen {
    /// Creates a generator for `spec` over `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`] or `node_count`
    /// is zero or exceeds 8.
    pub fn new(spec: &WorkloadSpec, node_count: usize, seed: u64) -> Self {
        spec.validate().expect("invalid workload spec");
        assert!((1..=8).contains(&node_count));
        let nodes = (0..node_count)
            .map(|n| {
                let mut rng =
                    SimRng::from_label(seed, &format!("workload/{}/node{}", spec.name, n));
                let pc = rng.below(spec.hot_code_lines);
                let scan_pos = rng.below(spec.private_lines);
                let cold_region = rng.below((spec.private_lines / REGION_LINES).max(1));
                NodeGen {
                    rng,
                    pc,
                    scan_pos,
                    scan_dwell: 0,
                    cold_region,
                }
            })
            .collect();
        Self {
            spec: spec.clone(),
            nodes,
            batches: 0,
        }
    }

    /// The spec driving this generator.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// ASID used by `node` under this spec.
    pub fn asid_of(&self, node: usize) -> Asid {
        if self.spec.multiprogrammed {
            Asid(node as u16 + 1)
        } else {
            Asid(0)
        }
    }

    /// Current migratory epoch (advances every `migratory_epoch` batches).
    fn epoch(&self) -> u64 {
        self.batches / self.spec.migratory_epoch.max(1)
    }

    /// Generates one batch: every node issues one fetch event plus its data
    /// accesses. Appends to `out` and returns the number of instructions the
    /// batch represents.
    pub fn next_batch(&mut self, out: &mut Vec<Access>) -> u64 {
        let epoch = self.epoch();
        let spec = &self.spec;
        let node_count = self.nodes.len();
        let mut insts_total = 0u64;
        for (n, st) in self.nodes.iter_mut().enumerate() {
            let node = NodeId::new(n as u8);
            let asid = if spec.multiprogrammed {
                Asid(n as u16 + 1)
            } else {
                Asid(0)
            };

            // --- instruction fetch ---
            let base_insts = spec.insts_per_fetch.floor() as u64;
            let frac = spec.insts_per_fetch - base_insts as f64;
            let insts = base_insts + u64::from(st.rng.chance(frac));
            insts_total += insts;
            if st.rng.chance(spec.jump_prob) {
                st.pc = if st.rng.chance(spec.p_hot_code) {
                    st.rng.zipf(spec.hot_code_lines, 1.0)
                } else {
                    // Cold code: region-granular pick keeps basic blocks
                    // spatially clustered.
                    let regions = (spec.code_lines / REGION_LINES).max(1);
                    let r = st.rng.zipf(regions, 1.15);
                    (r * REGION_LINES + st.rng.below(REGION_LINES)) % spec.code_lines
                };
            } else {
                st.pc = (st.pc + 1) % spec.code_lines;
            }
            out.push(Access {
                node,
                asid,
                kind: AccessKind::IFetch,
                vaddr: VAddr::new(CODE_BASE + (st.pc << LINE_SHIFT)),
            });

            // --- data accesses ---
            let expect = insts as f64 * spec.mem_op_frac;
            let mut n_mem = expect.floor() as u64;
            if st.rng.chance(expect - n_mem as f64) {
                n_mem += 1;
            }
            for _ in 0..n_mem {
                let access = if spec.shared_frac > 0.0 && st.rng.chance(spec.shared_frac) {
                    Self::shared_access(spec, st, node, asid, epoch, node_count)
                } else {
                    Self::private_access(spec, st, node, asid, n)
                };
                out.push(access);
            }
        }
        self.batches += 1;
        insts_total
    }

    /// Hot/warm/cold mixture with optional strided scans (see module docs).
    fn private_access(
        spec: &WorkloadSpec,
        st: &mut NodeGen,
        node: NodeId,
        asid: Asid,
        n: usize,
    ) -> Access {
        let line = if spec.stride_frac > 0.0 && st.rng.chance(spec.stride_frac) {
            // Streaming kernels touch several elements per 64 B line before
            // the scan advances (dwell ≈ 6 accesses/line).
            if st.scan_dwell == 0 {
                st.scan_pos = (st.scan_pos + spec.stride_lines) % spec.private_lines;
                st.scan_dwell = 5;
            } else {
                st.scan_dwell -= 1;
            }
            st.scan_pos
        } else if st.rng.chance(spec.p_hot) {
            st.rng.zipf(spec.hot_lines, 0.6)
        } else if st.rng.chance(spec.p_warm / (1.0 - spec.p_hot).max(1e-9)) {
            // Warm: region-granular (spatial locality inside 1 KB regions).
            let region = st.rng.zipf(spec.warm_regions, 0.45);
            let line = spec.hot_lines + region * REGION_LINES + st.rng.below(REGION_LINES);
            line % spec.private_lines
        } else {
            // Cold: uniform over the whole footprint, in short region bursts
            // (page-level spatial locality survives even in cold tails).
            if st.rng.chance(0.25) {
                st.cold_region = st.rng.below((spec.private_lines / REGION_LINES).max(1));
            }
            (st.cold_region * REGION_LINES + st.rng.below(REGION_LINES)) % spec.private_lines
        };
        let base = PRIVATE_BASE + n as u64 * PRIVATE_STRIDE;
        let kind = if st.rng.chance(spec.write_frac) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        Access {
            node,
            asid,
            kind,
            vaddr: VAddr::new(base + (line << LINE_SHIFT)),
        }
    }

    fn shared_access(
        spec: &WorkloadSpec,
        st: &mut NodeGen,
        node: NodeId,
        asid: Asid,
        epoch: u64,
        node_count: usize,
    ) -> Access {
        let n = node.index() as u64;
        let nodes = node_count as u64;
        let (line, kind) = match spec.sharing {
            Sharing::None => unreachable!("shared access with Sharing::None"),
            Sharing::ReadShared => {
                // Region-granular reuse of mostly-read shared data.
                let regions = (spec.shared_lines / REGION_LINES).max(1);
                let region = st.rng.zipf(regions, spec.data_zipf + 0.3);
                let line =
                    (region * REGION_LINES + st.rng.zipf(REGION_LINES, 1.5)) % spec.shared_lines;
                let kind = if st.rng.chance(spec.write_frac * 0.1) {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                (line, kind)
            }
            Sharing::Migratory => {
                // Each chunk is owned by one node per epoch; ownership
                // rotates so dirty lines migrate between private caches.
                let chunks = (spec.shared_lines / CHUNK_LINES).max(nodes);
                let chunks_per_node = (chunks / nodes).max(1);
                let rank = st.rng.zipf(chunks_per_node, spec.data_zipf + 0.3);
                let chunk = (rank * nodes + ((n + epoch) % nodes)) % chunks;
                let line =
                    (chunk * CHUNK_LINES + st.rng.zipf(CHUNK_LINES, 1.5)) % spec.shared_lines;
                let kind = if st.rng.chance(spec.write_frac) {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                (line, kind)
            }
            Sharing::ProducerConsumer => {
                // Even nodes write their own chunks; odd nodes read their
                // producer neighbour's chunks.
                let producer = n & !1;
                let chunks = (spec.shared_lines / CHUNK_LINES).max(nodes);
                let chunks_per_node = (chunks / nodes).max(1);
                let rank = st.rng.zipf(chunks_per_node, spec.data_zipf + 0.3);
                let chunk = (rank * nodes + producer) % chunks;
                let line =
                    (chunk * CHUNK_LINES + st.rng.zipf(CHUNK_LINES, 1.5)) % spec.shared_lines;
                let kind = if n.is_multiple_of(2) && st.rng.chance(spec.write_frac) {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                (line, kind)
            }
        };
        Access {
            node,
            asid,
            kind,
            vaddr: VAddr::new(SHARED_BASE + (line << LINE_SHIFT)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Category, WorkloadSpec};

    fn gen_for(cat: Category) -> TraceGen {
        TraceGen::new(&WorkloadSpec::base(cat, "t"), 8, 1)
    }

    fn collect(gen: &mut TraceGen, batches: usize) -> (Vec<Access>, u64) {
        let mut v = Vec::new();
        let mut insts = 0;
        for _ in 0..batches {
            insts += gen.next_batch(&mut v);
        }
        (v, insts)
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = gen_for(Category::Parallel);
        let mut b = gen_for(Category::Parallel);
        let (va, ia) = collect(&mut a, 50);
        let (vb, ib) = collect(&mut b, 50);
        assert_eq!(ia, ib);
        assert_eq!(va, vb);
    }

    #[test]
    fn every_node_fetches_each_batch() {
        let mut g = gen_for(Category::Hpc);
        let mut v = Vec::new();
        g.next_batch(&mut v);
        let fetches: Vec<_> = v.iter().filter(|a| a.kind.is_ifetch()).collect();
        assert_eq!(fetches.len(), 8);
        let nodes: std::collections::HashSet<_> = fetches.iter().map(|a| a.node.index()).collect();
        assert_eq!(nodes.len(), 8);
    }

    #[test]
    fn instruction_count_tracks_insts_per_fetch() {
        let mut g = gen_for(Category::Parallel);
        let (_, insts) = collect(&mut g, 1000);
        let per_batch = insts as f64 / 1000.0;
        // 8 nodes × ~6 insts/fetch.
        assert!((per_batch - 48.0).abs() < 3.0, "got {per_batch}");
    }

    #[test]
    fn mem_op_fraction_is_respected() {
        let mut g = gen_for(Category::Parallel);
        let (v, insts) = collect(&mut g, 2000);
        let data = v.iter().filter(|a| !a.kind.is_ifetch()).count() as f64;
        let frac = data / insts as f64;
        assert!((frac - 0.33).abs() < 0.03, "got {frac}");
    }

    #[test]
    fn hot_set_dominates_private_accesses() {
        let mut g = gen_for(Category::Parallel);
        let spec = g.spec().clone();
        let (v, _) = collect(&mut g, 3000);
        let priv_accesses: Vec<u64> = v
            .iter()
            .filter(|a| a.vaddr.raw() >= PRIVATE_BASE && !a.kind.is_ifetch())
            .map(|a| ((a.vaddr.raw() - PRIVATE_BASE) % PRIVATE_STRIDE) >> LINE_SHIFT)
            .collect();
        let hot = priv_accesses
            .iter()
            .filter(|l| **l < spec.hot_lines)
            .count() as f64;
        let frac = hot / priv_accesses.len() as f64;
        assert!(
            (frac - spec.p_hot).abs() < 0.05,
            "hot fraction {frac} vs p_hot {}",
            spec.p_hot
        );
    }

    #[test]
    fn jumps_stay_mostly_in_hot_code() {
        let mut g = gen_for(Category::Mobile);
        let spec = g.spec().clone();
        let (v, _) = collect(&mut g, 4000);
        let fetch_lines: Vec<u64> = v
            .iter()
            .filter(|a| a.kind.is_ifetch())
            .map(|a| (a.vaddr.raw() - CODE_BASE) >> LINE_SHIFT)
            .collect();
        let hot = fetch_lines
            .iter()
            .filter(|l| **l < spec.hot_code_lines)
            .count() as f64;
        let frac = hot / fetch_lines.len() as f64;
        // Sequential runs leak out of the hot set, so the resident fraction
        // is below p_hot_code but must still dominate.
        assert!(frac > 0.5, "hot-code fraction {frac}");
    }

    #[test]
    fn server_never_touches_shared_segment_and_uses_distinct_asids() {
        let mut g = gen_for(Category::Server);
        let (v, _) = collect(&mut g, 200);
        for a in &v {
            assert!(
                a.vaddr.raw() < SHARED_BASE || a.vaddr.raw() >= PRIVATE_BASE,
                "server access in shared segment: {a:?}"
            );
            assert_eq!(a.asid.0, a.node.index() as u16 + 1);
        }
    }

    #[test]
    fn shared_workloads_use_one_asid() {
        let mut g = gen_for(Category::Database);
        let (v, _) = collect(&mut g, 50);
        assert!(v.iter().all(|a| a.asid.0 == 0));
        assert!(v
            .iter()
            .any(|a| (SHARED_BASE..PRIVATE_BASE).contains(&a.vaddr.raw())));
    }

    #[test]
    fn private_segments_are_node_disjoint() {
        let mut g = gen_for(Category::Parallel);
        let (v, _) = collect(&mut g, 500);
        for a in v.iter().filter(|a| a.vaddr.raw() >= PRIVATE_BASE) {
            let owner = (a.vaddr.raw() - PRIVATE_BASE) / PRIVATE_STRIDE;
            assert_eq!(owner, a.node.index() as u64, "{a:?}");
        }
    }

    #[test]
    fn producer_consumer_writes_only_from_even_nodes() {
        let mut spec = WorkloadSpec::base(Category::Parallel, "pc");
        spec.sharing = crate::spec::Sharing::ProducerConsumer;
        let mut g = TraceGen::new(&spec, 8, 3);
        let (v, _) = collect(&mut g, 500);
        for a in v
            .iter()
            .filter(|a| a.kind.is_store() && (SHARED_BASE..PRIVATE_BASE).contains(&a.vaddr.raw()))
        {
            assert_eq!(a.node.index() % 2, 0, "odd node wrote shared data: {a:?}");
        }
    }

    #[test]
    fn stride_scan_produces_strided_lines() {
        let mut spec = WorkloadSpec::base(Category::Hpc, "lu");
        spec.stride_frac = 1.0;
        spec.stride_lines = 128;
        spec.shared_frac = 0.0;
        spec.sharing = crate::spec::Sharing::ReadShared;
        let mut g = TraceGen::new(&spec, 1, 5);
        let (v, _) = collect(&mut g, 100);
        let lines: Vec<u64> = v
            .iter()
            .filter(|a| a.vaddr.raw() >= PRIVATE_BASE)
            .map(|a| (a.vaddr.raw() - PRIVATE_BASE) >> LINE_SHIFT)
            .collect();
        assert!(lines.len() > 10);
        // The scan dwells ~6 accesses per line; consecutive distinct lines
        // must be exactly one stride apart.
        let mut distinct: Vec<u64> = lines.clone();
        distinct.dedup();
        let strided = distinct
            .windows(2)
            .filter(|w| (w[1] + spec.private_lines - w[0]) % spec.private_lines == 128)
            .count();
        assert!(
            strided as f64 > distinct.len() as f64 * 0.9,
            "{strided}/{}",
            distinct.len()
        );
    }

    #[test]
    fn migratory_epoch_rotates_chunk_ownership() {
        let mut spec = WorkloadSpec::base(Category::Hpc, "mig");
        spec.shared_frac = 1.0;
        spec.write_frac = 1.0;
        spec.migratory_epoch = 10;
        let mut g = TraceGen::new(&spec, 2, 7);
        // Epoch 0: record which chunks node 0 writes.
        let (v0, _) = collect(&mut g, 9);
        let chunks0: std::collections::HashSet<u64> = v0
            .iter()
            .filter(|a| a.node.index() == 0 && !a.kind.is_ifetch())
            .map(|a| (a.vaddr.raw() - SHARED_BASE) >> LINE_SHIFT >> 6)
            .collect();
        // Skip to a later epoch.
        let (_, _) = collect(&mut g, 10);
        let (v2, _) = collect(&mut g, 9);
        let chunks2: std::collections::HashSet<u64> = v2
            .iter()
            .filter(|a| a.node.index() == 0 && !a.kind.is_ifetch())
            .map(|a| (a.vaddr.raw() - SHARED_BASE) >> LINE_SHIFT >> 6)
            .collect();
        assert!(
            chunks0.intersection(&chunks2).count() < chunks0.len(),
            "ownership never rotated"
        );
    }
}
