//! The 45 named workloads of the paper's evaluation (Figure 5's x-axes).
//!
//! Each entry starts from its suite's [`WorkloadSpec::base`] (already
//! calibrated to Table IV's suite-mean miss ratios) and perturbs the
//! behavioural parameters to reflect what is publicly known about the
//! benchmark. Paper-identified outliers get faithful treatments:
//!
//! * `canneal` — an enormous, low-locality footprint that thrashes MD2
//!   (paper §V-B: "exceptionally large number of MD2 misses");
//! * `streamcluster` — streaming whose L1 misses go to memory, where D2M
//!   offers latency but no traffic advantage;
//! * `lu_cb`/`lu_ncb` — power-of-two strides, the §IV-D dynamic-indexing
//!   motivation;
//! * `cnn` — poorly-reusable data that trips the naive NS placement
//!   heuristic (§V-C).

use crate::spec::{Category, Sharing, WorkloadSpec};

/// A catalog lookup or construction failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CatalogError {
    /// A spec failed [`WorkloadSpec::validate`]. Carries the offending spec
    /// name so callers can report it instead of aborting.
    Invalid {
        /// Name of the offending spec.
        name: String,
        /// The validation failure.
        reason: String,
    },
    /// [`by_name`] was asked for a workload the catalog does not contain.
    Unknown {
        /// The requested name.
        name: String,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Invalid { name, reason } => {
                write!(f, "catalog spec {name} invalid: {reason}")
            }
            CatalogError::Unknown { name } => write!(f, "unknown workload {name:?}"),
        }
    }
}

impl std::error::Error for CatalogError {}

fn tweak(
    cat: Category,
    name: &str,
    f: impl FnOnce(&mut WorkloadSpec),
) -> Result<WorkloadSpec, CatalogError> {
    let mut s = WorkloadSpec::base(cat, name);
    f(&mut s);
    // Keep the mixture a distribution when a tweak raises p_hot.
    s.p_warm = s.p_warm.min(1.0 - s.p_hot);
    s.validate().map_err(|e| CatalogError::Invalid {
        name: name.to_string(),
        reason: e,
    })?;
    Ok(s)
}

/// All 45 workloads in the paper's figure order
/// (Parsec, Splash2x, Mobile, SPEC mixes, TPC-C).
pub fn all() -> Result<Vec<WorkloadSpec>, CatalogError> {
    let mut v = Vec::with_capacity(45);
    v.extend(parsec()?);
    v.extend(splash2x()?);
    v.extend(mobile()?);
    v.extend(server()?);
    v.push(database()?);
    Ok(v)
}

/// The Parsec suite (paper "Parallel").
pub fn parsec() -> Result<Vec<WorkloadSpec>, CatalogError> {
    use Category::Parallel as P;
    Ok(vec![
        tweak(P, "blackscholes", |s| {
            s.p_hot = 0.992; // tiny per-option working set
            s.warm_regions = 70;
            s.shared_frac = 0.02;
        })?,
        tweak(P, "bodytrack", |s| {
            s.shared_frac = 0.07;
            s.warm_regions = 100;
        })?,
        tweak(P, "canneal", |s| {
            // Pointer-chasing over a huge netlist: weak locality at every
            // level, many MD2 misses.
            s.private_lines = 1 << 21;
            s.shared_lines = 1 << 20;
            s.shared_frac = 0.08;
            s.p_hot = 0.94;
            s.p_warm = 0.02;
            s.warm_regions = 3_000;
            s.data_zipf = 0.3;
            s.write_frac = 0.25;
        })?,
        tweak(P, "dedup", |s| {
            s.shared_frac = 0.08;
            s.sharing = Sharing::ProducerConsumer;
            s.warm_regions = 80;
        })?,
        tweak(P, "facesim", |s| {
            s.stride_frac = 0.04;
            s.stride_lines = 3;
            s.p_hot = 0.978;
            s.warm_regions = 130;
        })?,
        tweak(P, "ferret", |s| {
            s.shared_frac = 0.09;
            s.sharing = Sharing::ProducerConsumer;
            s.code_lines = 4_000;
            s.p_hot_code = 0.996;
        })?,
        tweak(P, "fluidanimate", |s| {
            s.shared_frac = 0.06;
            s.sharing = Sharing::Migratory;
            s.warm_regions = 110;
        })?,
        tweak(P, "freqmine", |s| {
            s.p_hot = 0.975;
            s.warm_regions = 400;
            s.shared_frac = 0.06;
        })?,
        tweak(P, "raytrace", |s| {
            s.shared_frac = 0.10;
            s.sharing = Sharing::ReadShared;
            s.shared_lines = 1 << 17;
            s.data_zipf = 0.8;
        })?,
        tweak(P, "streamcluster", |s| {
            // Streaming: the paper's "no traffic advantage" outlier.
            s.private_lines = 1 << 20;
            s.stride_frac = 0.04;
            s.stride_lines = 1;
            s.p_hot = 0.975;
            s.p_warm = 0.005;
            s.warm_regions = 100;
            s.shared_frac = 0.02;
            s.write_frac = 0.1;
        })?,
        tweak(P, "swaptions", |s| {
            s.p_hot = 0.994;
            s.warm_regions = 70;
            s.shared_frac = 0.01;
        })?,
        tweak(P, "vips", |s| {
            s.stride_frac = 0.03;
            s.stride_lines = 2;
            s.shared_frac = 0.04;
            s.warm_regions = 80;
        })?,
        tweak(P, "x264", |s| {
            s.shared_frac = 0.06;
            s.sharing = Sharing::ProducerConsumer;
            s.code_lines = 5_000;
            s.p_hot_code = 0.9965;
            s.stride_frac = 0.03;
            s.stride_lines = 2;
        })?,
    ])
}

/// The Splash2x suite (paper "HPC").
pub fn splash2x() -> Result<Vec<WorkloadSpec>, CatalogError> {
    use Category::Hpc as H;
    Ok(vec![
        tweak(H, "barnes", |s| {
            s.shared_frac = 0.10;
            s.shared_lines = 1 << 16;
        })?,
        tweak(H, "cholesky", |s| {
            s.stride_frac = 0.03;
            s.stride_lines = 8;
            s.warm_regions = 80;
        })?,
        tweak(H, "fft", |s| {
            s.stride_frac = 0.04;
            s.stride_lines = 32;
            s.private_lines = 1 << 18;
            s.shared_frac = 0.06;
        })?,
        tweak(H, "fmm", |s| {
            s.shared_frac = 0.09;
            s.shared_lines = 1 << 16;
        })?,
        tweak(H, "lu_cb", |s| {
            // Power-of-two column strides over a large blocked matrix: the
            // §IV-D "malicious" pattern that lands every scan line in the
            // same LLC set.
            s.stride_frac = 0.02;
            s.stride_lines = 4096;
            s.private_lines = 1 << 19;
            s.shared_frac = 0.06;
        })?,
        tweak(H, "lu_ncb", |s| {
            s.stride_frac = 0.03;
            s.stride_lines = 4096;
            s.private_lines = 1 << 19;
            s.shared_frac = 0.06;
        })?,
        tweak(H, "ocean_cp", |s| {
            s.stride_frac = 0.035;
            s.stride_lines = 16;
            s.private_lines = 1 << 18;
            s.shared_frac = 0.07;
            s.write_frac = 0.4;
        })?,
        tweak(H, "radiosity", |s| {
            s.shared_frac = 0.11;
            s.shared_lines = 1 << 16;
            s.data_zipf = 0.95;
        })?,
        tweak(H, "radix", |s| {
            s.stride_frac = 0.04;
            s.stride_lines = 1;
            s.private_lines = 1 << 18;
            s.write_frac = 0.45;
            s.shared_frac = 0.05;
        })?,
        tweak(H, "raytrace.sp", |s| {
            s.shared_frac = 0.10;
            s.sharing = Sharing::ReadShared;
            s.shared_lines = 1 << 17;
        })?,
        tweak(H, "volrend", |s| {
            s.shared_frac = 0.09;
            s.sharing = Sharing::ReadShared;
            s.code_lines = 3_000;
        })?,
        tweak(H, "water_nsquared", |s| {
            s.p_hot = 0.99;
            s.warm_regions = 400;
            s.shared_frac = 0.06;
        })?,
        tweak(H, "water_spatial", |s| {
            s.p_hot = 0.99;
            s.warm_regions = 80;
            s.shared_frac = 0.05;
        })?,
    ])
}

/// Chrome/Telemetry website workloads (paper "Mobile").
///
/// All share the browser-engine profile — a multi-megabyte instruction
/// footprint dominating the behaviour (paper §V-D) — and differ in page
/// complexity (code size, DOM/data footprints, script hotness).
pub fn mobile() -> Result<Vec<WorkloadSpec>, CatalogError> {
    use Category::Mobile as M;
    let site = |name: &'static str, code_kl: u64, hot_frac: f64, warm: u64| {
        tweak(M, name, move |s| {
            s.code_lines = code_kl * 1000;
            s.p_hot_code = hot_frac;
            s.warm_regions = warm;
        })
    };
    Ok(vec![
        site("amazon", 28, 0.9745, 95)?,
        site("answers.yahoo", 22, 0.9775, 95)?,
        site("booking", 30, 0.972, 95)?,
        tweak(M, "cnn", |s| {
            // The paper's NS-placement outlier: large, poorly-reusable data.
            s.code_lines = 34_000;
            s.p_hot_code = 0.968;
            s.private_lines = 1 << 18;
            s.p_hot = 0.976;
            s.p_warm = 0.021;
            s.warm_regions = 600;
            s.shared_frac = 0.05;
        })?,
        site("ebay", 26, 0.976, 95)?,
        site("facebook", 32, 0.973, 95)?,
        site("google", 16, 0.982, 80)?,
        site("news.yahoo", 24, 0.976, 95)?,
        site("reddit", 20, 0.9785, 95)?,
        site("sports.yahoo", 24, 0.976, 95)?,
        site("techcrunch", 22, 0.9775, 95)?,
        site("twitter", 26, 0.9745, 95)?,
        site("wikipedia", 14, 0.9835, 75)?,
        site("youtube", 30, 0.973, 95)?,
    ])
}

/// SPEC CPU2006 multiprogrammed mixes (paper "Server").
pub fn server() -> Result<Vec<WorkloadSpec>, CatalogError> {
    use Category::Server as S;
    Ok(vec![
        tweak(S, "mix1", |s| {
            // memory-heavy mix (mcf/lbm-like)
            s.private_lines = 1 << 19;
            s.p_hot = 0.953;
            s.p_warm = 0.045;
            s.warm_regions = 180;
            s.mem_op_frac = 0.38;
        })?,
        tweak(S, "mix2", |s| {
            // balanced mix
            s.warm_regions = 110;
        })?,
        tweak(S, "mix3", |s| {
            // compute mix with streaming kernels (libquantum-like)
            s.stride_frac = 0.04;
            s.stride_lines = 1;
            s.private_lines = 1 << 18;
        })?,
        tweak(S, "mix4", |s| {
            // code-heavier mix (gcc/perl-like)
            s.code_lines = 10_000;
            s.p_hot_code = 0.991;
            s.warm_regions = 100;
        })?,
    ])
}

/// TPC-C on MySQL/InnoDB (paper "Database").
pub fn database() -> Result<WorkloadSpec, CatalogError> {
    tweak(Category::Database, "tpc-c", |s| {
        s.warm_regions = 120;
    })
}

/// Looks a workload up by its figure name.
///
/// # Errors
///
/// [`CatalogError::Unknown`] when no workload has that name (the variant
/// carries the requested name for error reporting), or
/// [`CatalogError::Invalid`] if catalog construction itself failed.
pub fn by_name(name: &str) -> Result<WorkloadSpec, CatalogError> {
    all()?
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| CatalogError::Unknown {
            name: name.to_string(),
        })
}

/// All workloads of one suite, in figure order.
pub fn by_category(cat: Category) -> Result<Vec<WorkloadSpec>, CatalogError> {
    Ok(all()?.into_iter().filter(|s| s.category == cat).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_45_unique_workloads() {
        let v = all().unwrap();
        assert_eq!(v.len(), 45);
        let mut names: Vec<_> = v.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 45, "duplicate names");
    }

    #[test]
    fn every_spec_validates() {
        for s in all().unwrap() {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn suite_sizes_match_paper_figures() {
        assert_eq!(parsec().unwrap().len(), 13);
        assert_eq!(splash2x().unwrap().len(), 13);
        assert_eq!(mobile().unwrap().len(), 14);
        assert_eq!(server().unwrap().len(), 4);
    }

    #[test]
    fn by_name_and_by_category() {
        assert!(by_name("canneal").is_ok());
        let err = by_name("nope").unwrap_err();
        assert_eq!(
            err,
            CatalogError::Unknown {
                name: "nope".to_string()
            }
        );
        assert!(err.to_string().contains("nope"), "{err}");
        assert_eq!(by_category(Category::Server).unwrap().len(), 4);
        assert_eq!(by_category(Category::Database).unwrap().len(), 1);
    }

    #[test]
    fn canneal_is_the_md2_thrasher() {
        let c = by_name("canneal").unwrap();
        // Footprint in regions dwarfs the 4 K-entry MD2, with a weak hot set.
        assert!(c.private_lines / 16 > 8 * 4096);
        assert!(c.p_hot < 0.96, "weaker hot set than the suite norm");
    }

    #[test]
    fn lu_has_power_of_two_stride() {
        for name in ["lu_cb", "lu_ncb"] {
            let s = by_name(name).unwrap();
            assert!(s.stride_lines.is_power_of_two() && s.stride_lines >= 64);
            assert!(s.stride_frac > 0.0);
        }
    }

    #[test]
    fn server_mixes_are_multiprogrammed() {
        for s in server().unwrap() {
            assert!(s.multiprogrammed);
            assert_eq!(s.shared_frac, 0.0);
        }
    }

    #[test]
    fn database_and_mobile_have_big_cold_code() {
        assert!(database().unwrap().code_lines > 512 * 100);
        assert!(
            database().unwrap().p_hot_code < 0.95,
            "most cold-code jumps of any suite"
        );
        for s in mobile().unwrap() {
            assert!(s.code_lines > 512 * 20, "{}", s.name);
            assert!(s.p_hot_code < 0.99, "{}", s.name);
        }
    }
}
