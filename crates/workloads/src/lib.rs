//! Synthetic multicore workloads calibrated to the D2M paper's suites.
//!
//! The paper evaluates five suites — Parallel (Parsec), HPC (Splash2x),
//! Mobile (Chrome+Telemetry), Server (SPEC CPU2006 mixes) and Database
//! (TPC-C) — on a gem5 full-system setup. Full-system traces are not
//! reproducible here, so this crate substitutes a **parameterized synthetic
//! generator**: each named benchmark is a [`spec::WorkloadSpec`] controlling
//! instruction footprint and jumpiness, private/shared data footprints,
//! sharing pattern, write fraction, Zipf locality and strided scans. The
//! category parameters are calibrated against Table IV's per-suite L1 miss
//! ratios and the paper's sharing statistics (68% of misses to private
//! regions; Server fully private), which are the workload properties every
//! figure in the evaluation responds to. See `DESIGN.md` §2.
//!
//! # Example
//!
//! ```
//! use d2m_workloads::{catalog, gen::TraceGen};
//!
//! let spec = catalog::by_name("tpc-c").unwrap();
//! let mut gen = TraceGen::new(&spec, 8, 42);
//! let mut batch = Vec::new();
//! let insts = gen.next_batch(&mut batch);
//! assert!(insts > 0 && !batch.is_empty());
//! ```

pub mod catalog;
pub mod gen;
pub mod spec;
pub mod trace_io;

pub use catalog::CatalogError;
pub use gen::{Access, AccessKind, TraceGen};
pub use spec::{Category, Sharing, WorkloadSpec};
