//! Machine configuration — the Table III analogue shared by every system.
//!
//! One [`MachineConfig`] instance describes the whole chip: node count, cache
//! geometries for the baselines *and* the D2M variants, metadata-store sizes,
//! and the latency parameters of the timing model. All experiment presets
//! start from [`MachineConfig::default`] and tweak individual fields.

use crate::addr::LINE_BYTES;
use crate::impl_json_struct;

/// Geometry of one set-associative structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        Self { sets, ways }
    }

    /// Geometry from a capacity in bytes for line-granular caches.
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is not a power of two.
    pub fn from_capacity(bytes: usize, ways: usize) -> Self {
        let lines = bytes / LINE_BYTES;
        Self::new(lines / ways, ways)
    }

    /// Total number of entries (sets × ways).
    pub const fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Capacity in bytes if entries are cachelines.
    pub const fn capacity_bytes(&self) -> usize {
        self.entries() * LINE_BYTES
    }
}

/// Latency parameters (in core cycles) for the timing model.
///
/// Values are of published magnitude for an energy-efficient ~2 GHz design;
/// absolute numbers are documented in `DESIGN.md` §4 and only relative
/// behaviour matters for the normalized results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latencies {
    /// L1 (I or D) array access, hit latency.
    pub l1: u64,
    /// MD1 lookup (overlapped with L1 access on hits).
    pub md1: u64,
    /// Private L2 (Base-3L) array access.
    pub l2: u64,
    /// Local near-side LLC slice access (no interconnect crossing).
    pub ns_slice: u64,
    /// One interconnect traversal (node ↔ far side, or node ↔ node).
    pub noc: u64,
    /// Far-side LLC data-array access (excluding interconnect).
    pub llc: u64,
    /// MD2 lookup.
    pub md2: u64,
    /// TLB2 lookup (on the MD2 path; TLB1 is replaced by MD1 in D2M).
    pub tlb2: u64,
    /// MD3 lookup (far side; excluding interconnect).
    pub md3: u64,
    /// Directory lookup in the baselines (embedded with the LLC tags).
    pub directory: u64,
    /// Main memory access (from the far side).
    pub mem: u64,
    /// Page-table walk on a TLB miss.
    pub tlb_walk: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Self {
            l1: 2,
            md1: 1,
            l2: 12,
            ns_slice: 10,
            noc: 10,
            llc: 16,
            md2: 4,
            tlb2: 2,
            md3: 20,
            directory: 20,
            mem: 160,
            tlb_walk: 30,
        }
    }
}

/// Parameters of the analytic core model (see `DESIGN.md` §2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreModel {
    /// Baseline instructions per cycle when no miss stalls the core.
    pub base_ipc: f64,
    /// Fraction of an instruction-miss latency the core is stalled
    /// (OoO cores cannot hide I-misses — paper §V-D).
    pub ifetch_blocking: f64,
    /// Fraction of a data-miss latency the core is stalled.
    pub data_blocking: f64,
}

impl Default for CoreModel {
    fn default() -> Self {
        Self {
            base_ipc: 2.0,
            ifetch_blocking: 0.6,
            data_blocking: 0.12,
        }
    }
}

/// Near-side-LLC placement-policy parameters (paper §IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NsPolicy {
    /// Cycle window over which slice pressure (replacements) is measured and
    /// exchanged (10 k cycles in the paper).
    pub pressure_window: u64,
    /// Percentage of allocations made locally when the local slice pressure
    /// is *higher* than the remote average (80% in the paper).
    pub local_alloc_pct_under_pressure: u32,
}

impl Default for NsPolicy {
    fn default() -> Self {
        Self {
            pressure_window: 10_000,
            local_alloc_pct_under_pressure: 80,
        }
    }
}

/// Complete machine description.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Number of nodes (cores), at most 8 for the 6-bit LI encoding.
    pub nodes: usize,
    /// L1 instruction cache geometry (32 KB 8-way by default).
    pub l1i: CacheGeometry,
    /// L1 data cache geometry (32 KB 8-way by default).
    pub l1d: CacheGeometry,
    /// Private L2 geometry for Base-3L (256 KB 8-way by default).
    pub l2: CacheGeometry,
    /// Far-side shared LLC geometry (8 MB 32-way by default).
    pub llc: CacheGeometry,
    /// Per-node near-side LLC slice geometry (1 MB 4-way by default;
    /// `nodes × slice` capacity equals the far-side LLC capacity).
    pub ns_slice: CacheGeometry,
    /// MD1 geometry in regions (128 entries, 8-way by default) — one each
    /// for instructions and data.
    pub md1: CacheGeometry,
    /// MD2 geometry in regions (4 K entries, 8-way).
    pub md2: CacheGeometry,
    /// MD3 geometry in regions (16 K entries, 16-way).
    pub md3: CacheGeometry,
    /// TLB entries (baselines' TLB1 and D2M's TLB2).
    pub tlb: CacheGeometry,
    /// Timing parameters.
    pub lat: Latencies,
    /// Core model parameters.
    pub core: CoreModel,
    /// NS-LLC placement policy parameters.
    pub ns_policy: NsPolicy,
    /// Enable the MD2 pruning heuristic (paper §IV-A).
    pub md2_pruning: bool,
    /// Verify value coherence on every load (testing oracle; modest cost).
    pub check_coherence: bool,
    /// Number of MD3 lock bits modelled for the blocking mechanism
    /// (1 K in the paper's appendix).
    pub md3_lock_bits: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            nodes: 8,
            l1i: CacheGeometry::from_capacity(32 << 10, 8),
            l1d: CacheGeometry::from_capacity(32 << 10, 8),
            l2: CacheGeometry::from_capacity(256 << 10, 8),
            llc: CacheGeometry::from_capacity(8 << 20, 32),
            ns_slice: CacheGeometry::from_capacity(1 << 20, 4),
            md1: CacheGeometry::new(16, 8),
            md2: CacheGeometry::new(512, 8),
            md3: CacheGeometry::new(1024, 16),
            tlb: CacheGeometry::new(16, 4),
            lat: Latencies::default(),
            core: CoreModel::default(),
            ns_policy: NsPolicy::default(),
            md2_pruning: true,
            check_coherence: false,
            md3_lock_bits: 1024,
        }
    }
}

impl MachineConfig {
    /// Scales the metadata capacity (MD1/MD2/MD3 entry counts) by a factor,
    /// used by the footnote-5 ablation (1×/2×/4×).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or not a power of two.
    pub fn scale_metadata(mut self, factor: usize) -> Self {
        assert!(factor.is_power_of_two() && factor > 0);
        self.md1.sets *= factor;
        self.md2.sets *= factor;
        self.md3.sets *= factor;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency found
    /// (e.g. NS slices not covering the LLC capacity, node count out of the
    /// LI encoding range).
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 || self.nodes > crate::addr::NodeId::MAX_NODES {
            return Err(format!("nodes must be 1..=8, got {}", self.nodes));
        }
        let ns_total = self.ns_slice.capacity_bytes() * self.nodes;
        if ns_total != self.llc.capacity_bytes() {
            return Err(format!(
                "NS slices ({} B total) must equal far-side LLC capacity ({} B)",
                ns_total,
                self.llc.capacity_bytes()
            ));
        }
        if self.llc.ways > 32 {
            return Err("LLC associativity above 32 does not fit the LI encoding".into());
        }
        if !self.md3_lock_bits.is_power_of_two() {
            return Err("md3_lock_bits must be a power of two".into());
        }
        Ok(())
    }

    /// Number of cachelines trackable by MD2 (4× the L2 size rule of thumb
    /// from the paper is satisfied by the default geometry).
    pub fn md2_tracked_lines(&self) -> usize {
        self.md2.entries() * crate::addr::LINES_PER_REGION
    }
}

impl_json_struct!(CacheGeometry { sets, ways });
impl_json_struct!(Latencies {
    l1,
    md1,
    l2,
    ns_slice,
    noc,
    llc,
    md2,
    tlb2,
    md3,
    directory,
    mem,
    tlb_walk,
});
impl_json_struct!(CoreModel {
    base_ipc,
    ifetch_blocking,
    data_blocking,
});
impl_json_struct!(NsPolicy {
    pressure_window,
    local_alloc_pct_under_pressure,
});
impl_json_struct!(MachineConfig {
    nodes,
    l1i,
    l1d,
    l2,
    llc,
    ns_slice,
    md1,
    md2,
    md3,
    tlb,
    lat,
    core,
    ns_policy,
    md2_pruning,
    check_coherence,
    md3_lock_bits,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_geometry() {
        let cfg = MachineConfig::default();
        cfg.validate().expect("default config must be valid");
        assert_eq!(cfg.l1d.capacity_bytes(), 32 << 10);
        assert_eq!(cfg.llc.capacity_bytes(), 8 << 20);
        assert_eq!(cfg.ns_slice.capacity_bytes() * cfg.nodes, 8 << 20);
        assert_eq!(cfg.md1.entries(), 128);
        assert_eq!(cfg.md2.entries(), 4096);
        assert_eq!(cfg.md3.entries(), 16384);
    }

    #[test]
    fn md2_tracks_at_least_4x_l2_capacity() {
        // Paper §II-A: MD2 tracks ~4× more lines than the L2 holds.
        let cfg = MachineConfig::default();
        let l2_lines = cfg.l2.entries();
        assert!(cfg.md2_tracked_lines() >= 4 * l2_lines);
    }

    #[test]
    fn scale_metadata_doubles_entry_counts() {
        let cfg = MachineConfig::default().scale_metadata(2);
        assert_eq!(cfg.md1.entries(), 256);
        assert_eq!(cfg.md2.entries(), 8192);
        assert_eq!(cfg.md3.entries(), 32768);
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_mismatched_ns_capacity() {
        let mut cfg = MachineConfig::default();
        cfg.ns_slice = CacheGeometry::from_capacity(512 << 10, 4);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_too_many_nodes() {
        let mut cfg = MachineConfig::default();
        cfg.nodes = 9;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn geometry_from_capacity() {
        let g = CacheGeometry::from_capacity(32 << 10, 8);
        assert_eq!(g.sets, 64);
        assert_eq!(g.ways, 8);
        assert_eq!(g.capacity_bytes(), 32 << 10);
    }

    #[test]
    fn config_json_roundtrip() {
        use crate::json::{FromJson, Json, ToJson};
        let cfg = MachineConfig::default();
        let text = cfg.to_json().to_string_compact();
        let back = MachineConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cfg);
    }
}
