//! A fast, deterministic hasher for hot-path integer-keyed maps.
//!
//! `std`'s default `RandomState` is SipHash with a per-process random seed —
//! robust against adversarial keys, but an order of magnitude more work than
//! needed to spread simulated line addresses across hash buckets, and it
//! showed up as one of the top entries when profiling the throughput
//! benchmark (the coherence oracle hashes two maps on *every* simulated
//! access). This hasher is one multiply plus one xor-shift per `u64`, with a
//! fixed seed: same process-independent layout everywhere, which also suits
//! a simulator whose every other component is deterministic.
//!
//! Only use it for trusted integer keys (addresses, IDs). It makes no
//! attempt at DoS resistance.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// One-multiply mixer (the 64-bit finalizer step from MurmurHash3's fmix64).
///
/// Implements [`Hasher`]; integer writes fold into the state with a strong
/// multiply + xor-shift, which is plenty of avalanche for bucket selection.
#[derive(Default)]
pub struct FastHasher {
    hash: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback for non-integer keys: fold 8 bytes at a time.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let mut z = self.hash ^ n;
        z = z.wrapping_mul(0xff51_afd7_ed55_8ccd);
        z ^= z >> 33;
        self.hash = z;
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed by trusted integers, using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// FNV-1a over a byte string — the workspace's stable content fingerprint
/// (sweep-cache keys, checkpoint-journal spec fingerprints). Unlike
/// [`FastHasher`], the result is part of on-disk formats, so the constants
/// are the published FNV-1a parameters and must never change.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn spreads_sequential_keys() {
        // Line addresses are often sequential; the hash must not leave them
        // clumped in the low bits hashbrown uses for bucket selection.
        let mut low_bits = std::collections::HashSet::new();
        for k in 0..128u64 {
            let mut h = FastHasher::default();
            h.write_u64(k);
            low_bits.insert(h.finish() & 0x7f);
        }
        assert!(low_bits.len() > 64, "poor spread: {}", low_bits.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for k in 0..1000 {
            m.insert(k, k * 3);
        }
        for k in 0..1000 {
            assert_eq!(m.get(&k), Some(&(k * 3)));
        }
    }

    #[test]
    fn fnv1a_matches_published_vectors() {
        // Reference values of the standard 64-bit FNV-1a parameters.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn byte_fallback_matches_width() {
        // write() folding must be a pure function of the bytes.
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FastHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}
