//! Deterministic random number generation.
//!
//! Every stochastic component of the simulator (workload generation, random
//! replacement, the NS allocation policy's 80/20 split, …) draws from a
//! [`SimRng`] derived from a master seed plus a component label. Identical
//! configurations therefore produce bit-identical simulations on every
//! platform, which the integration tests assert.
//!
//! The generator is a self-contained ChaCha12 stream cipher in counter mode
//! (no external crates, so the workspace builds without network access); the
//! 12-round variant is the same safety/performance point `rand_chacha`
//! defaults to.

/// Number of ChaCha double-rounds (12 rounds total).
const DOUBLE_ROUNDS: usize = 6;

/// The ChaCha block function: 16 input words -> 64 output bytes.
///
/// On x86-64 this dispatches to the SSE2 row-parallel implementation (SSE2
/// is part of the x86-64 baseline); everywhere else the portable scalar
/// version runs. Both produce bit-identical keystreams — asserted by a test
/// that runs the scalar reference against the dispatched version.
fn chacha12_block(input: &[u32; 16], out: &mut [u8; 64]) {
    #[cfg(target_arch = "x86_64")]
    chacha12_block_sse2(input, out);
    #[cfg(not(target_arch = "x86_64"))]
    chacha12_block_scalar(input, out);
}

/// Row-parallel ChaCha12: each 128-bit register holds one 4-word row, so a
/// quarter-round runs on all four columns at once; the diagonal rounds lane-
/// rotate rows 1–3 before and after the same quarter-round. Wrapping adds,
/// xors and rotates are exact on every lane, so the keystream matches the
/// scalar version bit for bit.
#[cfg(target_arch = "x86_64")]
fn chacha12_block_sse2(input: &[u32; 16], out: &mut [u8; 64]) {
    use std::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_loadu_si128, _mm_or_si128, _mm_shuffle_epi32, _mm_slli_epi32,
        _mm_srli_epi32, _mm_storeu_si128, _mm_xor_si128,
    };

    // SAFETY: SSE2 is unconditionally available on x86-64. Loads and stores
    // are the unaligned variants over exactly the 64 bytes of `input`/`out`.
    unsafe {
        macro_rules! rotl {
            ($x:expr, $n:literal) => {
                _mm_or_si128(_mm_slli_epi32($x, $n), _mm_srli_epi32($x, 32 - $n))
            };
        }
        macro_rules! qround {
            ($a:ident, $b:ident, $c:ident, $d:ident) => {
                $a = _mm_add_epi32($a, $b);
                $d = rotl!(_mm_xor_si128($d, $a), 16);
                $c = _mm_add_epi32($c, $d);
                $b = rotl!(_mm_xor_si128($b, $c), 12);
                $a = _mm_add_epi32($a, $b);
                $d = rotl!(_mm_xor_si128($d, $a), 8);
                $c = _mm_add_epi32($c, $d);
                $b = rotl!(_mm_xor_si128($b, $c), 7);
            };
        }

        let p = input.as_ptr().cast::<__m128i>();
        let mut a = _mm_loadu_si128(p);
        let mut b = _mm_loadu_si128(p.add(1));
        let mut c = _mm_loadu_si128(p.add(2));
        let mut d = _mm_loadu_si128(p.add(3));
        let (a0, b0, c0, d0) = (a, b, c, d);

        for _ in 0..DOUBLE_ROUNDS {
            // Column round: rows already line the columns up lane-wise.
            qround!(a, b, c, d);
            // Diagonalize: lane-rotate row 1 by one, row 2 by two, row 3 by
            // three, so lane l holds diagonal (l, 4+(l+1)%4, 8+(l+2)%4,
            // 12+(l+3)%4).
            b = _mm_shuffle_epi32(b, 0b00_11_10_01);
            c = _mm_shuffle_epi32(c, 0b01_00_11_10);
            d = _mm_shuffle_epi32(d, 0b10_01_00_11);
            qround!(a, b, c, d);
            // Undiagonalize (inverse rotations).
            b = _mm_shuffle_epi32(b, 0b10_01_00_11);
            c = _mm_shuffle_epi32(c, 0b01_00_11_10);
            d = _mm_shuffle_epi32(d, 0b00_11_10_01);
        }

        let q = out.as_mut_ptr().cast::<__m128i>();
        _mm_storeu_si128(q, _mm_add_epi32(a, a0));
        _mm_storeu_si128(q.add(1), _mm_add_epi32(b, b0));
        _mm_storeu_si128(q.add(2), _mm_add_epi32(c, c0));
        _mm_storeu_si128(q.add(3), _mm_add_epi32(d, d0));
    }
}

/// Portable scalar ChaCha12 — the reference the SIMD path is tested against,
/// and the implementation used on non-x86-64 targets.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
fn chacha12_block_scalar(input: &[u32; 16], out: &mut [u8; 64]) {
    #[inline(always)]
    fn qr(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }
    let mut x = *input;
    for _ in 0..DOUBLE_ROUNDS {
        // Column round.
        qr(&mut x, 0, 4, 8, 12);
        qr(&mut x, 1, 5, 9, 13);
        qr(&mut x, 2, 6, 10, 14);
        qr(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        qr(&mut x, 0, 5, 10, 15);
        qr(&mut x, 1, 6, 11, 12);
        qr(&mut x, 2, 7, 8, 13);
        qr(&mut x, 3, 4, 9, 14);
    }
    for (i, w) in x.iter().enumerate() {
        let sum = w.wrapping_add(input[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&sum.to_le_bytes());
    }
}

/// A deterministic, splittable RNG stream.
///
/// # Example
///
/// ```
/// use d2m_common::rng::SimRng;
///
/// let mut a = SimRng::from_label(42, "workload/canneal/node0");
/// let mut b = SimRng::from_label(42, "workload/canneal/node0");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u32; 16],
    buf: [u8; 64],
    /// Next unread byte in `buf`; 64 means the buffer is exhausted.
    pos: usize,
    /// Memoized Zipf normalizers (see [`SimRng::zipf`]). Inline and
    /// fixed-size so cloning an rng never allocates.
    zipf_cache: [ZipfNorm; ZIPF_CACHE_SLOTS],
    /// Round-robin replacement cursor for `zipf_cache`.
    zipf_next: usize,
}

/// One memoized Zipf normalizer: the `(n, s)` pair (with `s` compared
/// bit-exactly) and the harmonic normalizer computed from it. `n == 0`
/// marks an unused slot — `zipf` never caches `n < 2`.
#[derive(Clone, Copy, Debug)]
struct ZipfNorm {
    n: u64,
    s_bits: u64,
    hn: f64,
}

const ZIPF_CACHE_SLOTS: usize = 8;

const ZIPF_NORM_EMPTY: ZipfNorm = ZipfNorm {
    n: 0,
    s_bits: 0,
    hn: 0.0,
};

impl SimRng {
    /// Creates a stream from a raw 32-byte ChaCha key.
    pub fn from_seed(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        // Words 12..16: 64-bit block counter + 64-bit nonce, all zero.
        Self {
            state,
            buf: [0; 64],
            pos: 64,
            zipf_cache: [ZIPF_NORM_EMPTY; ZIPF_CACHE_SLOTS],
            zipf_next: 0,
        }
    }

    /// Derives a stream from a master seed and a component label.
    ///
    /// Distinct labels yield statistically independent streams; the same
    /// `(seed, label)` pair always yields the same stream.
    pub fn from_label(seed: u64, label: &str) -> Self {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        // FNV-1a over the label fills the rest of the key deterministically.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        key[8..16].copy_from_slice(&h.to_le_bytes());
        let mut h2 = h.rotate_left(31) ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for b in label.as_bytes().iter().rev() {
            h2 ^= *b as u64;
            h2 = h2.wrapping_mul(0x100_0000_01b5);
        }
        key[16..24].copy_from_slice(&h2.to_le_bytes());
        Self::from_seed(key)
    }

    /// Splits off an independent child stream.
    pub fn split(&mut self, label: &str) -> Self {
        Self::from_label(self.next_u64(), label)
    }

    fn refill(&mut self) {
        chacha12_block(&self.state, &mut self.buf);
        // Advance the 64-bit block counter (words 12/13).
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.pos = 0;
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.pos + 4 > 64 {
            self.refill();
        }
        let v = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        );
        self.pos += 4;
        v
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for b in dest {
            if self.pos >= 64 {
                self.refill();
            }
            *b = self.buf[self.pos];
            self.pos += 1;
        }
    }

    /// Uniform value in `[0, bound)` (unbiased via rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Widening-multiply rejection (Lemire): unbiased, one division in
        // the rare rejection path only.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli draw: true with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Zipf-distributed rank in `[0, n)` with exponent `s`, computed by
    /// inverse-transform over an approximate harmonic CDF.
    ///
    /// Small ranks are most likely — callers map rank 0 to the hottest item.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0);
        if n == 1 {
            return 0;
        }
        // Approximate inverse CDF for the Zipf distribution (bounded Pareto
        // approach): good enough for locality shaping, cheap, deterministic.
        let u = self.unit().max(1e-12);
        if (s - 1.0).abs() < 1e-9 {
            let hn = self.zipf_norm(n, 1.0, |n, _| (n as f64).ln());
            return ((u * hn).exp() - 1.0).min(n as f64 - 1.0) as u64;
        }
        let e = 1.0 - s;
        let hn = self.zipf_norm(n, s, |n, s| ((n as f64).powf(1.0 - s) - 1.0) / (1.0 - s));
        let x = (1.0 + u * hn * e).powf(1.0 / e) - 1.0;
        (x.min(n as f64 - 1.0)) as u64
    }

    /// Memoized Zipf normalizer: `compute(n, s)` is a pure function, so its
    /// cached value is the bit-identical `f64` a fresh computation would
    /// produce — the draw sequence does not depend on cache hits. Workloads
    /// sample from a handful of fixed `(n, s)` pairs, which otherwise pay a
    /// second `powf` on every draw (a top profile entry). `s` is compared
    /// bit-exactly; the `s ≈ 1` branch passes a canonical `1.0` because its
    /// normalizer only depends on `n`.
    fn zipf_norm(&mut self, n: u64, s: f64, compute: impl Fn(u64, f64) -> f64) -> f64 {
        let s_bits = s.to_bits();
        for e in &self.zipf_cache {
            if e.n == n && e.s_bits == s_bits {
                return e.hn;
            }
        }
        let hn = compute(n, s);
        self.zipf_cache[self.zipf_next] = ZipfNorm { n, s_bits, hn };
        self.zipf_next = (self.zipf_next + 1) % ZIPF_CACHE_SLOTS;
        hn
    }
}

/// Derives the seed for one independent stream of a multi-run sweep from a
/// master seed and the stream index.
///
/// The sweep engine gives every (config, workload) pair of a grid its own
/// stream so cells are statistically independent, yet each cell's seed is a
/// pure function of `(master_seed, index)` — results are bit-identical no
/// matter how many worker threads execute the grid or in which order.
///
/// The mix is SplitMix64 over `master_seed + index`, whose output is
/// equidistributed over consecutive indices.
pub fn derive_stream_seed(master_seed: u64, index: u64) -> u64 {
    let mut z = master_seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let mut a = SimRng::from_label(7, "x");
        let mut b = SimRng::from_label(7, "x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = SimRng::from_label(7, "x");
        let mut b = SimRng::from_label(7, "y");
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_label(1, "x");
        let mut b = SimRng::from_label(2, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chacha_keystream_is_nontrivial() {
        // The raw block function must not be an identity or constant map,
        // and consecutive blocks must differ.
        let mut r = SimRng::from_seed([0u8; 32]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        // Byte-level fill agrees with the word-level view of the stream.
        let mut r1 = SimRng::from_seed([7u8; 32]);
        let mut r2 = SimRng::from_seed([7u8; 32]);
        let mut bytes = [0u8; 8];
        r1.fill_bytes(&mut bytes);
        assert_eq!(u64::from_le_bytes(bytes), r2.next_u64());
    }

    #[test]
    fn dispatched_block_matches_scalar_reference() {
        // The SIMD path must be a bit-identical drop-in: run both on a
        // spread of inputs, including counter values that exercise carries.
        let mut state = [0u32; 16];
        for trial in 0u32..64 {
            for (i, w) in state.iter_mut().enumerate() {
                *w = (trial.wrapping_mul(0x9e37_79b9))
                    .wrapping_add((i as u32).wrapping_mul(0x85eb_ca6b));
            }
            state[12] = u32::MAX - (trial % 3);
            let mut got = [0u8; 64];
            let mut want = [0u8; 64];
            chacha12_block(&state, &mut got);
            chacha12_block_scalar(&state, &mut want);
            assert_eq!(got, want, "keystream diverged on trial {trial}");
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::from_label(1, "bound");
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::from_label(3, "uniform");
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = SimRng::from_label(1, "unit");
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let mut r = SimRng::from_label(1, "zipf");
        let n = 1000u64;
        let mut low = 0usize;
        for _ in 0..10_000 {
            let v = r.zipf(n, 0.9);
            assert!(v < n);
            if v < n / 10 {
                low += 1;
            }
        }
        // With s=0.9 the hottest decile should attract well over half the mass.
        assert!(low > 5_000, "zipf not skewed: {low}");
    }

    #[test]
    fn zipf_norm_cache_is_transparent() {
        // Interleave more distinct (n, s) pairs than the cache holds, forcing
        // evictions, and check every draw against the uncached closed-form
        // computation driven by a twin stream: the cache must never consume
        // randomness or change a normalizer's value.
        let mut cached = SimRng::from_label(9, "zipf-cache");
        let mut raw = SimRng::from_label(9, "zipf-cache");
        let pairs: Vec<(u64, f64)> = (0..(ZIPF_CACHE_SLOTS + 4))
            .map(|i| (50 + 10 * i as u64, 0.4 + 0.05 * i as f64))
            .collect();
        for step in 0..500 {
            let (n, s) = pairs[step % pairs.len()];
            let got = cached.zipf(n, s);
            let u = ((raw.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(1e-12);
            let want = if (s - 1.0).abs() < 1e-9 {
                let hn = (n as f64).ln();
                ((u * hn).exp() - 1.0).min(n as f64 - 1.0) as u64
            } else {
                let e = 1.0 - s;
                let hn = ((n as f64).powf(e) - 1.0) / e;
                (((1.0 + u * hn * e).powf(1.0 / e) - 1.0).min(n as f64 - 1.0)) as u64
            };
            assert_eq!(got, want, "draw diverged at step {step} (n={n}, s={s})");
        }
    }

    #[test]
    fn zipf_handles_degenerate_sizes() {
        let mut r = SimRng::from_label(1, "z1");
        assert_eq!(r.zipf(1, 1.0), 0);
        assert!(r.zipf(2, 1.0) < 2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_label(1, "c");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn stream_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| derive_stream_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| derive_stream_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "stream seeds must not collide");
        assert_ne!(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
    }
}
