//! Deterministic random number generation.
//!
//! Every stochastic component of the simulator (workload generation, random
//! replacement, the NS allocation policy's 80/20 split, …) draws from a
//! [`SimRng`] derived from a master seed plus a component label. Identical
//! configurations therefore produce bit-identical simulations on every
//! platform, which the integration tests assert.
//!
//! The generator is a self-contained ChaCha12 stream cipher in counter mode
//! (no external crates, so the workspace builds without network access); the
//! 12-round variant is the same safety/performance point `rand_chacha`
//! defaults to.

/// Number of ChaCha double-rounds (12 rounds total).
const DOUBLE_ROUNDS: usize = 6;

/// The ChaCha block function: 16 input words -> 64 output bytes.
fn chacha12_block(input: &[u32; 16], out: &mut [u8; 64]) {
    #[inline(always)]
    fn qr(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }
    let mut x = *input;
    for _ in 0..DOUBLE_ROUNDS {
        // Column round.
        qr(&mut x, 0, 4, 8, 12);
        qr(&mut x, 1, 5, 9, 13);
        qr(&mut x, 2, 6, 10, 14);
        qr(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        qr(&mut x, 0, 5, 10, 15);
        qr(&mut x, 1, 6, 11, 12);
        qr(&mut x, 2, 7, 8, 13);
        qr(&mut x, 3, 4, 9, 14);
    }
    for (i, w) in x.iter().enumerate() {
        let sum = w.wrapping_add(input[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&sum.to_le_bytes());
    }
}

/// A deterministic, splittable RNG stream.
///
/// # Example
///
/// ```
/// use d2m_common::rng::SimRng;
///
/// let mut a = SimRng::from_label(42, "workload/canneal/node0");
/// let mut b = SimRng::from_label(42, "workload/canneal/node0");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u32; 16],
    buf: [u8; 64],
    /// Next unread byte in `buf`; 64 means the buffer is exhausted.
    pos: usize,
}

impl SimRng {
    /// Creates a stream from a raw 32-byte ChaCha key.
    pub fn from_seed(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        // Words 12..16: 64-bit block counter + 64-bit nonce, all zero.
        Self {
            state,
            buf: [0; 64],
            pos: 64,
        }
    }

    /// Derives a stream from a master seed and a component label.
    ///
    /// Distinct labels yield statistically independent streams; the same
    /// `(seed, label)` pair always yields the same stream.
    pub fn from_label(seed: u64, label: &str) -> Self {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        // FNV-1a over the label fills the rest of the key deterministically.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        key[8..16].copy_from_slice(&h.to_le_bytes());
        let mut h2 = h.rotate_left(31) ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for b in label.as_bytes().iter().rev() {
            h2 ^= *b as u64;
            h2 = h2.wrapping_mul(0x100_0000_01b5);
        }
        key[16..24].copy_from_slice(&h2.to_le_bytes());
        Self::from_seed(key)
    }

    /// Splits off an independent child stream.
    pub fn split(&mut self, label: &str) -> Self {
        Self::from_label(self.next_u64(), label)
    }

    fn refill(&mut self) {
        chacha12_block(&self.state, &mut self.buf);
        // Advance the 64-bit block counter (words 12/13).
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.pos = 0;
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.pos + 4 > 64 {
            self.refill();
        }
        let v = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        );
        self.pos += 4;
        v
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for b in dest {
            if self.pos >= 64 {
                self.refill();
            }
            *b = self.buf[self.pos];
            self.pos += 1;
        }
    }

    /// Uniform value in `[0, bound)` (unbiased via rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Widening-multiply rejection (Lemire): unbiased, one division in
        // the rare rejection path only.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli draw: true with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Zipf-distributed rank in `[0, n)` with exponent `s`, computed by
    /// inverse-transform over an approximate harmonic CDF.
    ///
    /// Small ranks are most likely — callers map rank 0 to the hottest item.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0);
        if n == 1 {
            return 0;
        }
        // Approximate inverse CDF for the Zipf distribution (bounded Pareto
        // approach): good enough for locality shaping, cheap, deterministic.
        let u = self.unit().max(1e-12);
        if (s - 1.0).abs() < 1e-9 {
            let hn = (n as f64).ln();
            return ((u * hn).exp() - 1.0).min(n as f64 - 1.0) as u64;
        }
        let e = 1.0 - s;
        let hn = ((n as f64).powf(e) - 1.0) / e;
        let x = (1.0 + u * hn * e).powf(1.0 / e) - 1.0;
        (x.min(n as f64 - 1.0)) as u64
    }
}

/// Derives the seed for one independent stream of a multi-run sweep from a
/// master seed and the stream index.
///
/// The sweep engine gives every (config, workload) pair of a grid its own
/// stream so cells are statistically independent, yet each cell's seed is a
/// pure function of `(master_seed, index)` — results are bit-identical no
/// matter how many worker threads execute the grid or in which order.
///
/// The mix is SplitMix64 over `master_seed + index`, whose output is
/// equidistributed over consecutive indices.
pub fn derive_stream_seed(master_seed: u64, index: u64) -> u64 {
    let mut z = master_seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let mut a = SimRng::from_label(7, "x");
        let mut b = SimRng::from_label(7, "x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = SimRng::from_label(7, "x");
        let mut b = SimRng::from_label(7, "y");
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_label(1, "x");
        let mut b = SimRng::from_label(2, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chacha_keystream_is_nontrivial() {
        // The raw block function must not be an identity or constant map,
        // and consecutive blocks must differ.
        let mut r = SimRng::from_seed([0u8; 32]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        // Byte-level fill agrees with the word-level view of the stream.
        let mut r1 = SimRng::from_seed([7u8; 32]);
        let mut r2 = SimRng::from_seed([7u8; 32]);
        let mut bytes = [0u8; 8];
        r1.fill_bytes(&mut bytes);
        assert_eq!(u64::from_le_bytes(bytes), r2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::from_label(1, "bound");
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::from_label(3, "uniform");
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = SimRng::from_label(1, "unit");
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let mut r = SimRng::from_label(1, "zipf");
        let n = 1000u64;
        let mut low = 0usize;
        for _ in 0..10_000 {
            let v = r.zipf(n, 0.9);
            assert!(v < n);
            if v < n / 10 {
                low += 1;
            }
        }
        // With s=0.9 the hottest decile should attract well over half the mass.
        assert!(low > 5_000, "zipf not skewed: {low}");
    }

    #[test]
    fn zipf_handles_degenerate_sizes() {
        let mut r = SimRng::from_label(1, "z1");
        assert_eq!(r.zipf(1, 1.0), 0);
        assert!(r.zipf(2, 1.0) < 2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_label(1, "c");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn stream_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| derive_stream_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| derive_stream_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "stream seeds must not collide");
        assert_ne!(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
    }
}
