//! Deterministic random number generation.
//!
//! Every stochastic component of the simulator (workload generation, random
//! replacement, the NS allocation policy's 80/20 split, …) draws from a
//! [`SimRng`] derived from a master seed plus a component label. Identical
//! configurations therefore produce bit-identical simulations on every
//! platform, which the integration tests assert.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// A deterministic, splittable RNG stream.
///
/// # Example
///
/// ```
/// use d2m_common::rng::SimRng;
/// use rand::RngCore;
///
/// let mut a = SimRng::from_label(42, "workload/canneal/node0");
/// let mut b = SimRng::from_label(42, "workload/canneal/node0");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng(ChaCha12Rng);

impl SimRng {
    /// Derives a stream from a master seed and a component label.
    ///
    /// Distinct labels yield statistically independent streams; the same
    /// `(seed, label)` pair always yields the same stream.
    pub fn from_label(seed: u64, label: &str) -> Self {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        // FNV-1a over the label fills the rest of the key deterministically.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        key[8..16].copy_from_slice(&h.to_le_bytes());
        let mut h2 = h.rotate_left(31) ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for b in label.as_bytes().iter().rev() {
            h2 ^= *b as u64;
            h2 = h2.wrapping_mul(0x100_0000_01b5);
        }
        key[16..24].copy_from_slice(&h2.to_le_bytes());
        Self(ChaCha12Rng::from_seed(key))
    }

    /// Splits off an independent child stream.
    pub fn split(&mut self, label: &str) -> Self {
        Self::from_label(self.0.next_u64(), label)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        self.0.gen_range(0..bound)
    }

    /// Bernoulli draw: true with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.0.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// A Zipf-distributed rank in `[0, n)` with exponent `s`, computed by
    /// inverse-transform over an approximate harmonic CDF.
    ///
    /// Small ranks are most likely — callers map rank 0 to the hottest item.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0);
        if n == 1 {
            return 0;
        }
        // Approximate inverse CDF for the Zipf distribution (bounded Pareto
        // approach): good enough for locality shaping, cheap, deterministic.
        let u = self.unit().max(1e-12);
        if (s - 1.0).abs() < 1e-9 {
            let hn = (n as f64).ln();
            return ((u * hn).exp() - 1.0).min(n as f64 - 1.0) as u64;
        }
        let e = 1.0 - s;
        let hn = ((n as f64).powf(e) - 1.0) / e;
        let x = (1.0 + u * hn * e).powf(1.0 / e) - 1.0;
        (x.min(n as f64 - 1.0)) as u64
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let mut a = SimRng::from_label(7, "x");
        let mut b = SimRng::from_label(7, "x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = SimRng::from_label(7, "x");
        let mut b = SimRng::from_label(7, "y");
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_label(1, "x");
        let mut b = SimRng::from_label(2, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::from_label(1, "bound");
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let mut r = SimRng::from_label(1, "zipf");
        let n = 1000u64;
        let mut low = 0usize;
        for _ in 0..10_000 {
            let v = r.zipf(n, 0.9);
            assert!(v < n);
            if v < n / 10 {
                low += 1;
            }
        }
        // With s=0.9 the hottest decile should attract well over half the mass.
        assert!(low > 5_000, "zipf not skewed: {low}");
    }

    #[test]
    fn zipf_handles_degenerate_sizes() {
        let mut r = SimRng::from_label(1, "z1");
        assert_eq!(r.zipf(1, 1.0), 0);
        assert!(r.zipf(2, 1.0) < 2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_label(1, "c");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
