//! Statistics plumbing: counter registries, running means and histograms.
//!
//! Systems expose their raw event counts through a [`Counters`] map so the
//! experiment harness can diff arbitrary systems without each crate exporting
//! a bespoke struct. Hot paths keep plain `u64` fields and only materialize a
//! `Counters` snapshot when asked.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered name→count map snapshot of a component's statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters(BTreeMap<String, u64>);

impl Counters {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or overwrites) a counter.
    pub fn set(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        self.0.insert(name.into(), value);
        self
    }

    /// Adds to a counter, creating it at zero if absent.
    pub fn add(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        *self.0.entry(name.into()).or_insert(0) += value;
        self
    }

    /// Reads a counter; absent counters read as zero.
    pub fn get(&self, name: &str) -> u64 {
        self.0.get(name).copied().unwrap_or(0)
    }

    /// Merges another registry into this one, prefixing its names.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &Counters) {
        for (k, v) in &other.0 {
            self.add(format!("{prefix}{k}"), *v);
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.0.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no counter has been recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.0
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.0 {
            writeln!(f, "{k:<48} {v}")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, u64)> for Counters {
    fn from_iter<T: IntoIterator<Item = (String, u64)>>(iter: T) -> Self {
        Self(iter.into_iter().collect())
    }
}

impl Extend<(String, u64)> for Counters {
    fn extend<T: IntoIterator<Item = (String, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

/// Incremental mean without storing samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl RunningMean {
    /// Creates an empty mean.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.sum += x;
        self.n += 1;
    }

    /// Records a pre-aggregated batch (`sum` over `n` samples).
    #[inline]
    pub fn record_batch(&mut self, sum: f64, n: u64) {
        self.sum += sum;
        self.n += n;
    }

    /// The mean so far, or 0.0 when no samples were recorded.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of samples recorded.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// Fixed-bucket latency histogram (power-of-two buckets).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `log2_buckets` power-of-two buckets
    /// (bucket *i* counts samples in `[2^i, 2^(i+1))`, bucket 0 counts 0–1).
    pub fn new(log2_buckets: usize) -> Self {
        Self {
            buckets: vec![0; log2_buckets],
            overflow: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, x: u64) {
        let idx = (64 - x.max(1).leading_zeros() - 1) as usize;
        if let Some(b) = self.buckets.get_mut(idx) {
            *b += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Bucket contents (`[2^i, 2^(i+1))` counts) followed by overflow.
    pub fn buckets(&self) -> (&[u64], u64) {
        (&self.buckets, self.overflow)
    }

    /// Merges another histogram into this one, bucket by bucket. The bucket
    /// vector grows to the wider of the two, so merging never loses samples
    /// to overflow that the source had resolved.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, b) in other.buckets.iter().enumerate() {
            self.buckets[i] += b;
        }
        self.overflow += other.overflow;
    }

    /// Approximate quantile using bucket upper bounds.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        u64::MAX
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new(16)
    }
}

impl crate::json::ToJson for Histogram {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::Obj(vec![
            (
                "buckets".to_string(),
                Json::Arr(self.buckets.iter().map(|&b| Json::U64(b)).collect()),
            ),
            ("overflow".to_string(), Json::U64(self.overflow)),
        ])
    }
}

impl crate::json::FromJson for Histogram {
    fn from_json(json: &crate::json::Json) -> Result<Self, crate::json::JsonError> {
        Ok(Self {
            buckets: json.field::<Vec<u64>>("buckets")?,
            overflow: json.field::<u64>("overflow")?,
        })
    }
}

/// Geometric mean over a nonempty slice of positive values; the paper reports
/// per-suite gmeans in every figure.
///
/// Values `<= 0` are clamped to a tiny epsilon rather than poisoning the
/// result, since normalized metrics can round to zero.
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_get() {
        let mut c = Counters::new();
        c.add("msg.read", 3).add("msg.read", 4).set("msg.inv", 9);
        assert_eq!(c.get("msg.read"), 7);
        assert_eq!(c.get("msg.inv"), 9);
        assert_eq!(c.get("absent"), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn counters_prefix_sum_and_merge() {
        let mut a = Counters::new();
        a.add("x.a", 1).add("x.b", 2).add("y.a", 10);
        assert_eq!(a.sum_prefix("x."), 3);
        let mut top = Counters::new();
        top.merge_prefixed("n0.", &a);
        assert_eq!(top.get("n0.x.b"), 2);
        assert_eq!(top.sum_prefix("n0."), 13);
    }

    #[test]
    fn counters_display_lists_all() {
        let mut c = Counters::new();
        c.add("alpha", 1).add("beta", 2);
        let s = c.to_string();
        assert!(s.contains("alpha") && s.contains("beta"));
    }

    #[test]
    fn running_mean_basic() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.record(2.0);
        m.record(4.0);
        assert!((m.mean() - 3.0).abs() < 1e-12);
        m.record_batch(6.0, 2);
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn histogram_buckets_and_quantile() {
        let mut h = Histogram::new(8);
        for x in [1u64, 2, 3, 4, 200, 100_000] {
            h.record(x);
        }
        assert_eq!(h.count(), 6);
        let (_, overflow) = h.buckets();
        assert_eq!(overflow, 1); // 100_000 exceeds 2^8
        assert!(h.quantile(0.5) <= 8);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new(8);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        let (buckets, overflow) = h.buckets();
        assert!(buckets.iter().all(|&b| b == 0));
        assert_eq!(overflow, 0);
    }

    #[test]
    fn histogram_single_sample() {
        let mut h = Histogram::new(8);
        h.record(5); // 2^2 ≤ 5 < 2^3 → bucket 2
        assert_eq!(h.count(), 1);
        let (buckets, overflow) = h.buckets();
        assert_eq!(buckets[2], 1);
        assert_eq!(overflow, 0);
        assert_eq!(h.quantile(0.5), 8); // bucket 2's upper bound
        assert_eq!(h.quantile(1.0), 8);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // 0 and 1 land in bucket 0; each exact power of two opens its bucket;
        // `2^i - 1` stays in the previous one.
        let mut h = Histogram::new(8);
        h.record(0);
        h.record(1);
        let (b, _) = h.buckets();
        assert_eq!(b[0], 2);

        let mut h = Histogram::new(8);
        for i in 1..8u32 {
            h.record(1u64 << i); // first value of bucket i
            h.record((1u64 << i) - 1); // last value of bucket i-1
        }
        let (b, overflow) = h.buckets();
        assert_eq!(overflow, 0);
        assert_eq!(b[0], 1); // the single `2^1 - 1 = 1`
        for i in 1..7usize {
            assert_eq!(b[i], 2, "bucket {i}: opener + closer of the next");
        }
        assert_eq!(b[7], 1); // 2^7 recorded, 2^8 - 1 never was
                             // The first out-of-range value overflows.
        h.record(1u64 << 8);
        let (_, overflow) = h.buckets();
        assert_eq!(overflow, 1);
    }

    #[test]
    fn histogram_u64_max_overflows() {
        let mut h = Histogram::new(16);
        h.record(u64::MAX); // index 63 ≥ 16 buckets
        assert_eq!(h.count(), 1);
        let (buckets, overflow) = h.buckets();
        assert!(buckets.iter().all(|&b| b == 0));
        assert_eq!(overflow, 1);
        assert_eq!(h.quantile(0.5), u64::MAX);
    }

    #[test]
    fn histogram_merge_grows_and_adds() {
        let mut a = Histogram::new(4);
        a.record(3);
        a.record(1 << 10); // overflows the 4-bucket histogram
        let mut b = Histogram::new(12);
        b.record(3);
        b.record(1 << 10); // resolved by the 12-bucket histogram
        a.merge(&b);
        assert_eq!(a.count(), 4);
        let (buckets, overflow) = a.buckets();
        assert_eq!(buckets.len(), 12);
        assert_eq!(buckets[1], 2);
        assert_eq!(buckets[10], 1);
        assert_eq!(overflow, 1);
    }

    #[test]
    fn histogram_json_roundtrip() {
        use crate::json::{FromJson, ToJson};
        let mut h = Histogram::new(6);
        h.record(1);
        h.record(40);
        h.record(u64::MAX);
        let j = h.to_json();
        let back = Histogram::from_json(&j).unwrap();
        assert_eq!(back, h);
        assert_eq!(j.to_string_compact(), back.to_json().to_string_compact());
    }

    #[test]
    fn gmean_matches_hand_computation() {
        let g = gmean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 0.0);
    }

    #[test]
    fn counters_from_iter() {
        let c: Counters = vec![("a".to_string(), 1u64), ("b".to_string(), 2)]
            .into_iter()
            .collect();
        assert_eq!(c.get("b"), 2);
    }
}
