//! Zero-cost-when-off transaction observability.
//!
//! Systems expose an `access_probed(access, now, Option<&mut dyn Probe>)`
//! entry point next to their plain `access`. With `None` the call compiles
//! down to the unprobed path (one branch, no event construction); with a
//! probe, every completed transaction is reported as a typed [`TxnEvent`] —
//! which metadata level resolved the lookup, which endpoint serviced the
//! data, how many interconnect messages the transaction generated — so a run
//! can be dissected per level and per service endpoint without touching the
//! aggregate counters the figures are built from.
//!
//! [`NoopProbe`] discards everything (useful as an explicit "off" value);
//! [`RecordingProbe`] accumulates deterministic, mergeable distributions and
//! renders them as [`crate::json`] for the CLI's `--histograms`/`--trace-out`
//! output.

use crate::json::{Json, ToJson};
use crate::outcome::ServicedBy;
use crate::stats::Histogram;

/// The access kind, as seen by the observability layer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TxnKind {
    /// Instruction fetch.
    IFetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl TxnKind {
    /// All kinds, in report order.
    pub const ALL: [TxnKind; 3] = [TxnKind::IFetch, TxnKind::Load, TxnKind::Store];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            TxnKind::IFetch => "ifetch",
            TxnKind::Load => "load",
            TxnKind::Store => "store",
        }
    }

    /// Position in [`Self::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The deepest lookup structure a transaction's *metadata resolution*
/// reached: MD1/MD2/MD3 for D2M, L1 tags / L2 tags / directory+LLC tags for
/// the baselines. This is the per-level breakdown Trimma-style evaluations
/// report.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LookupLevel {
    /// Resolved at the first level (MD1 or the L1 tag check).
    L1,
    /// Resolved at the second level (MD2 or L2 tags).
    L2,
    /// Went to the global level (MD3 or the directory/LLC).
    L3,
}

impl LookupLevel {
    /// All levels, in report order.
    pub const ALL: [LookupLevel; 3] = [LookupLevel::L1, LookupLevel::L2, LookupLevel::L3];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            LookupLevel::L1 => "l1",
            LookupLevel::L2 => "l2",
            LookupLevel::L3 => "l3",
        }
    }

    /// Position in [`Self::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One completed memory transaction, as reported to a [`Probe`].
#[derive(Clone, Copy, Debug)]
pub struct TxnEvent {
    /// Issuing node.
    pub node: u8,
    /// Access kind.
    pub kind: TxnKind,
    /// Deepest metadata/tag level the lookup reached.
    pub level: LookupLevel,
    /// True when the access hit in L1.
    pub l1_hit: bool,
    /// True for a late hit (fill in flight).
    pub late: bool,
    /// On a private-cache miss: whether the region was classified private
    /// (D2M only; `None` for hits and baselines).
    pub private_miss: Option<bool>,
    /// Endpoint that serviced the data.
    pub serviced: ServicedBy,
    /// On-chip messages this transaction put on the interconnect.
    pub hops: u64,
    /// End-to-end latency in cycles.
    pub latency: u64,
}

/// Receiver of transaction events. All methods default to no-ops so
/// implementations only override what they observe.
pub trait Probe {
    /// One completed transaction.
    fn txn(&mut self, ev: &TxnEvent);

    /// A named phase boundary (e.g. `"warmup"` → `"measured"`).
    fn phase(&mut self, name: &str) {
        let _ = name;
    }
}

/// A probe that discards every event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    fn txn(&mut self, _ev: &TxnEvent) {}
}

/// Number of latency-histogram buckets a [`RecordingProbe`] keeps: latencies
/// are bounded by a few memory round trips, 2^16 cycles is far above any.
const LATENCY_BUCKETS: usize = 16;
/// Hop counts per transaction are small; 2^8 is a generous ceiling.
const HOP_BUCKETS: usize = 8;

/// A probe that accumulates deterministic, mergeable distributions.
///
/// Everything recorded here is a pure function of the event stream, so two
/// probes fed the same transactions — regardless of wall-clock interleaving
/// with other cells — serialize to byte-identical JSON via
/// [`Self::report`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordingProbe {
    /// Total transactions observed.
    pub events: u64,
    /// L1 hits among them.
    pub l1_hits: u64,
    /// Late hits.
    pub late_hits: u64,
    /// Misses classified to private regions.
    pub private_misses: u64,
    /// Misses classified to shared regions.
    pub shared_misses: u64,
    /// Transactions by [`TxnKind`] (index order).
    pub by_kind: [u64; 3],
    /// Transactions by [`LookupLevel`] (index order).
    pub by_level: [u64; 3],
    /// Transactions by [`ServicedBy`] (index order).
    pub by_serviced: [u64; 7],
    /// Log2-bucketed latency distribution over all transactions.
    pub latency: Histogram,
    /// Latency distribution per service endpoint ([`ServicedBy::ALL`] order).
    pub latency_by_serviced: Vec<Histogram>,
    /// Log2-bucketed on-chip hop-count distribution.
    pub hops: Histogram,
    /// Phase markers: `(name, events observed when the marker arrived)`.
    pub phases: Vec<(String, u64)>,
}

impl Default for RecordingProbe {
    fn default() -> Self {
        Self {
            events: 0,
            l1_hits: 0,
            late_hits: 0,
            private_misses: 0,
            shared_misses: 0,
            by_kind: [0; 3],
            by_level: [0; 3],
            by_serviced: [0; 7],
            latency: Histogram::new(LATENCY_BUCKETS),
            latency_by_serviced: vec![Histogram::new(LATENCY_BUCKETS); ServicedBy::ALL.len()],
            hops: Histogram::new(HOP_BUCKETS),
            phases: Vec::new(),
        }
    }
}

impl RecordingProbe {
    /// Creates an empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another probe's accumulations into this one (phase markers are
    /// appended in the other's order).
    pub fn merge(&mut self, other: &RecordingProbe) {
        self.events += other.events;
        self.l1_hits += other.l1_hits;
        self.late_hits += other.late_hits;
        self.private_misses += other.private_misses;
        self.shared_misses += other.shared_misses;
        for i in 0..3 {
            self.by_kind[i] += other.by_kind[i];
            self.by_level[i] += other.by_level[i];
        }
        for i in 0..7 {
            self.by_serviced[i] += other.by_serviced[i];
        }
        self.latency.merge(&other.latency);
        for (mine, theirs) in self
            .latency_by_serviced
            .iter_mut()
            .zip(&other.latency_by_serviced)
        {
            mine.merge(theirs);
        }
        self.hops.merge(&other.hops);
        self.phases.extend(other.phases.iter().cloned());
    }

    /// Renders the accumulated distributions as deterministic JSON.
    pub fn report(&self) -> Json {
        let count_map = |names: &[&str], counts: &[u64]| {
            Json::Obj(
                names
                    .iter()
                    .zip(counts)
                    .map(|(n, &c)| (n.to_string(), Json::U64(c)))
                    .collect(),
            )
        };
        let kind_names: Vec<&str> = TxnKind::ALL.iter().map(|k| k.name()).collect();
        let level_names: Vec<&str> = LookupLevel::ALL.iter().map(|l| l.name()).collect();
        let serviced_names: Vec<&str> = ServicedBy::ALL.iter().map(|s| s.name()).collect();
        Json::Obj(vec![
            ("events".to_string(), Json::U64(self.events)),
            ("l1_hits".to_string(), Json::U64(self.l1_hits)),
            ("late_hits".to_string(), Json::U64(self.late_hits)),
            ("private_misses".to_string(), Json::U64(self.private_misses)),
            ("shared_misses".to_string(), Json::U64(self.shared_misses)),
            ("by_kind".to_string(), count_map(&kind_names, &self.by_kind)),
            (
                "by_level".to_string(),
                count_map(&level_names, &self.by_level),
            ),
            (
                "by_serviced".to_string(),
                count_map(&serviced_names, &self.by_serviced),
            ),
            ("latency".to_string(), self.latency.to_json()),
            (
                "latency_by_serviced".to_string(),
                Json::Obj(
                    ServicedBy::ALL
                        .iter()
                        .map(|s| {
                            (
                                s.name().to_string(),
                                self.latency_by_serviced[s.index()].to_json(),
                            )
                        })
                        .collect(),
                ),
            ),
            ("hops".to_string(), self.hops.to_json()),
            (
                "phases".to_string(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|(name, at)| {
                            Json::Obj(vec![
                                ("name".to_string(), Json::Str(name.clone())),
                                ("events".to_string(), Json::U64(*at)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl Probe for RecordingProbe {
    fn txn(&mut self, ev: &TxnEvent) {
        self.events += 1;
        if ev.l1_hit {
            self.l1_hits += 1;
        }
        if ev.late {
            self.late_hits += 1;
        }
        match ev.private_miss {
            Some(true) => self.private_misses += 1,
            Some(false) => self.shared_misses += 1,
            None => {}
        }
        self.by_kind[ev.kind.index()] += 1;
        self.by_level[ev.level.index()] += 1;
        self.by_serviced[ev.serviced.index()] += 1;
        self.latency.record(ev.latency);
        self.latency_by_serviced[ev.serviced.index()].record(ev.latency);
        self.hops.record(ev.hops);
    }

    fn phase(&mut self, name: &str) {
        self.phases.push((name.to_string(), self.events));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TxnKind, level: LookupLevel, serviced: ServicedBy) -> TxnEvent {
        TxnEvent {
            node: 0,
            kind,
            level,
            l1_hit: serviced == ServicedBy::L1,
            late: false,
            private_miss: if serviced == ServicedBy::L1 {
                None
            } else {
                Some(true)
            },
            serviced,
            hops: 2,
            latency: 40,
        }
    }

    #[test]
    fn recording_probe_attributes_events() {
        let mut p = RecordingProbe::new();
        p.phase("warmup");
        p.txn(&ev(TxnKind::Load, LookupLevel::L1, ServicedBy::L1));
        p.txn(&ev(TxnKind::Store, LookupLevel::L3, ServicedBy::Mem));
        p.phase("measured");
        p.txn(&ev(TxnKind::IFetch, LookupLevel::L2, ServicedBy::Llc));
        assert_eq!(p.events, 3);
        assert_eq!(p.l1_hits, 1);
        assert_eq!(p.private_misses, 2);
        assert_eq!(p.by_kind, [1, 1, 1]);
        assert_eq!(p.by_level, [1, 1, 1]);
        assert_eq!(p.by_serviced[ServicedBy::Mem.index()], 1);
        assert_eq!(p.latency.count(), 3);
        assert_eq!(p.latency_by_serviced[ServicedBy::Llc.index()].count(), 1);
        assert_eq!(
            p.phases,
            vec![("warmup".to_string(), 0), ("measured".to_string(), 2)]
        );
    }

    #[test]
    fn merge_is_addition() {
        let mut a = RecordingProbe::new();
        a.txn(&ev(TxnKind::Load, LookupLevel::L1, ServicedBy::L1));
        let mut b = RecordingProbe::new();
        b.txn(&ev(TxnKind::Load, LookupLevel::L3, ServicedBy::Mem));
        b.txn(&ev(TxnKind::Store, LookupLevel::L2, ServicedBy::L2));
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.events, 3);
        assert_eq!(m.by_level, [1, 1, 1]);
        assert_eq!(m.latency.count(), 3);
    }

    #[test]
    fn report_is_deterministic() {
        let mut a = RecordingProbe::new();
        let mut b = RecordingProbe::new();
        for p in [&mut a, &mut b] {
            p.txn(&ev(TxnKind::Load, LookupLevel::L2, ServicedBy::RemoteNs));
        }
        assert_eq!(a.report().to_string_pretty(), b.report().to_string_pretty());
        let text = a.report().to_string_pretty();
        assert!(text.contains("\"by_level\""));
        assert!(text.contains("\"ns_remote\""));
    }

    #[test]
    fn noop_probe_does_nothing() {
        let mut p = NoopProbe;
        p.txn(&ev(TxnKind::Load, LookupLevel::L1, ServicedBy::L1));
        p.phase("x");
    }
}
