//! Minimal, deterministic JSON support.
//!
//! The workspace builds with no external crates (the build environment has
//! no network access to crates.io), so this module replaces `serde` +
//! `serde_json` for the small amount of (de)serialization the harness needs:
//! metric snapshots, sweep results, machine-config hashing and golden-test
//! fixtures.
//!
//! Determinism is a hard requirement: the sweep engine asserts that a
//! parallel run emits **byte-identical** JSON to a single-threaded run, and
//! golden tests diff snapshots textually. Object keys therefore preserve
//! insertion order (no hash maps), integers and floats are kept distinct,
//! and floats print via Rust's shortest-roundtrip `Display`.
//!
//! # Example
//!
//! ```
//! use d2m_common::json::{Json, ToJson};
//!
//! let j = Json::Obj(vec![
//!     ("name".into(), "fft".to_json()),
//!     ("cycles".into(), 1234u64.to_json()),
//! ]);
//! let text = j.to_string_compact();
//! assert_eq!(text, r#"{"name":"fft","cycles":1234}"#);
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("cycles").and_then(Json::as_u64), Some(1234));
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::stats::Counters;

/// A JSON value with insertion-ordered objects and exact integers.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (most counters).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number; non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved exactly as built or parsed.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`] or a [`FromJson`] conversion.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Looks up a key in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element access; `None` for non-arrays/out-of-range.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts any numeric representation).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Typed field extraction for [`FromJson`] struct decoding.
    ///
    /// # Errors
    ///
    /// Fails when the key is missing or the value does not convert.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        match self.get(key) {
            Some(v) => T::from_json(v).map_err(|e| JsonError(format!("field {key:?}: {}", e.0))),
            None => err(format!("missing field {key:?}")),
        }
    }

    /// Compact rendering (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's Display for f64 is shortest-roundtrip and
                    // deterministic; "2" (no dot) is fine, the parser keeps
                    // numeric kinds interchangeable for f64 targets.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| JsonError("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| JsonError("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed for our own
                            // output (counter names and workload names are
                            // ASCII); reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| JsonError("surrogate \\u escape".into()))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::F64(v)),
            Err(_) => err(format!("bad number {text:?} at byte {start}")),
        }
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decodes `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first mismatch.
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_bool().ok_or_else(|| JsonError("expected bool".into()))
    }
}

macro_rules! impl_json_uint {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
        impl FromJson for $ty {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                let v = j.as_u64().ok_or_else(|| JsonError("expected unsigned integer".into()))?;
                <$ty>::try_from(v).map_err(|_| JsonError("integer out of range".into()))
            }
        }
    )+};
}
impl_json_uint!(u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            // Non-finite floats serialize as null; accept that back.
            Json::Null => Ok(f64::NAN),
            _ => j
                .as_f64()
                .ok_or_else(|| JsonError("expected number".into())),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError("expected string".into()))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_array()
            .ok_or_else(|| JsonError("expected array".into()))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl ToJson for Counters {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), Json::U64(v)))
                .collect(),
        )
    }
}

impl FromJson for Counters {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| JsonError(format!("counter {k:?} not an integer")))
                })
                .collect(),
            _ => err("expected counters object"),
        }
    }
}

impl ToJson for BTreeMap<String, u64> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), Json::U64(*v)))
                .collect(),
        )
    }
}

/// Implements [`ToJson`] and [`FromJson`] for a struct with named fields.
///
/// All listed fields are serialized in declaration order and are required on
/// decode; fields after `skip:` are excluded from the JSON and rebuilt with
/// `Default::default()`.
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        $crate::impl_json_struct!(@imp $ty { $($field),+ } skip { });
    };
    ($ty:ty { $($field:ident),+ $(,)? } skip { $($skipped:ident),* $(,)? }) => {
        $crate::impl_json_struct!(@imp $ty { $($field),+ } skip { $($skipped),* });
    };
    (@imp $ty:ty { $($field:ident),+ } skip { $($skipped:ident),* }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field))),+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(j: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: j.field(stringify!($field))?,)+
                    $($skipped: Default::default(),)*
                })
            }
        }
    };
}

/// Implements [`ToJson`] and [`FromJson`] for a fieldless enum, using each
/// variant's identifier as its JSON string.
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                let name = match self {
                    $(<$ty>::$variant => stringify!($variant)),+
                };
                $crate::json::Json::Str(name.to_string())
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(j: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                match j.as_str() {
                    $(Some(stringify!($variant)) => Ok(<$ty>::$variant),)+
                    Some(other) => Err($crate::json::JsonError(format!(
                        "unknown {} variant {other:?}", stringify!($ty)
                    ))),
                    None => Err($crate::json::JsonError("expected string".into())),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text, "{text}");
        }
    }

    #[test]
    fn parse_nested_document() {
        let v = Json::parse(r#"{"a": [1, 2.5, {"b": "x\n"}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().at(0).unwrap().as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().at(1).unwrap().as_f64(), Some(2.5));
        assert_eq!(
            v.get("a")
                .unwrap()
                .at(2)
                .unwrap()
                .get("b")
                .unwrap()
                .as_str(),
            Some("x\n")
        );
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn compact_output_reparses_identically() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a \"quote\" and \\ slash".into())),
            ("n".into(), Json::F64(0.125)),
            ("i".into(), Json::U64(u64::MAX)),
            ("arr".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = v.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
        let pretty = v.to_string_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn key_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.to_string_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn rejects_malformed_input() {
        for text in ["{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "\"abc", "{} {}"] {
            assert!(Json::parse(text).is_err(), "{text}");
        }
    }

    #[test]
    fn counters_roundtrip() {
        let mut c = Counters::new();
        c.add("l1d.misses", 10).add("noc.msg_total", 3);
        let j = c.to_json();
        assert_eq!(Counters::from_json(&j).unwrap(), c);
    }

    #[derive(Debug, PartialEq, Default)]
    struct Demo {
        x: u64,
        y: f64,
        name: String,
    }
    impl_json_struct!(Demo { x, y, name });

    #[test]
    fn struct_macro_roundtrips() {
        let d = Demo {
            x: 5,
            y: 1.25,
            name: "n".into(),
        };
        let j = d.to_json();
        assert_eq!(j.to_string_compact(), r#"{"x":5,"y":1.25,"name":"n"}"#);
        assert_eq!(Demo::from_json(&j).unwrap(), d);
        assert!(Demo::from_json(&Json::parse(r#"{"x":5}"#).unwrap()).is_err());
    }

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Blue,
    }
    impl_json_enum!(Color { Red, Blue });

    #[test]
    fn enum_macro_roundtrips() {
        assert_eq!(Color::Red.to_json().as_str(), Some("Red"));
        assert_eq!(
            Color::from_json(&Json::Str("Blue".into())).unwrap(),
            Color::Blue
        );
        assert!(Color::from_json(&Json::Str("Green".into())).is_err());
    }

    #[test]
    fn float_display_is_shortest_roundtrip() {
        // 2.0 prints as "2": numeric kind may change across a roundtrip but
        // the value may not, and output is deterministic either way.
        assert_eq!(Json::F64(2.0).to_string_compact(), "2");
        assert_eq!(Json::parse("2").unwrap().as_f64(), Some(2.0));
        assert_eq!(Json::F64(f64::NAN).to_string_compact(), "null");
    }
}
