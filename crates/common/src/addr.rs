//! Strongly-typed addresses and cache geometry.
//!
//! The paper's geometry is fixed throughout the evaluation: 64-byte
//! cachelines grouped into *regions* of 16 adjacent cachelines (1 KB).
//! Metadata (Location Information) is kept per region with one LI entry per
//! cacheline, so most of the simulator operates on [`RegionAddr`] +
//! a 4-bit in-region line offset.
//!
//! Newtypes distinguish virtual from physical addresses ([`VAddr`] /
//! [`PAddr`]) and line- from region-granular addresses so they cannot be
//! mixed up silently (C-NEWTYPE).

use std::fmt;

/// Bytes per cacheline (64 B in the paper).
pub const LINE_BYTES: usize = 64;
/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;
/// Cachelines per metadata region (16 in the paper, i.e. 1 KB regions).
pub const LINES_PER_REGION: usize = 16;
/// log2 of [`LINES_PER_REGION`].
pub const REGION_LINE_SHIFT: u32 = 4;
/// Bytes per region (1 KB).
pub const REGION_BYTES: usize = LINE_BYTES * LINES_PER_REGION;
/// log2 of [`REGION_BYTES`].
pub const REGION_SHIFT: u32 = LINE_SHIFT + REGION_LINE_SHIFT;
/// Bytes per (small) page, used by the TLB models.
pub const PAGE_BYTES: usize = 4096;
/// log2 of [`PAGE_BYTES`].
pub const PAGE_SHIFT: u32 = 12;

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.0
            }
        }
    };
}

addr_newtype!(
    /// A byte-granular *virtual* address as issued by a core.
    VAddr
);
addr_newtype!(
    /// A byte-granular *physical* address after translation.
    PAddr
);
addr_newtype!(
    /// A line-granular physical address (`PAddr >> 6`).
    LineAddr
);
addr_newtype!(
    /// A region-granular physical address (`PAddr >> 10`).
    RegionAddr
);
addr_newtype!(
    /// A region-granular *virtual* address, used to tag MD1 entries.
    VRegionAddr
);

impl VAddr {
    /// The virtual region this address falls in (MD1 tag granularity).
    #[inline]
    pub const fn vregion(self) -> VRegionAddr {
        VRegionAddr::new(self.0 >> REGION_SHIFT)
    }

    /// The 4-bit line offset within the region.
    #[inline]
    pub const fn region_offset(self) -> LineOffset {
        LineOffset(((self.0 >> LINE_SHIFT) & (LINES_PER_REGION as u64 - 1)) as u8)
    }

    /// The virtual page number (4 KB pages).
    #[inline]
    pub const fn vpage(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }
}

impl PAddr {
    /// The physical line this address falls in.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr::new(self.0 >> LINE_SHIFT)
    }

    /// The physical region this address falls in.
    #[inline]
    pub const fn region(self) -> RegionAddr {
        RegionAddr::new(self.0 >> REGION_SHIFT)
    }
}

impl LineAddr {
    /// The region containing this line.
    #[inline]
    pub const fn region(self) -> RegionAddr {
        RegionAddr::new(self.0 >> REGION_LINE_SHIFT)
    }

    /// The 4-bit offset of this line within its region.
    #[inline]
    pub const fn region_offset(self) -> LineOffset {
        LineOffset((self.0 & (LINES_PER_REGION as u64 - 1)) as u8)
    }

    /// The first byte address of this line.
    #[inline]
    pub const fn base(self) -> PAddr {
        PAddr::new(self.0 << LINE_SHIFT)
    }
}

impl RegionAddr {
    /// The line at `offset` within this region.
    #[inline]
    pub const fn line(self, offset: LineOffset) -> LineAddr {
        LineAddr::new((self.0 << REGION_LINE_SHIFT) | offset.0 as u64)
    }

    /// Iterator over all 16 lines of this region.
    pub fn lines(self) -> impl Iterator<Item = LineAddr> {
        (0..LINES_PER_REGION as u8).map(move |o| self.line(LineOffset(o)))
    }

    /// The first byte address of this region.
    #[inline]
    pub const fn base(self) -> PAddr {
        PAddr::new(self.0 << REGION_SHIFT)
    }
}

/// A 4-bit line offset within a region (0..16).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LineOffset(u8);

impl LineOffset {
    /// Creates an offset.
    ///
    /// # Panics
    ///
    /// Panics if `off >= 16`.
    #[inline]
    pub fn new(off: u8) -> Self {
        assert!(
            (off as usize) < LINES_PER_REGION,
            "line offset {off} out of range"
        );
        Self(off)
    }

    /// All 16 offsets in order.
    pub fn all() -> impl Iterator<Item = LineOffset> {
        (0..LINES_PER_REGION as u8).map(LineOffset)
    }

    /// The raw offset value.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl From<LineOffset> for usize {
    fn from(o: LineOffset) -> usize {
        o.0 as usize
    }
}

impl fmt::Display for LineOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifies one of the (up to 8) nodes of the chip.
///
/// The paper's LI encoding reserves 3 bits for node IDs, so values must stay
/// below [`NodeId::MAX_NODES`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u8);

impl NodeId {
    /// The maximum number of nodes representable in the 6-bit LI encoding.
    pub const MAX_NODES: usize = 8;

    /// Creates a node id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 8` (the LI encoding has 3 node-id bits).
    #[inline]
    pub fn new(id: u8) -> Self {
        assert!(
            (id as usize) < Self::MAX_NODES,
            "node id {id} exceeds the 3-bit LI encoding"
        );
        Self(id)
    }

    /// The raw index.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Index usable for array access.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over the first `n` node ids.
    pub fn first(n: usize) -> impl Iterator<Item = NodeId> {
        assert!(n <= Self::MAX_NODES);
        (0..n as u8).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// An address-space identifier; multiprogrammed (Server) workloads give each
/// node its own ASID so their physical footprints are disjoint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Asid(pub u16);

/// Deterministic, page-granular virtual→physical translation.
///
/// The reproduction does not model an OS page table; instead translation is
/// a fixed bijection per ASID: each address space's pages are relocated by a
/// per-ASID offset, **preserving virtual contiguity** (the transparent-
/// huge-page / contiguous-allocation behaviour real systems exhibit, and
/// what the paper's "malicious" power-of-two stride patterns rely on), while
/// distinct ASIDs land on disjoint physical ranges and never alias.
#[inline]
pub fn translate(asid: Asid, va: VAddr) -> PAddr {
    // Place each address space in its own 2^36-page physical window: spaces
    // are disjoint by construction and never alias (virtual footprints stay
    // far below 2^36 pages).
    let ppage = va.vpage() | ((asid.0 as u64) << 36);
    PAddr::new((ppage << PAGE_SHIFT) | (va.raw() & (PAGE_BYTES as u64 - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_region_roundtrip() {
        let pa = PAddr::new(0xdead_beef);
        let line = pa.line();
        assert_eq!(line.region(), pa.region());
        assert_eq!(line.region().line(line.region_offset()), line);
    }

    #[test]
    fn geometry_constants() {
        assert_eq!(LINE_BYTES, 64);
        assert_eq!(LINES_PER_REGION, 16);
        assert_eq!(REGION_BYTES, 1024);
        assert_eq!(1u64 << REGION_SHIFT, REGION_BYTES as u64);
    }

    #[test]
    fn region_lines_enumerates_16_consecutive() {
        let r = RegionAddr::new(7);
        let lines: Vec<_> = r.lines().collect();
        assert_eq!(lines.len(), 16);
        assert_eq!(lines[0].raw(), 7 * 16);
        assert_eq!(lines[15].raw(), 7 * 16 + 15);
        for l in &lines {
            assert_eq!(l.region(), r);
        }
    }

    #[test]
    fn vaddr_offset_matches_paddr_offset_under_translation() {
        // Translation is page-granular and pages are larger than regions, so
        // the line offset within a region must be preserved.
        let va = VAddr::new(0x1234_5678);
        let pa = translate(Asid(3), va);
        assert_eq!(va.region_offset().raw(), pa.line().region_offset().raw());
    }

    #[test]
    fn translation_is_deterministic_and_asid_disjoint() {
        let va = VAddr::new(0xabcd_ef00);
        assert_eq!(translate(Asid(1), va), translate(Asid(1), va));
        assert_ne!(translate(Asid(1), va), translate(Asid(2), va));
    }

    #[test]
    fn translation_preserves_page_offset() {
        let va = VAddr::new(0x7fff_1abc);
        let pa = translate(Asid(0), va);
        assert_eq!(va.raw() & 0xfff, pa.raw() & 0xfff);
    }

    #[test]
    #[should_panic(expected = "node id")]
    fn node_id_bounds() {
        let _ = NodeId::new(8);
    }

    #[test]
    fn line_offset_all() {
        assert_eq!(LineOffset::all().count(), 16);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert!(!format!("{:?}", PAddr::new(0)).is_empty());
        assert!(!format!("{:?}", NodeId::new(0)).is_empty());
        assert!(!format!("{:?}", LineOffset::new(0)).is_empty());
    }
}
