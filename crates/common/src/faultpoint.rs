//! Environment-driven fault injection for exercising fault-tolerance paths.
//!
//! Long-running sweeps survive worker panics, transient cell failures and
//! process kills (see `d2m_sim::sweep` / `d2m_sim::checkpoint`) — but those
//! recovery paths are only trustworthy if CI can *provoke* the faults they
//! recover from. This module provides named **fault points**: call sites in
//! production code invoke [`fire`], which does nothing unless a matching
//! fault rule is armed via the `D2M_FAULT` environment variable (or, in
//! tests, via [`arm`]).
//!
//! # Rule grammar
//!
//! `D2M_FAULT` holds a comma-separated list of rules:
//!
//! ```text
//! site[@scope]:key:action[:count]
//! ```
//!
//! * `site` — the fault-point name, e.g. `cell` (sweep cell execution),
//!   `checkpoint` (after a journal append), `build` (system construction).
//! * `scope` — optional filter on the call site's scope string (the sweep
//!   name for `cell`/`checkpoint`, the system name for `build`). Omitted =
//!   any scope. Scoping keeps concurrently running tests from tripping each
//!   other's faults.
//! * `key` — a `u64` (the cell index, checkpoint sequence number, …) or `*`
//!   for any.
//! * `action` — `panic`, `error` (the call site reports an injected
//!   *transient* failure, e.g. a retryable `RunError`), or `exit`
//!   (immediate `std::process::exit(`[`EXIT_CODE`]`)`, simulating a kill).
//! * `count` — fire at most this many times (default: unlimited). A finite
//!   count makes retry paths testable: `cell:3:error:2` fails the first two
//!   attempts of cell 3 and lets the third succeed.
//!
//! Examples:
//!
//! ```text
//! D2M_FAULT=cell:17:panic              # panic while running sweep cell 17
//! D2M_FAULT=checkpoint:3:exit          # die right after the 3rd journal append
//! D2M_FAULT=cell:2:panic,checkpoint:2:exit
//! D2M_FAULT=cell@smoke:*:error:1       # one transient failure, sweep "smoke" only
//! ```
//!
//! Panic messages are deterministic functions of `(site, key)`, so a sweep
//! that converts an injected panic into a `CellResult` error string stays
//! byte-identical across reruns and kill/resume cycles.
//!
//! An unparseable `D2M_FAULT` is reported once on stderr and ignored —
//! injection is a testing aid and must never take down a production run.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Exit code used by the `exit` action, distinct from panic aborts (101)
/// and conventional error exits, so tests can assert the death was the
/// injected one.
pub const EXIT_CODE: i32 = 43;

/// What an armed rule does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    /// Panic with a deterministic message.
    Panic,
    /// Report an injected transient failure ([`fire`] returns `true`).
    Error,
    /// `std::process::exit(EXIT_CODE)` — simulates a kill.
    Exit,
}

#[derive(Clone, Debug)]
struct Rule {
    site: String,
    /// `None` = any scope.
    scope: Option<String>,
    /// `None` = any key (`*`).
    key: Option<u64>,
    action: Action,
    /// Remaining firings; `None` = unlimited.
    remaining: Option<u32>,
}

/// Armed rules. `None` = not yet initialized from the environment.
static RULES: Mutex<Option<Vec<Rule>>> = Mutex::new(None);

/// Serializes tests that arm rules programmatically (see [`arm`]).
static ARM_LOCK: Mutex<()> = Mutex::new(());

fn unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn parse_rules(spec: &str) -> Result<Vec<Rule>, String> {
    let mut rules = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let fields: Vec<&str> = part.split(':').collect();
        if fields.len() < 3 || fields.len() > 4 {
            return Err(format!(
                "rule {part:?}: expected site[@scope]:key:action[:count]"
            ));
        }
        let (site, scope) = match fields[0].split_once('@') {
            Some((s, sc)) => (s, Some(sc.to_string())),
            None => (fields[0], None),
        };
        if site.is_empty() {
            return Err(format!("rule {part:?}: empty site"));
        }
        let key = match fields[1] {
            "*" => None,
            k => Some(
                k.parse::<u64>()
                    .map_err(|_| format!("rule {part:?}: key must be a u64 or '*'"))?,
            ),
        };
        let action = match fields[2] {
            "panic" => Action::Panic,
            "error" => Action::Error,
            "exit" => Action::Exit,
            other => return Err(format!("rule {part:?}: unknown action {other:?}")),
        };
        let remaining = match fields.get(3) {
            None => None,
            Some(c) => Some(
                c.parse::<u32>()
                    .map_err(|_| format!("rule {part:?}: count must be a u32"))?,
            ),
        };
        rules.push(Rule {
            site: site.to_string(),
            scope,
            key,
            action,
            remaining,
        });
    }
    Ok(rules)
}

fn rules_from_env() -> Vec<Rule> {
    match std::env::var("D2M_FAULT") {
        Ok(spec) => parse_rules(&spec).unwrap_or_else(|e| {
            eprintln!("warning: ignoring D2M_FAULT: {e}");
            Vec::new()
        }),
        Err(_) => Vec::new(),
    }
}

/// A fault point. Does nothing (and returns `false`) unless a matching rule
/// is armed; see the module docs for the rule grammar.
///
/// Returns `true` when an `error`-action rule fired: the caller should
/// report an injected *transient* failure through its normal error path
/// (e.g. a retryable `RunError`). `panic` rules panic here with a
/// deterministic message; `exit` rules terminate the process with
/// [`EXIT_CODE`].
///
/// # Panics
///
/// Deliberately, when a matching `panic` rule is armed.
pub fn fire(site: &str, scope: &str, key: u64) -> bool {
    let action = {
        let mut guard = unpoisoned(&RULES);
        let rules = guard.get_or_insert_with(rules_from_env);
        let hit = rules.iter_mut().find(|r| {
            r.site == site
                && r.scope.as_deref().is_none_or(|s| s == scope)
                && r.key.is_none_or(|k| k == key)
                && r.remaining != Some(0)
        });
        match hit {
            None => return false,
            Some(rule) => {
                if let Some(n) = rule.remaining.as_mut() {
                    *n -= 1;
                }
                rule.action
            }
        }
        // The mutex guard drops here, *before* any panic/exit below.
    };
    match action {
        Action::Error => true,
        Action::Panic => panic!("injected fault at {site}:{key} (D2M_FAULT)"),
        Action::Exit => {
            eprintln!("injected fault at {site}:{key}: exiting with code {EXIT_CODE} (D2M_FAULT)");
            std::process::exit(EXIT_CODE);
        }
    }
}

/// Disarms rules when dropped; holding it also serializes every other
/// [`arm`] caller in the process, so concurrent tests cannot interleave
/// conflicting rule sets.
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *unpoisoned(&RULES) = Some(Vec::new());
    }
}

/// Arms fault rules programmatically (tests; production uses `D2M_FAULT`).
/// Replaces any currently armed rules; the returned guard disarms everything
/// when dropped.
///
/// Scope your rules (`cell@my-sweep-name:…`) — other tests in the same
/// process may be running sweeps concurrently, and an unscoped rule would
/// fire on their fault points too.
///
/// # Errors
///
/// Returns a message describing the first malformed rule.
pub fn arm(spec: &str) -> Result<FaultGuard, String> {
    let rules = parse_rules(spec)?;
    let serial = ARM_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    *unpoisoned(&RULES) = Some(rules);
    Ok(FaultGuard { _serial: serial })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_fire_is_inert() {
        // Arm an empty set so the env (if any) cannot leak into this test.
        let _g = arm("").unwrap();
        assert!(!fire("cell", "any", 0));
        assert!(!fire("checkpoint", "any", 7));
    }

    #[test]
    fn parse_accepts_full_grammar() {
        let rules = parse_rules("cell:17:panic, checkpoint@smoke:3:exit ,build:*:error:2").unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].site, "cell");
        assert_eq!(rules[0].key, Some(17));
        assert_eq!(rules[0].action, Action::Panic);
        assert_eq!(rules[0].scope, None);
        assert_eq!(rules[0].remaining, None);
        assert_eq!(rules[1].scope.as_deref(), Some("smoke"));
        assert_eq!(rules[1].action, Action::Exit);
        assert_eq!(rules[2].key, None);
        assert_eq!(rules[2].remaining, Some(2));
    }

    #[test]
    fn parse_rejects_malformed_rules() {
        for bad in [
            "cell",
            "cell:1",
            "cell:x:panic",
            "cell:1:explode",
            "cell:1:panic:many",
            ":1:panic",
            "a:1:panic:2:3",
        ] {
            assert!(parse_rules(bad).is_err(), "{bad:?}");
        }
        // Empty segments and whitespace are tolerated (trailing commas).
        assert!(parse_rules("").unwrap().is_empty());
        assert!(parse_rules(" , ").unwrap().is_empty());
    }

    #[test]
    fn error_rules_match_scope_key_and_count() {
        let _g = arm("cell@mine:3:error:2").unwrap();
        assert!(!fire("cell", "mine", 2), "key mismatch");
        assert!(!fire("cell", "other", 3), "scope mismatch");
        assert!(!fire("checkpoint", "mine", 3), "site mismatch");
        assert!(fire("cell", "mine", 3), "first firing");
        assert!(fire("cell", "mine", 3), "second firing");
        assert!(!fire("cell", "mine", 3), "count exhausted");
    }

    #[test]
    fn wildcard_key_matches_everything_and_guard_disarms() {
        {
            let _g = arm("cell:*:error").unwrap();
            assert!(fire("cell", "any", 0));
            assert!(fire("cell", "other", u64::MAX));
        }
        let _g = arm("").unwrap();
        assert!(!fire("cell", "any", 0), "guard drop must disarm");
    }

    #[test]
    fn panic_action_panics_with_deterministic_message() {
        let _g = arm("cell:5:panic").unwrap();
        let p = std::panic::catch_unwind(|| fire("cell", "any", 5)).expect_err("must panic");
        let msg = p.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "injected fault at cell:5 (D2M_FAULT)");
        // A caught injected panic must not wedge the fault machinery.
        assert!(!fire("cell", "any", 6));
    }
}
