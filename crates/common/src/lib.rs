//! Shared foundations for the D2M split-cache-hierarchy reproduction.
//!
//! This crate hosts the vocabulary types used by every other crate in the
//! workspace:
//!
//! * [`addr`] — strongly-typed addresses and the line/region geometry of the
//!   paper (64 B cachelines, 16-line regions).
//! * [`config`] — the machine configuration (Table III analogue) shared by the
//!   baselines and all D2M variants.
//! * [`faultpoint`] — env-driven fault injection (`D2M_FAULT`) so tests and
//!   CI can provoke the panics, transient failures and kills that the sweep
//!   engine's fault-tolerance paths must survive.
//! * [`json`] — minimal deterministic JSON (the workspace builds without
//!   external crates; byte-stable output is what the sweep engine's
//!   determinism guarantee is stated in terms of).
//! * [`rng`] — deterministic, stream-splittable random number generation so
//!   that every simulation is exactly reproducible.
//! * [`stats`] — counter registries, histograms and running means used for
//!   metric extraction.
//!
//! # Example
//!
//! ```
//! use d2m_common::addr::{PAddr, LINE_BYTES, LINES_PER_REGION};
//! use d2m_common::config::MachineConfig;
//!
//! let cfg = MachineConfig::default();
//! assert_eq!(cfg.nodes, 8);
//! let a = PAddr::new(0x1234_5678);
//! assert_eq!(a.line().region(), a.region());
//! assert!(usize::from(a.line().region_offset()) < LINES_PER_REGION);
//! assert_eq!(LINE_BYTES, 64);
//! ```

pub mod addr;
pub mod config;
pub mod fasthash;
pub mod faultpoint;
pub mod json;
pub mod oracle;
pub mod outcome;
pub mod probe;
pub mod rng;
pub mod stats;

pub use addr::{LineAddr, NodeId, PAddr, RegionAddr, VAddr, VRegionAddr};
pub use config::MachineConfig;
pub use fasthash::{fnv1a_64, FastHasher, FastMap};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use oracle::VersionOracle;
pub use outcome::{AccessResult, ServicedBy};
pub use probe::{LookupLevel, NoopProbe, Probe, RecordingProbe, TxnEvent, TxnKind};
pub use rng::{derive_stream_seed, SimRng};
pub use stats::Counters;
