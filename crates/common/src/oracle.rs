//! Whole-hierarchy value-coherence oracle.
//!
//! The simulator does not carry real data bytes; instead every cacheline
//! copy carries a **version token**. Each store mints a fresh global version
//! for its line; a coherent hierarchy must then satisfy: *every load observes
//! the version of the most recent store to that line*. The oracle tracks the
//! globally-latest version per line and (separately) the version that main
//! memory holds, so writebacks and memory refills can be validated too.
//!
//! Both the baselines and D2M run against the same oracle, which turns every
//! simulated load into a coherence check — the strongest correctness signal
//! the test suite has.

use crate::addr::LineAddr;
use crate::fasthash::FastMap;

/// Tracks the latest store version per line and memory's current version.
///
/// Both maps are keyed by trusted line addresses and only ever read point-wise
/// (no iteration), so they use the deterministic [`FastMap`] — the oracle sits
/// on the hot path of every simulated access.
#[derive(Clone, Debug, Default)]
pub struct VersionOracle {
    latest: FastMap<LineAddr, u64>,
    memory: FastMap<LineAddr, u64>,
    next: u64,
}

impl VersionOracle {
    /// Creates an empty oracle; all lines start at version 0 everywhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints a fresh version for a store to `line` and records it as the
    /// globally latest. Returns the new version for the writer's copy.
    pub fn on_store(&mut self, line: LineAddr) -> u64 {
        self.next += 1;
        self.latest.insert(line, self.next);
        self.next
    }

    /// The version a fully coherent load of `line` must observe.
    pub fn latest(&self, line: LineAddr) -> u64 {
        self.latest.get(&line).copied().unwrap_or(0)
    }

    /// Records that `version` of `line` was written back to main memory.
    pub fn write_memory(&mut self, line: LineAddr, version: u64) {
        self.memory.insert(line, version);
    }

    /// The version main memory currently holds for `line`.
    pub fn memory(&self, line: LineAddr) -> u64 {
        self.memory.get(&line).copied().unwrap_or(0)
    }

    /// Checks a load observation; returns `Err` describing the violation if
    /// the observed version is stale.
    pub fn check_load(&self, line: LineAddr, observed: u64) -> Result<(), String> {
        let want = self.latest(line);
        if observed == want {
            Ok(())
        } else {
            Err(format!(
                "coherence violation on {line:?}: observed v{observed}, latest is v{want}"
            ))
        }
    }

    /// Number of lines ever written.
    pub fn written_lines(&self) -> usize {
        self.latest.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u64) -> LineAddr {
        LineAddr::new(x)
    }

    #[test]
    fn unwritten_lines_are_version_zero() {
        let o = VersionOracle::new();
        assert_eq!(o.latest(l(5)), 0);
        assert_eq!(o.memory(l(5)), 0);
        assert!(o.check_load(l(5), 0).is_ok());
    }

    #[test]
    fn stores_mint_monotonic_versions() {
        let mut o = VersionOracle::new();
        let v1 = o.on_store(l(1));
        let v2 = o.on_store(l(2));
        let v3 = o.on_store(l(1));
        assert!(v1 < v2 && v2 < v3);
        assert_eq!(o.latest(l(1)), v3);
        assert_eq!(o.latest(l(2)), v2);
    }

    #[test]
    fn stale_load_is_detected() {
        let mut o = VersionOracle::new();
        let v1 = o.on_store(l(9));
        let _v2 = o.on_store(l(9));
        assert!(o.check_load(l(9), v1).is_err());
        assert!(o.check_load(l(9), o.latest(l(9))).is_ok());
    }

    #[test]
    fn memory_version_is_independent_until_writeback() {
        let mut o = VersionOracle::new();
        let v = o.on_store(l(3));
        assert_eq!(o.memory(l(3)), 0, "store dirties a cache, not memory");
        o.write_memory(l(3), v);
        assert_eq!(o.memory(l(3)), v);
    }
}
