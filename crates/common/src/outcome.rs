//! Per-access outcome vocabulary shared by all simulated systems.
//!
//! Every system (Base-2L, Base-3L, the D2M variants) reports each memory
//! access through the same [`AccessResult`] so the runner can compute the
//! paper's metrics — L1 miss ratios and late hits (Table IV), near-side hit
//! ratios (Table IV right half), average L1 miss latency (§V-D) — without
//! knowing which hierarchy produced them.

/// Which level ultimately serviced an access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ServicedBy {
    /// L1 hit (I or D side implied by the access kind).
    L1,
    /// Private L2 hit (Base-3L only).
    L2,
    /// The node's own near-side LLC slice (D2M-NS/NS-R only).
    LocalNs,
    /// A remote node's NS slice (D2M-NS/NS-R only).
    RemoteNs,
    /// The far-side shared LLC.
    Llc,
    /// A master copy in a remote node's private hierarchy.
    RemoteNode,
    /// Main memory.
    Mem,
}

impl ServicedBy {
    /// All endpoints, in a stable report order.
    pub const ALL: [ServicedBy; 7] = [
        ServicedBy::L1,
        ServicedBy::L2,
        ServicedBy::LocalNs,
        ServicedBy::RemoteNs,
        ServicedBy::Llc,
        ServicedBy::RemoteNode,
        ServicedBy::Mem,
    ];

    /// Stable display name (used as a JSON key by the probe reports).
    pub fn name(self) -> &'static str {
        match self {
            ServicedBy::L1 => "l1",
            ServicedBy::L2 => "l2",
            ServicedBy::LocalNs => "ns_local",
            ServicedBy::RemoteNs => "ns_remote",
            ServicedBy::Llc => "llc",
            ServicedBy::RemoteNode => "remote_node",
            ServicedBy::Mem => "mem",
        }
    }

    /// Position in [`Self::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// True when the data came from some LLC slice (near or far) — the
    /// denominator of Table IV's near-side hit ratios.
    pub fn is_llc_level(self) -> bool {
        matches!(
            self,
            ServicedBy::LocalNs | ServicedBy::RemoteNs | ServicedBy::Llc
        )
    }
}

/// Outcome of one memory access.
#[derive(Clone, Copy, Debug)]
pub struct AccessResult {
    /// End-to-end latency in cycles (including the L1 access itself).
    pub latency: u64,
    /// True when the access hit in L1.
    pub l1_hit: bool,
    /// True when the access hit a line whose fill had not yet completed
    /// (Table IV "Late Hits"): it pays the remaining fill latency.
    pub late: bool,
    /// The level that ultimately provided the data.
    pub serviced_by: ServicedBy,
    /// For systems with region classification (D2M): on a private-cache
    /// miss, whether the missing region was classified private (Table V).
    /// `None` for L1 hits and for the baselines.
    pub private_miss: Option<bool>,
}

impl AccessResult {
    /// Convenience constructor for a plain L1 hit.
    pub fn l1_hit(latency: u64) -> Self {
        Self {
            latency,
            l1_hit: true,
            late: false,
            serviced_by: ServicedBy::L1,
            private_miss: None,
        }
    }
}
