//! Whole-system invariant checker.
//!
//! These are the properties the paper's design hinges on (§II-B), expressed
//! as machine-checkable predicates over the entire simulated state:
//!
//! 1. **Deterministic Location Information** — every active LI names a slot
//!    that holds exactly the expected line, with serveable (non-stale) data.
//! 2. **Metadata inclusion** — every node-resident line's region is in the
//!    node's MD2; every MD2 region is in MD3 (with the PB bit set); PB bits
//!    exactly mirror MD2 residency.
//! 3. **Single master** — at most one master copy of a line exists anywhere;
//!    lines with no cached master are mastered by memory.
//! 4. **Tracking-pointer coherence** — MD2 TPs and MD1 entries are in
//!    one-to-one correspondence.
//! 5. **Value coherence** — every serveable copy carries the globally latest
//!    version; when memory is the master it holds the latest version.
//!
//! The checker is exhaustive (it sweeps every structure) and intended for
//! tests; it is far too slow to run per access.

use std::collections::HashMap;

use d2m_common::addr::{LineAddr, RegionAddr, LINES_PER_REGION};

use crate::li::Li;
use crate::meta::Md1Side;
use crate::system::{ArrKind, D2mSystem, MdRef};

impl D2mSystem {
    /// Verifies every invariant; returns a description of the first
    /// violation found.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_pb_md2_mirror()?;
        self.check_tracking_pointers()?;
        self.check_active_li_determinism()?;
        self.check_md3_li_determinism()?;
        self.check_data_inclusion()?;
        self.check_single_master_and_versions()?;
        self.check_no_orphan_masters()?;
        Ok(())
    }

    /// Every LLC master slot must be reachable: by MD3's LI, by some node's
    /// active LI, or through some copy's RP chain. An orphaned master would
    /// eventually be re-fetched from memory, creating a second master.
    fn check_no_orphan_masters(&self) -> Result<(), String> {
        for slice in 0..self.llc.banks() {
            for (_, way_all, key, dl) in self.llc.iter_bank(slice) {
                if !dl.master {
                    continue;
                }
                let line = LineAddr::new(key);
                let region = line.region();
                let off = usize::from(line.region_offset());
                let me = {
                    // Reconstruct this slot's LI name.
                    let set_check = self.llc_set(line, slice);
                    let way = self.llc.way_of(slice, set_check, key).expect("present");
                    debug_assert_eq!(way, way_all);
                    self.li_of_llc(slice, way)
                };
                let mut referenced = false;
                if let Some(e3) = self
                    .md3
                    .peek(self.md3.set_index(region.raw()), region.raw())
                {
                    if e3.li.get(off, self.enc) == me {
                        referenced = true;
                    }
                }
                for n in 0..self.nodes_count() {
                    if referenced {
                        break;
                    }
                    if let Some(md) = self.find_active_md(n, region) {
                        if self.li_get(n, md, off) == me {
                            referenced = true;
                            break;
                        }
                    }
                    if let Some((kind, s, w)) = self.node_slot_of(n, line) {
                        if self.arr(kind).at(n, s, w).map(|(_, d)| d.rp) == Some(me) {
                            referenced = true;
                            break;
                        }
                    }
                    if self.feats.near_side {
                        let s = self.llc_set(line, n);
                        if let Some(w) = self.llc.way_of(n, s, key) {
                            if self.llc.at(n, s, w).map(|(_, d)| d.rp) == Some(me) {
                                referenced = true;
                                break;
                            }
                        }
                    }
                }
                if !referenced {
                    return Err(format!(
                        "orphan master for line {key:#x} at slice {slice} ({me:?})"
                    ));
                }
            }
        }
        Ok(())
    }

    fn nodes_count(&self) -> usize {
        self.cfg.nodes
    }

    fn check_pb_md2_mirror(&self) -> Result<(), String> {
        // PB bit set ⇔ node has an MD2 entry.
        for n in 0..self.nodes_count() {
            for (_, _, key, _) in self.md2.iter_bank(n) {
                let set3 = self.md3.set_index(key);
                let Some(e3) = self.md3.peek(set3, key) else {
                    return Err(format!("MD2 region {key:#x} at node {n} missing from MD3"));
                };
                if e3.pb & (1 << n) == 0 {
                    return Err(format!(
                        "node {n} tracks region {key:#x} but its PB bit is clear"
                    ));
                }
            }
        }
        for (_, _, key, e3) in self.md3.iter() {
            for n in 0..self.nodes_count() {
                if e3.pb & (1 << n) != 0 && self.md2.peek(n, self.md2.set_index(key), key).is_none()
                {
                    return Err(format!(
                        "PB bit set for node {n} on region {key:#x} without an MD2 entry"
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_tracking_pointers(&self) -> Result<(), String> {
        for n in 0..self.nodes_count() {
            for (_, _, key, e2) in self.md2.iter_bank(n) {
                if let Some(tp) = e2.tp {
                    let arr = match tp.side {
                        Md1Side::Instruction => &self.md1i,
                        Md1Side::Data => &self.md1d,
                    };
                    match arr.at(n, tp.set as usize, tp.way as usize) {
                        Some((_, e1)) if e1.region.raw() == key => {}
                        _ => {
                            return Err(format!(
                                "node {n} MD2 TP for region {key:#x} names a wrong MD1 slot"
                            ))
                        }
                    }
                }
            }
            for (side, arr) in [
                (Md1Side::Instruction, &self.md1i),
                (Md1Side::Data, &self.md1d),
            ] {
                for (set1, way1, _, e1) in arr.iter_bank(n) {
                    let key = e1.region.raw();
                    let Some(e2) = self.md2.peek(n, self.md2.set_index(key), key) else {
                        return Err(format!(
                            "node {n} MD1 entry for region {key:#x} has no MD2 backing"
                        ));
                    };
                    match e2.tp {
                        Some(tp)
                            if tp.side == side
                                && tp.set as usize == set1
                                && tp.way as usize == way1 => {}
                        other => {
                            return Err(format!(
                                "node {n} MD1 entry for {key:#x} not named by its TP ({other:?})"
                            ))
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Resolves the node's active LI array for a region, for checking.
    fn active_lis(&self, node: usize, region: RegionAddr) -> Option<[Li; LINES_PER_REGION]> {
        let md = self.find_active_md(node, region)?;
        let mut out = [Li::Invalid; LINES_PER_REGION];
        for (off, slot) in out.iter_mut().enumerate() {
            *slot = self.li_get(node, md, off);
        }
        let _ = matches!(md, MdRef::Md1 { .. });
        Some(out)
    }

    fn check_active_li_determinism(&self) -> Result<(), String> {
        for n in 0..self.nodes_count() {
            for (_, _, key, e2) in self.md2.iter_bank(n) {
                let region = RegionAddr::new(key);
                let lis = self.active_lis(n, region).expect("entry exists");
                let is_i = e2.is_icache;
                for (off, li) in lis.iter().enumerate() {
                    let line = region.line(crate::meta_line_offset(off));
                    match *li {
                        Li::L1 { way } => {
                            let kind = if is_i { ArrKind::L1I } else { ArrKind::L1D };
                            let set = self.l1_set(line);
                            match self.arr(kind).at(n, set, way as usize) {
                                Some((k, dl)) if k == line.raw() && dl.serveable() => {}
                                _ => {
                                    return Err(format!(
                                    "node {n} LI for {line:?} names L1 way {way} without the line"
                                ))
                                }
                            }
                        }
                        Li::L2 { way } => {
                            if !self.feats.private_l2 {
                                return Err(format!(
                                    "node {n} LI for {line:?} names an L2 in an L2-less system"
                                ));
                            }
                            let set = self.l2_set(line);
                            match self.arr(ArrKind::L2).at(n, set, way as usize) {
                                Some((k, dl)) if k == line.raw() && dl.serveable() => {}
                                _ => {
                                    return Err(format!(
                                    "node {n} LI for {line:?} names L2 way {way} without the line"
                                ))
                                }
                            }
                        }
                        Li::LlcFs { .. } | Li::LlcNs { .. } => {
                            let (slice, way) =
                                self.llc_slice_way(*li).map_err(|e| e.to_string())?;
                            let set = self.llc_set(line, slice);
                            match self.llc.at(slice, set, way) {
                                Some((k, dl)) if k == line.raw() && dl.serveable() => {}
                                _ => {
                                    return Err(format!(
                                        "node {n} LI for {line:?} names LLC slot {li:?} without serveable data"
                                    ))
                                }
                            }
                        }
                        Li::Node(m) => {
                            if m.index() == n {
                                return Err(format!("node {n} LI for {line:?} points at itself"));
                            }
                            match self.node_slot_of(m.index(), line) {
                                Some((kind, set, way)) => {
                                    let dl = self
                                        .arr(kind)
                                        .at(m.index(), set, way)
                                        .map(|(_, dl)| *dl)
                                        .expect("occupied");
                                    if !dl.master {
                                        return Err(format!(
                                            "node {n} LI for {line:?} names node {m} whose copy is not master"
                                        ));
                                    }
                                }
                                None => {
                                    return Err(format!(
                                    "node {n} LI for {line:?} names node {m} which lacks the line"
                                ))
                                }
                            }
                        }
                        Li::Mem => {}
                        Li::Invalid => {
                            return Err(format!("node {n} holds an Invalid LI for {line:?}"))
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn check_md3_li_determinism(&self) -> Result<(), String> {
        for (_, _, key, e3) in self.md3.iter() {
            let region = RegionAddr::new(key);
            let valid = e3.li.count_valid() as usize;
            if valid > 0 && valid < LINES_PER_REGION {
                return Err(format!("MD3 entry {key:#x} mixes valid and invalid LIs"));
            }
            if valid == 0 {
                // Private region: exactly one PB owner is expected.
                if e3.pb.count_ones() != 1 {
                    return Err(format!(
                        "MD3 entry {key:#x} has invalid LIs but {} PB bits",
                        e3.pb.count_ones()
                    ));
                }
                continue;
            }
            for (off, li) in e3.li.to_array(self.enc).iter().enumerate() {
                let line = region.line(crate::meta_line_offset(off));
                match *li {
                    Li::LlcFs { .. } | Li::LlcNs { .. } => {
                        let (slice, way) = self.llc_slice_way(*li).map_err(|e| e.to_string())?;
                        let set = self.llc_set(line, slice);
                        match self.llc.at(slice, set, way) {
                            Some((k, dl)) if k == line.raw() && dl.master => {}
                            _ => {
                                return Err(format!(
                                    "MD3 LI for {line:?} names {li:?} which is not the master"
                                ))
                            }
                        }
                    }
                    Li::Node(m) => match self.node_slot_of(m.index(), line) {
                        Some((kind, set, way)) => {
                            let dl = self
                                .arr(kind)
                                .at(m.index(), set, way)
                                .map(|(_, dl)| *dl)
                                .expect("occupied");
                            if !dl.master {
                                return Err(format!(
                                    "MD3 LI for {line:?} names node {m} whose copy is not master"
                                ));
                            }
                        }
                        None => {
                            return Err(format!(
                                "MD3 LI for {line:?} names node {m} which lacks the line"
                            ))
                        }
                    },
                    Li::Mem => {}
                    other => {
                        return Err(format!("MD3 LI for {line:?} is {other:?}"));
                    }
                }
            }
        }
        Ok(())
    }

    fn check_data_inclusion(&self) -> Result<(), String> {
        for n in 0..self.nodes_count() {
            let kinds: &[ArrKind] = if self.feats.private_l2 {
                &[ArrKind::L1I, ArrKind::L1D, ArrKind::L2]
            } else {
                &[ArrKind::L1I, ArrKind::L1D]
            };
            for kind in kinds.iter().copied() {
                for (_, _, key, _) in self.arr(kind).iter_bank(n) {
                    let region = LineAddr::new(key).region();
                    if self
                        .md2
                        .peek(n, self.md2.set_index(region.raw()), region.raw())
                        .is_none()
                    {
                        return Err(format!(
                            "node {n} caches line {key:#x} whose region is untracked (inclusion)"
                        ));
                    }
                }
            }
            // NS replicas in the node's slice must be MD2-tracked too.
            if self.feats.near_side {
                for (_, _, key, dl) in self.llc.iter_bank(n) {
                    if !dl.master && !dl.stale {
                        let region = LineAddr::new(key).region();
                        if self
                            .md2
                            .peek(n, self.md2.set_index(region.raw()), region.raw())
                            .is_none()
                        {
                            return Err(format!(
                                "node {n} slice replica {key:#x} untracked by MD2 (inclusion)"
                            ));
                        }
                    }
                }
            }
        }
        // Every LLC-resident line's region must be in MD3.
        for slice in 0..self.llc.banks() {
            for (_, _, key, _) in self.llc.iter_bank(slice) {
                let region = LineAddr::new(key).region();
                if self
                    .md3
                    .peek(self.md3.set_index(region.raw()), region.raw())
                    .is_none()
                {
                    return Err(format!(
                        "LLC slice {slice} holds line {key:#x} whose region left MD3 (inclusion)"
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_single_master_and_versions(&self) -> Result<(), String> {
        let mut masters: HashMap<u64, Vec<String>> = HashMap::new();
        let mut record = |key: u64, is_master: bool, whence: String| {
            if is_master {
                masters.entry(key).or_default().push(whence);
            }
        };
        for n in 0..self.nodes_count() {
            let kinds: &[ArrKind] = if self.feats.private_l2 {
                &[ArrKind::L1I, ArrKind::L1D, ArrKind::L2]
            } else {
                &[ArrKind::L1I, ArrKind::L1D]
            };
            for kind in kinds.iter().copied() {
                for (_, _, key, dl) in self.arr(kind).iter_bank(n) {
                    record(key, dl.master, format!("node {n} {kind:?}"));
                    if dl.serveable() {
                        let want = self.oracle.latest(LineAddr::new(key));
                        if dl.version != want {
                            return Err(format!(
                                "node {n} serveable copy of {key:#x} has v{} ≠ latest v{want}",
                                dl.version
                            ));
                        }
                    }
                }
            }
        }
        for slice in 0..self.llc.banks() {
            for (set, way, key, dl) in self.llc.iter_bank(slice) {
                record(
                    key,
                    dl.master,
                    format!(
                        "llc slice {slice} set {set} way {way} (dirty={} stale={})",
                        dl.dirty, dl.stale
                    ),
                );
                if dl.serveable() {
                    let want = self.oracle.latest(LineAddr::new(key));
                    if dl.version != want {
                        return Err(format!(
                            "LLC slice {slice} serveable copy of {key:#x} has v{} ≠ latest v{want}",
                            dl.version
                        ));
                    }
                }
            }
        }
        for (key, locs) in &masters {
            if locs.len() > 1 {
                return Err(format!(
                    "line {key:#x} has {} masters: {locs:?}",
                    locs.len()
                ));
            }
        }
        // Lines with no cached master: memory must hold the latest version.
        // (Only lines ever written matter; others are trivially version 0.)
        for n in 0..self.nodes_count() {
            let kinds: &[ArrKind] = if self.feats.private_l2 {
                &[ArrKind::L1I, ArrKind::L1D, ArrKind::L2]
            } else {
                &[ArrKind::L1I, ArrKind::L1D]
            };
            for kind in kinds.iter().copied() {
                for (_, _, key, _) in self.arr(kind).iter_bank(n) {
                    if masters.get(&key).map_or(0, |v| v.len()) == 0 {
                        let line = LineAddr::new(key);
                        if self.oracle.memory(line) != self.oracle.latest(line) {
                            return Err(format!(
                                "line {key:#x} mastered by memory, but memory is stale"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl D2mSystem {
    /// Debug aid: every node-held master's RP must name a live victim slot
    /// (or memory). Used by ad-hoc reproduction drivers; O(all lines).
    pub fn debug_validate_rps(&self) -> Result<(), String> {
        for n in 0..self.cfg.nodes {
            let kinds: &[ArrKind] = if self.feats.private_l2 {
                &[ArrKind::L1I, ArrKind::L1D, ArrKind::L2]
            } else {
                &[ArrKind::L1I, ArrKind::L1D]
            };
            for kind in kinds.iter().copied() {
                for (_, _, key, dl) in self.arr(kind).iter_bank(n) {
                    if !dl.master {
                        continue;
                    }
                    let line = LineAddr::new(key);
                    match dl.rp {
                        Li::LlcFs { .. } | Li::LlcNs { .. } => {
                            let (slice, way) =
                                self.llc_slice_way(dl.rp).map_err(|e| e.to_string())?;
                            let set = self.llc_set(line, slice);
                            match self.llc.at(slice, set, way) {
                                Some((k, _)) if k == key => {}
                                other => {
                                    return Err(format!(
                                        "node {n} {kind:?} master {key:#x} rp {:?} names {:?}",
                                        dl.rp,
                                        other.map(|(k, d)| (k, d.master, d.stale))
                                    ))
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        Ok(())
    }
}
