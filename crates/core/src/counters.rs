//! Event counters for D2M: cache events, metadata-structure pressure, and
//! the appendix's protocol-case (PKMO) statistics.

use d2m_common::stats::Counters;

/// Protocol-case counters matching the appendix's coherence examples.
///
/// The appendix reports each case in events **per kilo memory operation**
/// (PKMO): A 12.5 (LLC 8.9 / MEM 2.7 / remote 0.8), B 1.7, C 0.72,
/// D 0.82 (D1 0.32, D2 0.02, D3 0.14, D4 0.34). Cases A and B need no MD3
/// involvement — the paper's "~90% of misses are directory-free" claim.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProtocolEvents {
    /// Case A: read miss with MD1/MD2 hit (total).
    pub a_read_md_hit: u64,
    /// Case A sub-case: master in the LLC.
    pub a_master_llc: u64,
    /// Case A sub-case: master in memory.
    pub a_master_mem: u64,
    /// Case A sub-case: master in a remote node (one indirection through
    /// that node's MD).
    pub a_master_remote: u64,
    /// Case B: write miss, private region, MD1/MD2 hit.
    pub b_write_private: u64,
    /// Case C: write miss/upgrade, shared region (blocking MD3 round).
    pub c_write_shared: u64,
    /// Case D: MD2 miss (total ReadMM transactions).
    pub d_md_miss: u64,
    /// D1: untracked → private.
    pub d1_untracked_to_private: u64,
    /// D2: private → shared (GetMD to the previous owner).
    pub d2_private_to_shared: u64,
    /// D3: shared → shared.
    pub d3_shared_to_shared: u64,
    /// D4: uncached → private (new MD3 entry).
    pub d4_uncached_to_private: u64,
    /// Case E: eviction of a dirty master, private region (local only).
    pub e_evict_private: u64,
    /// Case F: eviction of a master, shared region (NewMaster round).
    pub f_evict_shared: u64,
    /// Silent write upgrades on an L1 replica hit in a private region.
    pub silent_upgrades: u64,
}

impl ProtocolEvents {
    /// Fraction of misses handled without any MD3/directory involvement
    /// (cases A + B over A + B + C + D).
    pub fn directory_free_fraction(&self) -> f64 {
        let free = self.a_read_md_hit + self.b_write_private;
        let total = free + self.c_write_shared + self.d_md_miss;
        if total == 0 {
            0.0
        } else {
            free as f64 / total as f64
        }
    }

    /// Named snapshot.
    pub fn to_counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set("case.a", self.a_read_md_hit)
            .set("case.a_llc", self.a_master_llc)
            .set("case.a_mem", self.a_master_mem)
            .set("case.a_remote", self.a_master_remote)
            .set("case.b", self.b_write_private)
            .set("case.c", self.c_write_shared)
            .set("case.d", self.d_md_miss)
            .set("case.d1", self.d1_untracked_to_private)
            .set("case.d2", self.d2_private_to_shared)
            .set("case.d3", self.d3_shared_to_shared)
            .set("case.d4", self.d4_uncached_to_private)
            .set("case.e", self.e_evict_private)
            .set("case.f", self.f_evict_shared)
            .set("case.silent_upgrade", self.silent_upgrades);
        c
    }
}

/// Cache/metadata event counters for one D2M run.
#[derive(Clone, Copy, Debug, Default)]
pub struct D2mCounters {
    /// Total accesses.
    pub accesses: u64,
    /// Instruction fetches.
    pub ifetches: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// L1-I hits.
    pub l1i_hits: u64,
    /// L1-I misses.
    pub l1i_misses: u64,
    /// L1-D hits.
    pub l1d_hits: u64,
    /// L1-D misses.
    pub l1d_misses: u64,
    /// Late hits, instruction side.
    pub late_hits_i: u64,
    /// Late hits, data side.
    pub late_hits_d: u64,
    /// MD1 lookups.
    pub md1_accesses: u64,
    /// MD1 hits.
    pub md1_hits: u64,
    /// MD2 lookups.
    pub md2_accesses: u64,
    /// MD2 hits.
    pub md2_hits: u64,
    /// MD3 transactions.
    pub md3_accesses: u64,
    /// Reads serviced by the local NS slice — instruction side.
    pub ns_local_i: u64,
    /// Reads serviced by a remote NS slice — instruction side.
    pub ns_remote_i: u64,
    /// Reads serviced by the local NS slice — data side.
    pub ns_local_d: u64,
    /// Reads serviced by a remote NS slice — data side.
    pub ns_remote_d: u64,
    /// Reads serviced by the far-side LLC.
    pub llc_fs_hits: u64,
    /// Accesses serviced by main memory.
    pub mem_fills: u64,
    /// Reads serviced by a remote node's private hierarchy.
    pub remote_node_reads: u64,
    /// Invalidation messages received by nodes (incl. false invalidations
    /// from region-grain PB multicast) — Table V.
    pub invalidations_received: u64,
    /// Invalidations received for lines the node did not actually hold.
    pub false_invalidations: u64,
    /// L1 misses to regions classified private (Table V right column).
    pub private_region_misses: u64,
    /// L1 misses total (denominator for the private fraction).
    pub classified_misses: u64,
    /// Lines replicated into a local NS slice (§IV-C heuristic).
    pub replications: u64,
    /// Memory fills that bypassed LLC allocation (bypass feature).
    pub bypassed_fills: u64,
    /// NS allocations placed in the local slice.
    pub ns_alloc_local: u64,
    /// NS allocations placed in a remote slice.
    pub ns_alloc_remote: u64,
    /// MD2 entries dropped by the pruning heuristic.
    pub md2_prunes: u64,
    /// MD2 region evictions (spills).
    pub md2_evictions: u64,
    /// MD3 region evictions (global purges).
    pub md3_evictions: u64,
    /// Sum of L1-miss latencies.
    pub miss_latency_sum: u64,
    /// Number of L1 misses.
    pub miss_count: u64,
    /// Value-coherence violations (must stay zero).
    pub coherence_errors: u64,
    /// Deterministic-LI violations (an LI pointed at a wrong/stale slot;
    /// must stay zero).
    pub determinism_errors: u64,
}

impl D2mCounters {
    /// Average L1 miss latency in cycles.
    pub fn avg_miss_latency(&self) -> f64 {
        if self.miss_count == 0 {
            0.0
        } else {
            self.miss_latency_sum as f64 / self.miss_count as f64
        }
    }

    /// Fraction of classified misses that hit private regions (Table V).
    pub fn private_miss_fraction(&self) -> f64 {
        if self.classified_misses == 0 {
            0.0
        } else {
            self.private_region_misses as f64 / self.classified_misses as f64
        }
    }

    /// Named snapshot.
    pub fn to_counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set("accesses", self.accesses)
            .set("ifetches", self.ifetches)
            .set("loads", self.loads)
            .set("stores", self.stores)
            .set("l1i.hits", self.l1i_hits)
            .set("l1i.misses", self.l1i_misses)
            .set("l1d.hits", self.l1d_hits)
            .set("l1d.misses", self.l1d_misses)
            .set("late_hits.i", self.late_hits_i)
            .set("late_hits.d", self.late_hits_d)
            .set("md1.accesses", self.md1_accesses)
            .set("md1.hits", self.md1_hits)
            .set("md2.accesses", self.md2_accesses)
            .set("md2.hits", self.md2_hits)
            .set("md3.accesses", self.md3_accesses)
            .set("ns.local_i", self.ns_local_i)
            .set("ns.remote_i", self.ns_remote_i)
            .set("ns.local_d", self.ns_local_d)
            .set("ns.remote_d", self.ns_remote_d)
            .set("llc_fs.hits", self.llc_fs_hits)
            .set("mem.fills", self.mem_fills)
            .set("remote_node.reads", self.remote_node_reads)
            .set("inv.received", self.invalidations_received)
            .set("inv.false", self.false_invalidations)
            .set("private.misses", self.private_region_misses)
            .set("private.classified", self.classified_misses)
            .set("replications", self.replications)
            .set("bypassed_fills", self.bypassed_fills)
            .set("ns_alloc.local", self.ns_alloc_local)
            .set("ns_alloc.remote", self.ns_alloc_remote)
            .set("md2.prunes", self.md2_prunes)
            .set("md2.evictions", self.md2_evictions)
            .set("md3.evictions", self.md3_evictions)
            .set("miss_latency_sum", self.miss_latency_sum)
            .set("miss_count", self.miss_count)
            .set("coherence_errors", self.coherence_errors)
            .set("determinism_errors", self.determinism_errors);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_free_fraction() {
        let ev = ProtocolEvents {
            a_read_md_hit: 125,
            b_write_private: 17,
            c_write_shared: 7,
            d_md_miss: 8,
            ..Default::default()
        };
        let f = ev.directory_free_fraction();
        // Paper: cases A+B ≈ 90% of all misses.
        assert!((f - 142.0 / 157.0).abs() < 1e-9);
    }

    #[test]
    fn snapshots_include_cases() {
        let ev = ProtocolEvents {
            a_read_md_hit: 1,
            ..Default::default()
        };
        assert_eq!(ev.to_counters().get("case.a"), 1);
        let c = D2mCounters {
            md2_prunes: 3,
            ..Default::default()
        };
        assert_eq!(c.to_counters().get("md2.prunes"), 3);
    }

    #[test]
    fn ratios_handle_zero() {
        let c = D2mCounters::default();
        assert_eq!(c.avg_miss_latency(), 0.0);
        assert_eq!(c.private_miss_fraction(), 0.0);
        assert_eq!(ProtocolEvents::default().directory_free_fraction(), 0.0);
    }
}
