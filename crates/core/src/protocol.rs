//! The unified data + metadata coherence protocol (paper §III-C, appendix).
//!
//! Every memory access executes one atomic transaction (MD3 blocking is
//! implicit — see `DESIGN.md` §2). The appendix's cases map to:
//!
//! * **A** (read miss, MD hit) — `D2mSystem::read_miss` with direct access
//!   to the master (LLC slot, memory, or a remote node's MD).
//! * **B** (write miss, private) — `D2mSystem::write_miss`: direct read of
//!   the master, silent promotion to a new master.
//! * **C** (write, shared) — `D2mSystem::case_c_invalidate`: blocking MD3
//!   round, invalidations multicast to PB nodes, LIs repointed to the writer.
//! * **D1–D4** (MD2 miss) — `D2mSystem::md3_transaction`.
//! * **E/F** (master evictions) — `D2mSystem::evict_data_line`: copy to
//!   the victim location named by the RP, flip the active LI; shared regions
//!   add the EvictReq/NewMaster round.
//!
//! Key invariants maintained throughout (checked by [`crate::invariants`]):
//! deterministic LIs, a single master per line, metadata inclusion, and
//! PB ⇔ MD2-residency.

use d2m_common::addr::{LineAddr, NodeId, RegionAddr, LINES_PER_REGION};
use d2m_common::outcome::{AccessResult, ServicedBy};
use d2m_common::probe::{LookupLevel, Probe, TxnEvent, TxnKind};
use d2m_energy::EnergyEvent;
use d2m_noc::{Endpoint, MsgClass};
use d2m_workloads::{Access, AccessKind};

use crate::data::DataLine;
use crate::error::ProtocolError;
use crate::li::Li;
use crate::meta::{Md1Entry, Md1Side, Md2Entry, Md3Entry, RegionClass, TrackingPtr};
use crate::packed::PackedLiArray;
use crate::system::{ArrKind, D2mSystem, MdRef};

impl D2mSystem {
    /// Simulates one access issued at node-local cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] when corrupted metadata (an LI naming a
    /// location that cannot exist) makes the transaction unactionable. The
    /// system's state is no longer trustworthy after an error; callers
    /// should fail the run, not retry.
    pub fn access(&mut self, a: &Access, now: u64) -> Result<AccessResult, ProtocolError> {
        self.access_probed(a, now, None)
    }

    /// [`Self::access`] with an optional observability probe.
    ///
    /// With `probe = None` this is exactly the unprobed path (one branch);
    /// with a probe, each completed transaction is reported as a
    /// [`TxnEvent`] carrying the deepest metadata level the lookup reached
    /// (derived from the MD2/MD3 access counters), the servicing endpoint,
    /// and the number of on-chip messages the transaction generated.
    ///
    /// # Errors
    ///
    /// Same as [`Self::access`]; no event is reported for a failed
    /// transaction.
    pub fn access_probed(
        &mut self,
        a: &Access,
        now: u64,
        probe: Option<&mut dyn Probe>,
    ) -> Result<AccessResult, ProtocolError> {
        let Some(p) = probe else {
            return self.access_inner(a, now);
        };
        let msgs0 = self.noc.messages();
        let md2_0 = self.ctr.md2_accesses;
        let md3_0 = self.ctr.md3_accesses;
        let r = self.access_inner(a, now)?;
        let level = if self.ctr.md3_accesses > md3_0 {
            LookupLevel::L3
        } else if self.ctr.md2_accesses > md2_0 {
            LookupLevel::L2
        } else {
            LookupLevel::L1
        };
        p.txn(&TxnEvent {
            node: a.node.index() as u8,
            kind: match a.kind {
                AccessKind::IFetch => TxnKind::IFetch,
                AccessKind::Load => TxnKind::Load,
                AccessKind::Store => TxnKind::Store,
            },
            level,
            l1_hit: r.l1_hit,
            late: r.late,
            private_miss: r.private_miss,
            serviced: r.serviced_by,
            hops: self.noc.messages() - msgs0,
            latency: r.latency,
        });
        Ok(r)
    }

    fn access_inner(&mut self, a: &Access, now: u64) -> Result<AccessResult, ProtocolError> {
        self.ctr.accesses += 1;
        match a.kind {
            AccessKind::IFetch => self.ctr.ifetches += 1,
            AccessKind::Load => self.ctr.loads += 1,
            AccessKind::Store => self.ctr.stores += 1,
        }
        self.tick_pressure_window();
        let node = a.node.index();
        let is_i = a.kind.is_ifetch();
        let is_store = a.kind.is_store();
        let off = usize::from(a.vaddr.region_offset());

        let (md, region, md_hit, mut latency) = self.resolve_metadata(node, is_i, a)?;
        let private = self.md_private(node, md);
        let line = region.line(crate::meta_line_offset(off));
        latency += self.cfg.lat.l1;

        if let Li::L1 { way } = self.li_get(node, md, off) {
            // ---- L1 hit (the MD1 lookup doubles as the "tag" check) ----
            let kind = if is_i { ArrKind::L1I } else { ArrKind::L1D };
            let set = self.l1_set(line);
            self.energy.record(EnergyEvent::L1Array, 1);
            let slot = match self.arr(kind).at(node, set, way as usize) {
                Some((k, dl)) if k == line.raw() => *dl,
                _ => {
                    // A deterministic-LI violation: fall back to memory.
                    self.ctr.determinism_errors += 1;
                    debug_assert!(false, "LI pointed at a wrong L1 slot");
                    return self.miss_path(
                        node, is_i, is_store, line, off, md, private, md_hit, latency, now,
                    );
                }
            };
            let mut late = false;
            if now < slot.ready_at {
                late = true;
                latency += slot.ready_at - now;
                if is_i {
                    self.ctr.late_hits_i += 1;
                } else {
                    self.ctr.late_hits_d += 1;
                }
            }
            if is_i {
                self.ctr.l1i_hits += 1;
            } else {
                self.ctr.l1d_hits += 1;
            }
            if is_store {
                latency += self.write_hit(node, line, off, md, private, set, way as usize)?;
            } else if self.cfg.check_coherence {
                if let Err(e) = self.oracle.check_load(line, slot.version) {
                    self.ctr.coherence_errors += 1;
                    debug_assert!(false, "{e}");
                }
            }
            self.arr_mut(kind).touch(node, set, way as usize);
            return Ok(AccessResult {
                latency,
                l1_hit: true,
                late,
                serviced_by: ServicedBy::L1,
                private_miss: None,
            });
        }

        self.miss_path(
            node, is_i, is_store, line, off, md, private, md_hit, latency, now,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn miss_path(
        &mut self,
        node: usize,
        is_i: bool,
        is_store: bool,
        line: LineAddr,
        off: usize,
        md: MdRef,
        private: bool,
        md_hit: bool,
        mut latency: u64,
        now: u64,
    ) -> Result<AccessResult, ProtocolError> {
        if is_i {
            self.ctr.l1i_misses += 1;
        } else {
            self.ctr.l1d_misses += 1;
        }
        // Table V classifies *data* misses (the paper reports "percent of
        // data misses to private regions").
        if !is_i {
            self.ctr.classified_misses += 1;
            if private {
                self.ctr.private_region_misses += 1;
            }
        }

        let li = self.li_get(node, md, off);
        let (lat, serviced, dl) = if is_store {
            let r = self.write_miss(node, line, off, md, private, li)?;
            if md_hit {
                if private {
                    self.ev.b_write_private += 1;
                } else {
                    self.ev.c_write_shared += 1;
                }
            }
            r
        } else {
            let r = self.read_miss(node, is_i, line, off, li)?;
            if md_hit {
                self.ev.a_read_md_hit += 1;
                match r.1 {
                    ServicedBy::Llc | ServicedBy::LocalNs | ServicedBy::RemoteNs => {
                        self.ev.a_master_llc += 1
                    }
                    ServicedBy::Mem => self.ev.a_master_mem += 1,
                    ServicedBy::RemoteNode => self.ev.a_master_remote += 1,
                    _ => {}
                }
            }
            r
        };
        latency += lat;

        if !is_store && self.cfg.check_coherence {
            if let Err(e) = self.oracle.check_load(line, dl.version) {
                self.ctr.coherence_errors += 1;
                debug_assert!(false, "{e}");
            }
        }

        let mut dl = dl;
        dl.ready_at = now + latency;
        let way = self.install_l1(node, is_i, line, dl)?;
        self.li_set(node, md, off, Li::L1 { way: way as u8 });

        self.ctr.miss_latency_sum += latency;
        self.ctr.miss_count += 1;
        Ok(AccessResult {
            latency,
            l1_hit: false,
            late: false,
            serviced_by: serviced,
            private_miss: Some(private),
        })
    }

    // ================= metadata resolution =================

    /// MD1 → MD2 → (case D) resolution. Returns the active metadata
    /// reference, the physical region, whether the metadata was already
    /// resident (MD1 or MD2 hit), and the added latency.
    fn resolve_metadata(
        &mut self,
        node: usize,
        is_i: bool,
        a: &Access,
    ) -> Result<(MdRef, RegionAddr, bool, u64), ProtocolError> {
        if self.feats.traditional_l1 {
            return self.resolve_metadata_traditional(node, is_i, a);
        }
        let key1 = Self::md1_key(a.vaddr.vregion().raw(), a.asid.0);
        self.ctr.md1_accesses += 1;
        self.energy.record(EnergyEvent::Md1, 1);
        let md1 = if is_i { &mut self.md1i } else { &mut self.md1d };
        let set1 = md1.set_index(key1);
        if let Some(way1) = md1.way_of(node, set1, key1) {
            self.ctr.md1_hits += 1;
            md1.touch(node, set1, way1);
            let region = md1
                .at(node, set1, way1)
                .map(|(_, e)| e.region)
                .expect("occupied");
            return Ok((
                MdRef::Md1 {
                    is_i,
                    set: set1,
                    way: way1,
                },
                region,
                true,
                0,
            ));
        }

        // MD1 miss: TLB2 translation + MD2 lookup.
        let mut lat = self.cfg.lat.tlb2 + self.cfg.lat.md2;
        self.energy.record(EnergyEvent::Tlb, 1);
        let (paddr, tlb_hit) = self.tlb2[node].access(a.asid, a.vaddr);
        if !tlb_hit {
            lat += self.cfg.lat.tlb_walk;
        }
        let region = paddr.region();
        self.ctr.md2_accesses += 1;
        self.energy.record(EnergyEvent::Md2, 1);
        let md2 = &mut self.md2;
        let set2 = md2.set_index(region.raw());
        let (md_hit, set2, way2) = if let Some(way2) = md2.way_of(node, set2, region.raw()) {
            self.ctr.md2_hits += 1;
            md2.touch(node, set2, way2);
            (true, set2, way2)
        } else {
            // Case D: fetch region metadata from MD3.
            let (private, li, dlat) = self.md3_transaction(node, region)?;
            lat += dlat;
            let (s, w) = self.install_md2(node, region, private, li, is_i)?;
            (false, s, w)
        };
        let mdref = self.activate_md1(node, is_i, key1, region, set2, way2)?;
        Ok((mdref, region, md_hit, lat))
    }

    /// §III-A traditional front end: every access pays TLB1 + one L1 tag
    /// comparison (way prediction) instead of the MD1 lookup, and metadata
    /// resolution goes straight to the physically-tagged MD2.
    fn resolve_metadata_traditional(
        &mut self,
        node: usize,
        is_i: bool,
        a: &Access,
    ) -> Result<(MdRef, RegionAddr, bool, u64), ProtocolError> {
        self.energy.record(EnergyEvent::Tlb, 1);
        self.energy.record(EnergyEvent::L1TagWay, 1);
        let (paddr, tlb_hit) = self.tlb2[node].access(a.asid, a.vaddr);
        let mut lat = 0;
        if !tlb_hit {
            lat += self.cfg.lat.tlb_walk;
        }
        let region = paddr.region();
        self.ctr.md2_accesses += 1;
        self.energy.record(EnergyEvent::Md2, 1);
        let md2 = &mut self.md2;
        let set2 = md2.set_index(region.raw());
        let (md_hit, set2, way2) = if let Some(way2) = md2.way_of(node, set2, region.raw()) {
            self.ctr.md2_hits += 1;
            md2.touch(node, set2, way2);
            (true, set2, way2)
        } else {
            let (private, li, dlat) = self.md3_transaction(node, region)?;
            lat += dlat + self.cfg.lat.md2;
            let (s, w) = self.install_md2(node, region, private, li, is_i)?;
            (false, s, w)
        };
        // MD1 is never used in this mode, so the MD2 entry is always
        // authoritative.
        let e2 = self
            .md2
            .at(node, set2, way2)
            .map(|(_, e)| *e)
            .expect("occupied");
        debug_assert!(e2.tp.is_none(), "traditional mode never activates MD1");
        // Side switch: force the region's L1 lines out of the other array
        // (same rule as activate_md1).
        if e2.is_icache != is_i {
            let old_kind = if e2.is_icache {
                ArrKind::L1I
            } else {
                ArrKind::L1D
            };
            for off in 0..LINES_PER_REGION {
                let li = self
                    .md2
                    .at(node, set2, way2)
                    .map(|(_, e)| e.li.get(off, self.enc))
                    .expect("occupied");
                if let Li::L1 { way: lway } = li {
                    let line = region.line(crate::meta_line_offset(off));
                    let lset = self.l1_set(line);
                    self.evict_data_line(node, old_kind, lset, lway as usize, false)?;
                }
            }
        }
        let (_, e2m) = self.md2.at_mut(node, set2, way2).expect("occupied");
        e2m.is_icache = is_i;
        Ok((
            MdRef::Md2 {
                set: set2,
                way: way2,
            },
            region,
            md_hit,
            lat,
        ))
    }

    /// Moves a region's active LI array into the MD1 (D2D activation),
    /// deactivating the MD1 victim back into its MD2 entry.
    fn activate_md1(
        &mut self,
        node: usize,
        is_i: bool,
        key1: u64,
        region: RegionAddr,
        md2_set: usize,
        md2_way: usize,
    ) -> Result<MdRef, ProtocolError> {
        let e2 = *self
            .md2
            .at(node, md2_set, md2_way)
            .map(|(_, e)| e)
            .expect("occupied");
        // Fold the active MD1 entry (possibly on the other side) back into
        // MD2 so the MD2 entry is authoritative while we shuffle.
        if let Some(tp) = e2.tp {
            let arr = match tp.side {
                Md1Side::Instruction => &mut self.md1i,
                Md1Side::Data => &mut self.md1d,
            };
            let (_, e1) = arr
                .remove(node, tp.set as usize, tp.way as usize)
                .expect("TP names a live MD1 entry");
            let (_, e2m) = self.md2.at_mut(node, md2_set, md2_way).expect("occupied");
            e2m.li = e1.li;
            e2m.private = e1.private;
            e2m.tp = None;
        }
        // Side switch (code region accessed as data or vice versa): the
        // region's L1-resident lines live in the other L1 array, where the
        // new side could never find them — force them out first.
        if e2.is_icache != is_i {
            let old_kind = if e2.is_icache {
                ArrKind::L1I
            } else {
                ArrKind::L1D
            };
            for off in 0..LINES_PER_REGION {
                let li = self
                    .md2
                    .at(node, md2_set, md2_way)
                    .map(|(_, e)| e.li.get(off, self.enc))
                    .expect("occupied");
                if let Li::L1 { way: lway } = li {
                    let line = region.line(crate::meta_line_offset(off));
                    let lset = self.l1_set(line);
                    self.evict_data_line(node, old_kind, lset, lway as usize, false)?;
                }
            }
        }
        let (li, private) = self
            .md2
            .at(node, md2_set, md2_way)
            .map(|(_, e)| (e.li, e.private))
            .expect("occupied");

        let md1 = if is_i { &mut self.md1i } else { &mut self.md1d };
        let set1 = md1.set_index(key1);
        let way1 = md1.victim_way(node, set1);
        if let Some((_, victim)) = md1.remove(node, set1, way1) {
            // Deactivate the victim: its LIs flow back to its MD2 entry.
            let vkey = victim.region.raw();
            let md2 = &mut self.md2;
            let vset = md2.set_index(vkey);
            let vway = md2.way_of(node, vset, vkey).expect("metadata inclusion");
            let (_, ve) = md2.at_mut(node, vset, vway).expect("occupied");
            ve.li = victim.li;
            ve.private = victim.private;
            ve.tp = None;
        }
        let md1 = if is_i { &mut self.md1i } else { &mut self.md1d };
        md1.insert_at(
            node,
            set1,
            way1,
            key1,
            Md1Entry {
                region,
                private,
                li,
            },
        );
        let (_, e2) = self.md2.at_mut(node, md2_set, md2_way).expect("occupied");
        e2.tp = Some(TrackingPtr {
            side: if is_i {
                Md1Side::Instruction
            } else {
                Md1Side::Data
            },
            set: set1 as u16,
            way: way1 as u8,
        });
        e2.is_icache = is_i;
        Ok(MdRef::Md1 {
            is_i,
            set: set1,
            way: way1,
        })
    }

    /// Case D: the blocking ReadMM transaction at MD3 (paper appendix D1–D4).
    /// Returns `(private, li_array, latency)`.
    fn md3_transaction(
        &mut self,
        node: usize,
        region: RegionAddr,
    ) -> Result<(bool, PackedLiArray, u64), ProtocolError> {
        let me = Endpoint::Node(NodeId::new(node as u8));
        let mut lat = self.noc.send(MsgClass::ReadMM, me, Endpoint::FarSide);
        lat += self.cfg.lat.md3;
        self.ctr.md3_accesses += 1;
        self.ev.d_md_miss += 1;
        self.energy.record(EnergyEvent::Md3, 1);
        self.lockbits.acquire(region);

        let set3 = self.md3.set_index(region.raw());
        let (private, li) = if let Some(way3) = self.md3.way_of(set3, region.raw()) {
            let entry = *self.md3.at(set3, way3).map(|(_, e)| e).expect("occupied");
            self.md3.touch(set3, way3);
            match entry.class() {
                RegionClass::Untracked => {
                    // D1: untracked → private. MD3's LIs move to the new
                    // owner; MD3 stops tracking locations.
                    self.ev.d1_untracked_to_private += 1;
                    let (_, e3) = self.md3.at_mut(set3, way3).expect("occupied");
                    e3.pb = 1 << node;
                    let li = entry.li;
                    let (_, e3) = self.md3.at_mut(set3, way3).expect("occupied");
                    e3.li = PackedLiArray::INVALID;
                    (true, li)
                }
                RegionClass::Private if entry.li.any_valid() => {
                    // One PB bit but valid MD3 LIs: the region lost its
                    // other sharers (pruning/spills) without ever being
                    // privately owned — MD3 is authoritative, so this is a
                    // plain shared join. Clobbering MD3's LIs with the
                    // remaining tracker's view would orphan LLC masters it
                    // never learned about.
                    self.ev.d3_shared_to_shared += 1;
                    let (_, e3) = self.md3.at_mut(set3, way3).expect("occupied");
                    e3.pb |= 1 << node;
                    (false, entry.li)
                }
                RegionClass::Private => {
                    // D2: private → shared. GetMD to the single owner.
                    self.ev.d2_private_to_shared += 1;
                    let owner = entry.pb_nodes().next().expect("one PB bit").index();
                    debug_assert_ne!(owner, node, "requester cannot hold the PB bit");
                    lat += self.noc.send(
                        MsgClass::GetMd,
                        Endpoint::FarSide,
                        Endpoint::Node(NodeId::new(owner as u8)),
                    );
                    self.ctr.md2_accesses += 1;
                    self.energy.record(EnergyEvent::Md2, 1);
                    let converted = self.convert_owner_lis(owner, region)?;
                    lat += self.noc.send(
                        MsgClass::MdReply,
                        Endpoint::Node(NodeId::new(owner as u8)),
                        Endpoint::FarSide,
                    );
                    self.clear_private(owner, region);
                    let (_, e3) = self.md3.at_mut(set3, way3).expect("occupied");
                    e3.li = converted;
                    e3.pb |= 1 << node;
                    (false, converted)
                }
                RegionClass::Shared => {
                    // D3: shared → shared.
                    self.ev.d3_shared_to_shared += 1;
                    let (_, e3) = self.md3.at_mut(set3, way3).expect("occupied");
                    e3.pb |= 1 << node;
                    (false, entry.li)
                }
                RegionClass::Uncached => {
                    return Err(ProtocolError::CorruptMetadata {
                        context: "resident MD3 entry classified as Uncached",
                    })
                }
            }
        } else {
            // D4: uncached → private. Allocate an MD3 entry.
            self.ev.d4_uncached_to_private += 1;
            let way3 = self.md3.victim_way_with_cost(set3, |_, e: &Md3Entry| {
                u64::from(e.pb.count_ones()) * 64 + e.llc_resident_lines()
            });
            if self.md3.at(set3, way3).is_some() {
                self.evict_md3_entry(set3, way3)?;
            }
            self.md3.insert_at(
                set3,
                way3,
                region.raw(),
                Md3Entry {
                    pb: 1 << node,
                    li: PackedLiArray::INVALID,
                },
            );
            (true, PackedLiArray::MEM)
        };
        lat += self.noc.send(MsgClass::MdReply, Endpoint::FarSide, me);
        self.noc.send(MsgClass::Done, me, Endpoint::FarSide);
        Ok((private, li, lat))
    }

    /// D2 helper: the previous private owner converts its active LIs into
    /// globally-meaningful master locations. Lines whose master it holds
    /// become `Node(owner)`; its replicas contribute their RP (the true
    /// master location) so determinism survives later silent replica drops.
    fn convert_owner_lis(
        &mut self,
        owner: usize,
        region: RegionAddr,
    ) -> Result<PackedLiArray, ProtocolError> {
        let md = self
            .find_active_md(owner, region)
            .expect("PB bit implies an MD2 entry");
        let enc = self.enc;
        let mut out = PackedLiArray::INVALID;
        for off in 0..LINES_PER_REGION {
            let li = self.li_get(owner, md, off);
            let line = region.line(crate::meta_line_offset(off));
            let converted = match li {
                Li::L1 { way } => {
                    let set = self.l1_set(line);
                    let is_i = self.region_is_icache(owner, region);
                    let kind = if is_i { ArrKind::L1I } else { ArrKind::L1D };
                    match self.arr(kind).at(owner, set, way as usize) {
                        Some((k, dl)) if k == line.raw() => {
                            if dl.master {
                                Li::Node(NodeId::new(owner as u8))
                            } else {
                                // Replica: follow its RP chain (which may
                                // pass through the owner's local slice
                                // replica) to the true master.
                                match dl.rp {
                                    Li::L1 { .. } | Li::L2 { .. } => {
                                        Li::Node(NodeId::new(owner as u8))
                                    }
                                    global => self.resolve_replica_chain(line, global)?,
                                }
                            }
                        }
                        _ => {
                            self.ctr.determinism_errors += 1;
                            debug_assert!(false, "owner LI pointed at a wrong slot");
                            Li::Mem
                        }
                    }
                }
                Li::L2 { way } if self.feats.private_l2 => {
                    let set = self.l2_set(line);
                    match self.arr(ArrKind::L2).at(owner, set, way as usize) {
                        Some((k, dl)) if k == line.raw() => {
                            if dl.master {
                                Li::Node(NodeId::new(owner as u8))
                            } else {
                                match dl.rp {
                                    Li::L1 { .. } | Li::L2 { .. } => {
                                        Li::Node(NodeId::new(owner as u8))
                                    }
                                    global => self.resolve_replica_chain(line, global)?,
                                }
                            }
                        }
                        _ => {
                            self.ctr.determinism_errors += 1;
                            debug_assert!(false, "owner LI pointed at a wrong L2 slot");
                            Li::Mem
                        }
                    }
                }
                Li::L2 { .. } => Li::Node(NodeId::new(owner as u8)),
                // A direct pointer into an LLC slot may name the owner's
                // local replica; resolve it to the true master.
                other => self.resolve_replica_chain(line, other)?,
            };
            out.set(off, converted, enc);
        }
        Ok(out)
    }

    /// Follows a chain of LLC replica slots to the true master location
    /// (a master slot, `Mem`, or a remote node).
    fn resolve_replica_chain(&self, line: LineAddr, start: Li) -> Result<Li, ProtocolError> {
        let mut cur = start;
        for _ in 0..4 {
            match cur {
                Li::LlcFs { .. } | Li::LlcNs { .. } => {
                    let (slice, way) = self.llc_slice_way(cur)?;
                    let set = self.llc_set(line, slice);
                    match self.llc.at(slice, set, way) {
                        Some((k, dl)) if k == line.raw() && !dl.master && !dl.stale => {
                            cur = dl.rp;
                        }
                        _ => return Ok(cur),
                    }
                }
                _ => return Ok(cur),
            }
        }
        Ok(cur)
    }

    /// Whether `region` is currently an instruction-side region at `node`.
    fn region_is_icache(&self, node: usize, region: RegionAddr) -> bool {
        let md2 = &self.md2;
        let set = md2.set_index(region.raw());
        md2.way_of(node, set, region.raw())
            .and_then(|w| md2.at(node, set, w))
            .map(|(_, e)| e.is_icache)
            .unwrap_or(false)
    }

    /// Installs freshly-fetched region metadata into MD2, evicting (and
    /// purging, per metadata inclusion) a victim region if needed.
    fn install_md2(
        &mut self,
        node: usize,
        region: RegionAddr,
        private: bool,
        li: PackedLiArray,
        is_i: bool,
    ) -> Result<(usize, usize), ProtocolError> {
        let md2 = &self.md2;
        let set = md2.set_index(region.raw());
        // Region-aware replacement: prefer inactive regions with few
        // node-resident lines (paper §II-A).
        let way = md2.victim_way_with_cost(node, set, |_, e: &Md2Entry| {
            e.node_resident_lines() + if e.tp.is_some() { 64 } else { 0 }
        });
        if self.md2.at(node, set, way).is_some() {
            self.evict_md2_entry(node, set, way, true)?;
        }
        self.md2.insert_at(
            node,
            set,
            way,
            region.raw(),
            Md2Entry {
                private,
                li,
                tp: None,
                is_icache: is_i,
                fills: 0,
                reuse: 0,
            },
        );
        Ok((set, way))
    }

    // ================= data serves =================

    /// Case A read path: fetch the line named by `li` and produce the L1
    /// replica to install. Returns `(latency, serviced_by, data_line)`.
    fn read_miss(
        &mut self,
        node: usize,
        is_i: bool,
        line: LineAddr,
        _off: usize,
        li: Li,
    ) -> Result<(u64, ServicedBy, DataLine), ProtocolError> {
        match li {
            Li::L2 { way } if self.feats.private_l2 => {
                self.serve_l2_local(node, line, way as usize)
            }
            Li::L1 { .. } | Li::L2 { .. } => {
                // L1 handled by the caller; an L2 LI is only valid when the
                // optional private L2 is configured.
                self.ctr.determinism_errors += 1;
                debug_assert!(false, "unexpected node-local LI on the miss path");
                self.serve_memory(node, line, is_i)
            }
            Li::LlcFs { .. } | Li::LlcNs { .. } => self.serve_llc(node, is_i, line, li),
            Li::Mem | Li::Invalid => self.serve_memory(node, line, is_i),
            Li::Node(m) => self.serve_remote_node(node, line, m),
        }
    }

    /// Serves a read from an LLC slot (far-side bank or NS slice), applying
    /// the §IV-C replication heuristic when enabled.
    fn serve_llc(
        &mut self,
        node: usize,
        is_i: bool,
        line: LineAddr,
        li: Li,
    ) -> Result<(u64, ServicedBy, DataLine), ProtocolError> {
        let (slice, way) = self.llc_slice_way(li)?;
        let set = self.llc_set(line, slice);
        let slot = match self.llc.at(slice, set, way) {
            Some((k, dl)) if k == line.raw() && dl.serveable() => *dl,
            _ => {
                self.ctr.determinism_errors += 1;
                debug_assert!(false, "LI pointed at a wrong/stale LLC slot");
                return self.serve_memory(node, line, is_i);
            }
        };
        let was_mru = self.llc.is_mru(slice, set, way);
        self.llc.touch(slice, set, way);
        self.note_region_reuse(node, line.region());

        let me = Endpoint::Node(NodeId::new(node as u8));
        let endpoint = self.llc_endpoint(slice);
        let mut lat;
        let serviced;
        if endpoint == me {
            lat = self.cfg.lat.ns_slice;
            serviced = ServicedBy::LocalNs;
            self.energy.record(EnergyEvent::NsSliceArray, 1);
            if is_i {
                self.ctr.ns_local_i += 1;
            } else {
                self.ctr.ns_local_d += 1;
            }
        } else {
            lat = self.noc.send(MsgClass::ReadReq, me, endpoint);
            lat += self.noc.send(MsgClass::DataReply, endpoint, me);
            match endpoint {
                Endpoint::FarSide => {
                    lat += self.cfg.lat.llc;
                    serviced = ServicedBy::Llc;
                    self.energy.record(EnergyEvent::LlcArray, 1);
                    self.ctr.llc_fs_hits += 1;
                }
                Endpoint::Node(_) => {
                    lat += self.cfg.lat.ns_slice;
                    serviced = ServicedBy::RemoteNs;
                    self.energy.record(EnergyEvent::NsSliceArray, 1);
                    if is_i {
                        self.ctr.ns_remote_i += 1;
                    } else {
                        self.ctr.ns_remote_d += 1;
                    }
                }
            }
        }

        // §IV-C replication: instructions always; data read from the MRU
        // position of a remote slice.
        let mut rp = li;
        if self.feats.replication && slice != node && (is_i || was_mru) {
            rp = self.replicate_local(node, line, slot.version, li);
        }
        Ok((lat, serviced, DataLine::replica(slot.version, 0, rp)))
    }

    /// Serves a read from the node's own private L2 (optional level): the
    /// line moves up to L1. A master leaves its L2 slot behind as its victim
    /// location (paper §II-B: "L1 cachelines may have victim locations
    /// allocated for them in L2"); a replica's slot is freed.
    fn serve_l2_local(
        &mut self,
        node: usize,
        line: LineAddr,
        way: usize,
    ) -> Result<(u64, ServicedBy, DataLine), ProtocolError> {
        let set = self.l2_set(line);
        let slot = match self.arr(ArrKind::L2).at(node, set, way) {
            Some((k, dl)) if k == line.raw() && dl.serveable() => *dl,
            _ => {
                self.ctr.determinism_errors += 1;
                debug_assert!(false, "LI pointed at a wrong/stale L2 slot");
                return self.serve_memory(node, line, false);
            }
        };
        self.energy.record(EnergyEvent::L2Array, 1);
        let lat = self.cfg.lat.l2;
        let dl = if slot.master {
            // Keep the slot as the (stale) victim location for the new L1
            // master.
            let arr = self.arr_mut(ArrKind::L2);
            let (_, v) = arr.at_mut(node, set, way).expect("occupied");
            v.master = false;
            v.stale = true;
            let mut dl = DataLine::master(slot.version, 0, slot.dirty, Li::L2 { way: way as u8 });
            dl.excl = slot.excl;
            dl.dirty = slot.dirty;
            dl
        } else {
            self.arr_mut(ArrKind::L2).remove(node, set, way);
            DataLine::replica(slot.version, 0, slot.rp)
        };
        Ok((lat, ServicedBy::L2, dl))
    }

    /// Serves a read from memory. The request travels to the far side where
    /// MD3 is co-located: if MD3 already tracks an LLC master for the line
    /// (another sharer allocated it), the read is redirected there instead of
    /// creating a second master. Otherwise the fill allocates an LLC victim
    /// slot as the new master (placement per the §IV-B policy) and MD3's LI
    /// is updated in the same far-side transaction.
    fn serve_memory(
        &mut self,
        node: usize,
        line: LineAddr,
        is_i: bool,
    ) -> Result<(u64, ServicedBy, DataLine), ProtocolError> {
        let me = Endpoint::Node(NodeId::new(node as u8));
        let region = line.region();
        let off = usize::from(line.region_offset());
        let mut lat = self.noc.send(MsgClass::ReadReq, me, Endpoint::FarSide);

        // Far-side MD3 peek (no separate transaction; same trip).
        let set3 = self.md3.set_index(region.raw());
        if let Some(way3) = self.md3.way_of(set3, region.raw()) {
            let tracked = self
                .md3
                .at(set3, way3)
                .map(|(_, e)| e.li.get(off, self.enc))
                .expect("occupied");
            if tracked.is_llc() {
                // Redirect to the existing LLC master.
                let (slice, way) = self.llc_slice_way(tracked)?;
                let set = self.llc_set(line, slice);
                if let Some((k, dl)) = self.llc.at(slice, set, way) {
                    if k == line.raw() && dl.serveable() {
                        let version = dl.version;
                        self.llc.touch(slice, set, way);
                        let endpoint = self.llc_endpoint(slice);
                        if endpoint != Endpoint::FarSide {
                            lat += self.noc.send(MsgClass::Fwd, Endpoint::FarSide, endpoint);
                        }
                        lat += self.noc.send(MsgClass::DataReply, endpoint, me);
                        lat += if endpoint == Endpoint::FarSide {
                            self.cfg.lat.llc
                        } else {
                            self.cfg.lat.ns_slice
                        };
                        let serviced = if endpoint == me {
                            ServicedBy::LocalNs
                        } else if endpoint == Endpoint::FarSide {
                            ServicedBy::Llc
                        } else {
                            ServicedBy::RemoteNs
                        };
                        return Ok((lat, serviced, DataLine::replica(version, 0, tracked)));
                    }
                }
            }
        }

        // Genuine memory fill.
        self.noc.offchip(MsgClass::MemRead);
        lat += self.cfg.lat.mem;
        let version = self.oracle.memory(line);
        self.ctr.mem_fills += 1;
        if self.feats.bypass && self.note_region_fill(node, region) {
            // Bypass (paper §I optimization list): a streaming region skips
            // LLC allocation entirely — the L1 copy's master stays memory,
            // and inclusion still holds for everything else.
            self.ctr.bypassed_fills += 1;
            lat += self.noc.send(MsgClass::DataReply, Endpoint::FarSide, me);
            return Ok((lat, ServicedBy::Mem, DataLine::replica(version, 0, Li::Mem)));
        }
        let slot_li = self.alloc_llc_master(node, line, version);
        // Record the new master in MD3 unless the region is private there
        // (Invalid LIs: the owner's MD2 is authoritative and gets the slot
        // via the L1 replica's RP).
        if let Some(way3) = self.md3.way_of(set3, region.raw()) {
            let enc = self.enc;
            let (_, e3) = self.md3.at_mut(set3, way3).expect("occupied");
            if e3.li.is_valid(off) {
                e3.li.set(off, slot_li, enc);
            }
        }
        // Data to the requester (and implicitly to the slice on the same
        // path when the slice is the requester's own).
        let (slice, _) = self.llc_slice_way(slot_li)?;
        let slice_ep = self.llc_endpoint(slice);
        if slice_ep != me && slice_ep != Endpoint::FarSide {
            self.noc
                .send(MsgClass::DataReply, Endpoint::FarSide, slice_ep);
        }
        lat += self.noc.send(MsgClass::DataReply, Endpoint::FarSide, me);
        let _ = is_i;
        Ok((lat, ServicedBy::Mem, DataLine::replica(version, 0, slot_li)))
    }

    /// Case A with a remote master node: the request goes directly to the
    /// master node (no directory), which resolves its own MD to find and
    /// serve the line.
    fn serve_remote_node(
        &mut self,
        node: usize,
        line: LineAddr,
        m: NodeId,
    ) -> Result<(u64, ServicedBy, DataLine), ProtocolError> {
        let me = Endpoint::Node(NodeId::new(node as u8));
        let remote = Endpoint::Node(m);
        let mut lat = self.noc.send(MsgClass::ReadReq, me, remote);
        // The master node resolves through its MD2 (and MD1 if active).
        self.ctr.md2_accesses += 1;
        self.energy.record(EnergyEvent::Md2, 1);
        lat += self.cfg.lat.md2 + self.cfg.lat.l1;
        match self.node_slot_of(m.index(), line) {
            Some((kind, set, way)) => {
                self.energy.record(EnergyEvent::L1Array, 1);
                let arr = self.arr_mut(kind);
                let (_, dl) = arr.at_mut(m.index(), set, way).expect("occupied");
                debug_assert!(dl.master, "MD3/LIs said node {m} holds the master");
                dl.excl = false; // a replica now exists elsewhere
                let version = dl.version;
                lat += self.noc.send(MsgClass::DataReply, remote, me);
                self.ctr.remote_node_reads += 1;
                Ok((
                    lat,
                    ServicedBy::RemoteNode,
                    DataLine::replica(version, 0, Li::Node(m)),
                ))
            }
            None => {
                self.ctr.determinism_errors += 1;
                debug_assert!(false, "remote master node does not hold the line");
                let (l2, s, dl) = self.serve_memory(node, line, false)?;
                Ok((lat + l2, s, dl))
            }
        }
    }

    // ================= writes =================

    /// Store to a line already in L1. Returns added latency.
    #[allow(clippy::too_many_arguments)]
    fn write_hit(
        &mut self,
        node: usize,
        line: LineAddr,
        off: usize,
        _md: MdRef,
        private: bool,
        set: usize,
        way: usize,
    ) -> Result<u64, ProtocolError> {
        let slot = *self
            .arr(ArrKind::L1D)
            .at(node, set, way)
            .map(|(_, dl)| dl)
            .expect("checked by caller");
        let mut lat = 0;
        let mut rp = slot.rp;
        if slot.master {
            if !slot.excl && !private {
                // Master without exclusivity (replicas exist): shared-region
                // invalidation round (case C without a data fetch).
                self.ev.c_write_shared += 1;
                let (l, _victim, _v, _s) = self.case_c_invalidate(node, line, off, false)?;
                lat += l;
            }
        } else if private {
            // Case B at hit granularity: silent upgrade (paper §IV-A).
            self.ev.silent_upgrades += 1;
            rp = self.collapse_chain(node, slot.rp, line)?;
        } else {
            // Shared-region upgrade: full case C (data already local).
            self.ev.c_write_shared += 1;
            let (l, victim, _v, _s) = self.case_c_invalidate(node, line, off, false)?;
            lat += l;
            // Our own slice replica (if the chain had one) would otherwise
            // survive with stale data.
            self.purge_local_slice_replica(node, line);
            // Only a victim location produced by the case-C round is usable
            // as the new master's RP. The replica's own RP is *not* one — it
            // names the master (or the local replication chain, which the
            // purge below removes) — so default to memory when the round
            // yielded none.
            rp = match victim {
                Some(v) if !matches!(v, Li::Node(_)) => v,
                _ => Li::Mem,
            };
            if self.feats.private_l2 {
                rp = self.alloc_l2_victim_slot(node, line, rp)?;
            } else if rp == Li::Mem {
                rp = self.alloc_llc_victim_slot(node, line);
            }
        }
        let version = self.oracle.on_store(line);
        let arr = self.arr_mut(ArrKind::L1D);
        let (_, dl) = arr.at_mut(node, set, way).expect("occupied");
        dl.master = true;
        dl.excl = true;
        dl.dirty = true;
        dl.version = version;
        dl.rp = rp;
        Ok(lat)
    }

    /// Store miss: acquire the line with write permission (cases B and C).
    fn write_miss(
        &mut self,
        node: usize,
        line: LineAddr,
        off: usize,
        _md: MdRef,
        private: bool,
        li: Li,
    ) -> Result<(u64, ServicedBy, DataLine), ProtocolError> {
        if private {
            // Case B: direct read from the master, silent promotion.
            let (lat, serviced, fetched) = self.read_miss(node, false, line, off, li)?;
            if self.cfg.check_coherence {
                if let Err(e) = self.oracle.check_load(line, fetched.version) {
                    self.ctr.coherence_errors += 1;
                    debug_assert!(false, "stale RFO data: {e}");
                }
            }
            if fetched.master {
                // Already promoted to a master (e.g. out of the local L2):
                // its victim location is set; just mint the store version.
                let version = self.oracle.on_store(line);
                let mut dl = fetched;
                dl.excl = true;
                dl.dirty = true;
                dl.version = version;
                return Ok((lat, serviced, dl));
            }
            let downstream = self.collapse_chain(node, fetched.rp, line)?;
            let victim = if self.feats.private_l2 {
                self.alloc_l2_victim_slot(node, line, downstream)?
            } else if downstream == Li::Mem {
                self.alloc_llc_victim_slot(node, line)
            } else {
                downstream
            };
            let version = self.oracle.on_store(line);
            Ok((lat, serviced, DataLine::master(version, 0, true, victim)))
        } else {
            // Case C: blocking MD3 round with invalidations.
            let (lat, victim, fetched_version, serviced) =
                self.case_c_invalidate(node, line, off, true)?;
            self.purge_local_slice_replica(node, line);
            if self.cfg.check_coherence {
                if let Err(e) = self.oracle.check_load(line, fetched_version) {
                    self.ctr.coherence_errors += 1;
                    debug_assert!(false, "stale case-C data: {e}");
                }
            }
            let victim = match (victim, self.feats.private_l2) {
                (v, true) => {
                    let downstream = v.unwrap_or(Li::Mem);
                    self.alloc_l2_victim_slot(node, line, downstream)?
                }
                (Some(v), false) if v != Li::Mem => v,
                _ => self.alloc_llc_victim_slot(node, line),
            };
            let version = self.oracle.on_store(line);
            Ok((lat, serviced, DataLine::master(version, 0, true, victim)))
        }
    }

    /// Case C: the blocking write round for shared regions. Demotes the old
    /// master (named by MD3's LI), invalidates every PB node's copies,
    /// repoints their LIs to the writer, and updates MD3. Returns
    /// `(latency, victim_location, data_version, serviced_by)`.
    fn case_c_invalidate(
        &mut self,
        node: usize,
        line: LineAddr,
        off: usize,
        fetch_data: bool,
    ) -> Result<(u64, Option<Li>, u64, ServicedBy), ProtocolError> {
        let me = Endpoint::Node(NodeId::new(node as u8));
        let region = line.region();
        let mut lat = self.noc.send(MsgClass::ReadEx, me, Endpoint::FarSide);
        lat += self.cfg.lat.md3;
        self.ctr.md3_accesses += 1;
        self.energy.record(EnergyEvent::Md3, 1);
        self.lockbits.acquire(region);

        let set3 = self.md3.set_index(region.raw());
        let way3 = self
            .md3
            .way_of(set3, region.raw())
            .expect("metadata inclusion: writer's MD2 entry implies an MD3 entry");
        let entry = *self.md3.at(set3, way3).map(|(_, e)| e).expect("occupied");

        // --- demote the old master & fetch the data ---
        let old = entry.li.get(off, self.enc);
        let mut victim = None;
        let mut version = 0;
        let mut serviced = ServicedBy::Llc;
        let mut master_node: Option<usize> = None;
        match old {
            Li::LlcFs { .. } | Li::LlcNs { .. } => {
                let (slice, way) = self.llc_slice_way(old)?;
                let set = self.llc_set(line, slice);
                match self.llc.at_mut(slice, set, way) {
                    Some((k, dl)) if k == line.raw() => {
                        version = dl.version;
                        dl.master = false;
                        dl.stale = true;
                        victim = Some(old);
                        let ep = self.llc_endpoint(slice);
                        if fetch_data {
                            if ep != Endpoint::FarSide {
                                lat += self.noc.send(MsgClass::Fwd, Endpoint::FarSide, ep);
                            }
                            lat += self.noc.send(MsgClass::DataReply, ep, me);
                            serviced = if ep == me {
                                ServicedBy::LocalNs
                            } else if ep == Endpoint::FarSide {
                                ServicedBy::Llc
                            } else {
                                ServicedBy::RemoteNs
                            };
                        }
                    }
                    _ => {
                        self.ctr.determinism_errors += 1;
                        debug_assert!(false, "MD3 LI pointed at a wrong LLC slot");
                    }
                }
            }
            Li::Mem | Li::Invalid => {
                version = self.oracle.memory(line);
                if fetch_data {
                    self.noc.offchip(MsgClass::MemRead);
                    lat += self.cfg.lat.mem;
                    lat += self.noc.send(MsgClass::DataReply, Endpoint::FarSide, me);
                    serviced = ServicedBy::Mem;
                }
            }
            Li::Node(m) if m.index() == node => {
                // The writer already holds the master (an O→M upgrade).
                if let Some((kind, s, w)) = self.node_slot_of(node, line) {
                    let arr = self.arr(kind);
                    version = arr
                        .at(node, s, w)
                        .map(|(_, dl)| dl.version)
                        .expect("occupied");
                }
                serviced = ServicedBy::L1;
            }
            Li::Node(m) => {
                master_node = Some(m.index());
                let remote = Endpoint::Node(m);
                lat += self
                    .noc
                    .send(MsgClass::ReadExReq, Endpoint::FarSide, remote);
                self.ctr.md2_accesses += 1;
                self.energy.record(EnergyEvent::Md2, 1);
                lat += self.cfg.lat.md2 + self.cfg.lat.l1;
                if let Some((kind, s, w)) = self.node_slot_of(m.index(), line) {
                    let arr = self.arr(kind);
                    let dl = *arr.at(m.index(), s, w).map(|(_, dl)| dl).expect("occupied");
                    version = dl.version;
                    // Inherit the old master's victim slot if it has one.
                    if dl.rp.is_llc() {
                        victim = Some(dl.rp);
                    }
                } else {
                    self.ctr.determinism_errors += 1;
                    debug_assert!(false, "old master node lacks the line");
                    version = self.oracle.memory(line);
                }
                self.purge_node_line(m.index(), line);
                if let Some(mdm) = self.find_active_md(m.index(), region) {
                    self.li_set(m.index(), mdm, off, Li::Node(NodeId::new(node as u8)));
                }
                if fetch_data {
                    lat += self.noc.send(MsgClass::DataReply, remote, me);
                    serviced = ServicedBy::RemoteNode;
                }
            }
            Li::L1 { .. } | Li::L2 { .. } => {
                return Err(ProtocolError::UnexpectedLi {
                    li: old,
                    context: "MD3 LIs are global, found a node-local LI",
                })
            }
        }

        // --- invalidate the PB nodes (region-grain multicast) ---
        let mut prune_candidates = std::mem::take(&mut self.scratch_prune);
        prune_candidates.clear();
        let mut inv_lat = 0;
        for t in entry.pb_nodes().map(|n| n.index()) {
            if t == node || Some(t) == master_node {
                continue;
            }
            inv_lat = inv_lat.max(self.noc.send(
                MsgClass::Inv,
                Endpoint::FarSide,
                Endpoint::Node(NodeId::new(t as u8)),
            ));
            self.ctr.invalidations_received += 1;
            self.ctr.md2_accesses += 1;
            self.energy.record(EnergyEvent::Md2, 1);
            let had = self.purge_node_line(t, line);
            if !had {
                self.ctr.false_invalidations += 1;
            }
            if let Some(mdt) = self.find_active_md(t, region) {
                self.li_set(t, mdt, off, Li::Node(NodeId::new(node as u8)));
            }
            inv_lat = inv_lat.max(self.noc.send(
                MsgClass::Ack,
                Endpoint::Node(NodeId::new(t as u8)),
                me,
            ));
            prune_candidates.push(t);
        }
        lat += inv_lat;

        let enc = self.enc;
        let (_, e3) = self.md3.at_mut(set3, way3).expect("occupied");
        e3.li.set(off, Li::Node(NodeId::new(node as u8)), enc);
        self.noc.send(MsgClass::Done, me, Endpoint::FarSide);

        // MD2 pruning heuristic (paper §IV-A): nodes that received an
        // invalidation for a region they no longer use drop their MD2 entry.
        for t in prune_candidates.drain(..) {
            self.md2_prune_check(t, region)?;
        }
        self.scratch_prune = prune_candidates;
        Ok((lat, victim, version, serviced))
    }

    /// Removes every copy of `line` at node `t` (L1 arrays and, for NS
    /// systems, replicas in `t`'s local slice). Returns whether any copy
    /// existed (false-invalidation accounting).
    fn purge_node_line(&mut self, t: usize, line: LineAddr) -> bool {
        let mut had = false;
        if let Some((kind, set, way)) = self.node_slot_of(t, line) {
            self.arr_mut(kind).remove(t, set, way);
            had = true;
        }
        if self.feats.near_side {
            let set = self.llc_set(line, t);
            if let Some(way) = self.llc.way_of(t, set, line.raw()) {
                // Stale victim slots stay: a master's RP may target them.
                let is_replica = self
                    .llc
                    .at(t, set, way)
                    .map(|(_, dl)| !dl.master && !dl.stale)
                    .unwrap_or(false);
                if is_replica {
                    self.llc.remove(t, set, way);
                    had = true;
                }
            }
        }
        had
    }

    /// Drops the node's own slice replica of `line` (if any) so a write
    /// upgrade cannot leave an orphaned stale-but-serveable copy behind.
    fn purge_local_slice_replica(&mut self, node: usize, line: LineAddr) {
        if !self.feats.near_side {
            return;
        }
        let set = self.llc_set(line, node);
        if let Some(way) = self.llc.way_of(node, set, line.raw()) {
            let is_replica = self
                .llc
                .at(node, set, way)
                .map(|(_, dl)| !dl.master && !dl.stale)
                .unwrap_or(false);
            if is_replica {
                self.llc.remove(node, set, way);
            }
        }
    }

    /// §IV-A pruning: drop `t`'s MD2 entry for `region` if it tracks nothing
    /// locally and is not MD1-active.
    fn md2_prune_check(&mut self, t: usize, region: RegionAddr) -> Result<(), ProtocolError> {
        if !self.cfg.md2_pruning {
            return Ok(());
        }
        let md2 = &self.md2;
        let set = md2.set_index(region.raw());
        let Some(way) = md2.way_of(t, set, region.raw()) else {
            return Ok(());
        };
        let e = md2.at(t, set, way).map(|(_, e)| *e).expect("occupied");
        if e.tp.is_none() && e.node_resident_lines() == 0 {
            self.evict_md2_entry(t, set, way, true)?;
            self.ctr.md2_prunes += 1;
        }
        Ok(())
    }

    /// Collapses a replica RP chain for a silent write upgrade: local
    /// replica slots along the chain are dropped, the final master slot is
    /// demoted to a stale victim, and its location is returned as the new
    /// master's RP (or `Mem`).
    fn collapse_chain(
        &mut self,
        _node: usize,
        start: Li,
        line: LineAddr,
    ) -> Result<Li, ProtocolError> {
        let mut cur = start;
        for _ in 0..4 {
            match cur {
                Li::LlcFs { .. } | Li::LlcNs { .. } => {
                    let (slice, way) = self.llc_slice_way(cur)?;
                    let set = self.llc_set(line, slice);
                    match self.llc.at(slice, set, way) {
                        Some((k, dl)) if k == line.raw() => {
                            if dl.master {
                                let (_, dl) = self.llc.at_mut(slice, set, way).expect("occupied");
                                dl.master = false;
                                dl.stale = true;
                                return Ok(cur);
                            }
                            if dl.stale {
                                // Already a victim slot reserved for us.
                                return Ok(cur);
                            }
                            let next = dl.rp;
                            self.llc.remove(slice, set, way);
                            cur = next;
                        }
                        _ => {
                            self.ctr.determinism_errors += 1;
                            debug_assert!(false, "RP chain pointed at a wrong slot");
                            return Ok(Li::Mem);
                        }
                    }
                }
                Li::L2 { way } if self.feats.private_l2 => {
                    let set = self.l2_set(line);
                    match self.arr(ArrKind::L2).at(_node, set, way as usize) {
                        Some((k, dl)) if k == line.raw() => {
                            if dl.master {
                                let arr = self.arr_mut(ArrKind::L2);
                                let (_, dl) =
                                    arr.at_mut(_node, set, way as usize).expect("occupied");
                                dl.master = false;
                                dl.stale = true;
                                return Ok(cur);
                            }
                            if dl.stale {
                                return Ok(cur);
                            }
                            let next = dl.rp;
                            self.arr_mut(ArrKind::L2).remove(_node, set, way as usize);
                            cur = next;
                        }
                        _ => {
                            self.ctr.determinism_errors += 1;
                            debug_assert!(false, "RP chain pointed at a wrong L2 slot");
                            return Ok(Li::Mem);
                        }
                    }
                }
                Li::Mem | Li::Invalid => return Ok(Li::Mem),
                Li::Node(_) | Li::L1 { .. } | Li::L2 { .. } => {
                    // Private regions cannot have remote masters; node-local
                    // RP chains do not occur without an L2.
                    debug_assert!(false, "unexpected RP chain element {cur:?}");
                    return Ok(Li::Mem);
                }
            }
        }
        Ok(Li::Mem)
    }

    // ================= placement & replication =================

    /// Allocates an LLC slot as the (clean) master for a memory fill.
    ///
    /// If the chosen slice already holds a (stale victim / replica) slot for
    /// this line, that slot is reused — the same line must never occupy two
    /// ways of one set.
    fn alloc_llc_master(&mut self, node: usize, line: LineAddr, version: u64) -> Li {
        let slice = self.pick_slice(node);
        let set = self.llc_set(line, slice);
        let way = match self.llc.way_of(slice, set, line.raw()) {
            Some(existing) => existing,
            None => {
                let way = self.llc.victim_way(slice, set);
                if self.llc.at(slice, set, way).is_some() {
                    self.evict_llc_slot(slice, set, way);
                }
                way
            }
        };
        self.llc.insert_at(
            slice,
            set,
            way,
            line.raw(),
            DataLine {
                master: true,
                excl: false,
                dirty: false,
                stale: false,
                version,
                ready_at: 0,
                rp: Li::Mem,
            },
        );
        self.li_of_llc(slice, way)
    }

    /// Allocates a stale LLC victim slot for a new node-held master (so its
    /// eventual eviction lands in the LLC rather than going to memory).
    fn alloc_llc_victim_slot(&mut self, node: usize, line: LineAddr) -> Li {
        let slice = self.pick_slice(node);
        let set = self.llc_set(line, slice);
        let way = match self.llc.way_of(slice, set, line.raw()) {
            Some(existing) => existing,
            None => {
                let way = self.llc.victim_way(slice, set);
                if self.llc.at(slice, set, way).is_some() {
                    self.evict_llc_slot(slice, set, way);
                }
                way
            }
        };
        self.llc.insert_at(
            slice,
            set,
            way,
            line.raw(),
            DataLine {
                master: false,
                excl: false,
                dirty: false,
                stale: true,
                version: 0,
                ready_at: 0,
                rp: Li::Mem,
            },
        );
        self.li_of_llc(slice, way)
    }

    /// Frees (evicting if needed) an L2 slot for `line` at `node`.
    fn alloc_l2_slot(
        &mut self,
        node: usize,
        line: LineAddr,
    ) -> Result<(usize, usize), ProtocolError> {
        let set = self.l2_set(line);
        if let Some(existing) = self.arr(ArrKind::L2).way_of(node, set, line.raw()) {
            self.evict_data_line(node, ArrKind::L2, set, existing, false)?;
            return Ok((set, existing));
        }
        let way = self.arr(ArrKind::L2).victim_way(node, set);
        if self.arr(ArrKind::L2).at(node, set, way).is_some() {
            self.evict_data_line(node, ArrKind::L2, set, way, false)?;
        }
        Ok((set, way))
    }

    /// Allocates a stale L2 victim slot for a new L1-held master (the local
    /// analogue of [`Self::alloc_llc_victim_slot`]). `downstream` is where a
    /// master landing here will itself evict to (the Figure 2 chain:
    /// L1 → L2 victim slot → LLC victim slot → memory).
    fn alloc_l2_victim_slot(
        &mut self,
        node: usize,
        line: LineAddr,
        downstream: Li,
    ) -> Result<Li, ProtocolError> {
        let (set, way) = self.alloc_l2_slot(node, line)?;
        self.l2.as_mut().expect("L2 enabled").insert_at(
            node,
            set,
            way,
            line.raw(),
            DataLine {
                master: false,
                excl: false,
                dirty: false,
                stale: true,
                version: 0,
                ready_at: 0,
                rp: downstream,
            },
        );
        Ok(Li::L2 { way: way as u8 })
    }

    fn pick_slice(&mut self, node: usize) -> usize {
        if self.feats.near_side {
            let s = self.choose_ns_slice(node);
            if s == node {
                self.ctr.ns_alloc_local += 1;
            } else {
                self.ctr.ns_alloc_remote += 1;
            }
            s
        } else {
            0
        }
    }

    /// §IV-C: replicate a line read from a remote slice into the local
    /// slice; returns the local replica's location (the L1 copy's new RP).
    fn replicate_local(&mut self, node: usize, line: LineAddr, version: u64, master_li: Li) -> Li {
        let set = self.llc_set(line, node);
        if let Some(way) = self.llc.way_of(node, set, line.raw()) {
            // Already present locally (replica or master): reuse.
            return self.li_of_llc(node, way);
        }
        let way = self.llc.victim_way(node, set);
        if self.llc.at(node, set, way).is_some() {
            self.evict_llc_slot(node, set, way);
        }
        self.llc.insert_at(
            node,
            set,
            way,
            line.raw(),
            DataLine::replica(version, 0, master_li),
        );
        self.ctr.replications += 1;
        self.energy.record(EnergyEvent::NsSliceArray, 1);
        self.li_of_llc(node, way)
    }

    // ================= evictions =================

    /// Installs `dl` for `line` in `node`'s L1, evicting the victim first
    /// (cases E/F or a silent replica drop). Returns the way used.
    fn install_l1(
        &mut self,
        node: usize,
        is_i: bool,
        line: LineAddr,
        dl: DataLine,
    ) -> Result<usize, ProtocolError> {
        let kind = if is_i { ArrKind::L1I } else { ArrKind::L1D };
        let set = self.l1_set(line);
        let way = self.arr(kind).victim_way(node, set);
        if self.arr(kind).at(node, set, way).is_some() {
            self.evict_data_line(node, kind, set, way, false)?;
        }
        self.arr_mut(kind).insert_at(node, set, way, line.raw(), dl);
        Ok(way)
    }

    /// Evicts one L1 line: silent for replicas (LI := RP), copy-to-victim
    /// plus LI flip for masters (case E), with the EvictReq/NewMaster round
    /// for shared regions (case F). `quiet` suppresses all messaging and
    /// cross-node fixes during global purges.
    pub(crate) fn evict_data_line(
        &mut self,
        node: usize,
        kind: ArrKind,
        set: usize,
        way: usize,
        quiet: bool,
    ) -> Result<(), ProtocolError> {
        let (key, slot) = match self.arr_mut(kind).remove(node, set, way) {
            Some(x) => x,
            None => return Ok(()),
        };
        let line = LineAddr::new(key);
        let region = line.region();
        let off = usize::from(line.region_offset());
        let md = self.find_active_md(node, region);

        if !slot.master {
            let li_here = match kind {
                ArrKind::L2 => Li::L2 { way: way as u8 },
                _ => Li::L1 { way: way as u8 },
            };
            if slot.stale {
                // A reclaimed victim slot: the local master whose RP names
                // this slot falls back to the slot's own downstream victim.
                if let Some((hk, hs, hw)) = self.node_slot_of(node, line) {
                    let arr = self.arr_mut(hk);
                    let (_, holder) = arr.at_mut(node, hs, hw).expect("occupied");
                    if holder.rp == li_here {
                        holder.rp = slot.rp;
                    }
                }
                return Ok(());
            }
            // With the optional L2, clean L1 victims demote into the L2
            // (victim caching) instead of being dropped.
            if self.feats.private_l2 && kind != ArrKind::L2 && !quiet {
                let (s2, w2) = self.alloc_l2_slot(node, line)?;
                self.l2
                    .as_mut()
                    .expect("L2 enabled")
                    .insert_at(node, s2, w2, line.raw(), slot);
                if let Some(md) = md {
                    if self.li_get(node, md, off) == li_here {
                        self.li_set(node, md, off, Li::L2 { way: w2 as u8 });
                    }
                }
                return Ok(());
            }
            // Silent replica drop: the LI falls back to the master location.
            if let Some(md) = md {
                if self.li_get(node, md, off) == li_here {
                    self.li_set(node, md, off, slot.rp);
                }
            }
            return Ok(());
        }

        debug_assert!(slot.dirty, "node-held masters are always dirty");
        let me = Endpoint::Node(NodeId::new(node as u8));
        let private = md.map(|m| self.md_private(node, m)).unwrap_or(true);
        // Shared-region evictions (case F) publish the victim location to
        // other nodes and MD3, so it must be *global*: a node-local L2
        // victim slot is collapsed to its downstream (LLC slot or memory).
        let mut rp_target = slot.rp;
        if !private && self.feats.private_l2 {
            if let Li::L2 { way: vway } = rp_target {
                let vset = self.l2_set(line);
                rp_target = match self.arr(ArrKind::L2).at(node, vset, vway as usize) {
                    Some((k, vdl)) if k == line.raw() && !vdl.rp.is_node_local() => {
                        let downstream = vdl.rp;
                        self.arr_mut(ArrKind::L2).remove(node, vset, vway as usize);
                        downstream
                    }
                    _ => {
                        self.arr_mut(ArrKind::L2).remove(node, vset, vway as usize);
                        Li::Mem
                    }
                };
            }
        }
        // Copy the data to the victim location named by the RP.
        let victim = match rp_target {
            Li::LlcFs { .. } | Li::LlcNs { .. } => {
                let (slice, vway) = self.llc_slice_way(rp_target)?;
                let vset = self.llc_set(line, slice);
                match self.llc.at_mut(slice, vset, vway) {
                    Some((k, vdl)) if k == line.raw() => {
                        vdl.master = true;
                        vdl.excl = false;
                        vdl.dirty = true;
                        vdl.stale = false;
                        vdl.version = slot.version;
                        let ep = self.llc_endpoint(slice);
                        if !quiet {
                            self.noc.send(MsgClass::WbData, me, ep);
                        }
                        rp_target
                    }
                    _ => {
                        self.ctr.determinism_errors += 1;
                        debug_assert!(false, "RP victim slot vanished: line {line:?} rp {rp_target:?} node {node} kind {kind:?} quiet {quiet}");
                        self.noc.offchip(MsgClass::MemWrite);
                        self.oracle.write_memory(line, slot.version);
                        Li::Mem
                    }
                }
            }
            Li::L2 { way: vway } if self.feats.private_l2 && kind != ArrKind::L2 => {
                // Victim location in the local L2 (no interconnect traffic).
                let vset = self.l2_set(line);
                let arr = self.l2.as_mut().expect("L2 enabled");
                match arr.at_mut(node, vset, vway as usize) {
                    Some((k, vdl)) if k == line.raw() => {
                        vdl.master = true;
                        vdl.excl = slot.excl;
                        vdl.dirty = true;
                        vdl.stale = false;
                        vdl.version = slot.version;
                        // vdl.rp keeps its downstream victim location.
                        Li::L2 { way: vway }
                    }
                    _ => {
                        self.ctr.determinism_errors += 1;
                        debug_assert!(false, "L2 victim slot vanished");
                        self.noc.offchip(MsgClass::MemWrite);
                        self.oracle.write_memory(line, slot.version);
                        Li::Mem
                    }
                }
            }
            Li::Mem | Li::Invalid => {
                self.noc.offchip(MsgClass::MemWrite);
                self.oracle.write_memory(line, slot.version);
                Li::Mem
            }
            other => {
                debug_assert!(false, "master RP must be a victim location, got {other:?}");
                self.noc.offchip(MsgClass::MemWrite);
                self.oracle.write_memory(line, slot.version);
                Li::Mem
            }
        };

        if let Some(md) = md {
            self.li_set(node, md, off, victim);
        }

        if private || quiet {
            if !quiet {
                self.ev.e_evict_private += 1;
            }
            // Private regions: no other node can reference us; done.
            return Ok(());
        }

        // Case F: shared region — repoint everyone tracking Node(self).
        self.ev.f_evict_shared += 1;
        self.noc.send(MsgClass::EvictReq, me, Endpoint::FarSide);
        self.ctr.md3_accesses += 1;
        self.energy.record(EnergyEvent::Md3, 1);
        self.lockbits.acquire(region);
        let (mask, _md3_fixed) = self.retarget(line, Li::Node(NodeId::new(node as u8)), victim);
        for t in 0..self.cfg.nodes {
            if t == node || mask & (1 << t) == 0 {
                continue;
            }
            self.noc.send(
                MsgClass::NewMaster,
                Endpoint::FarSide,
                Endpoint::Node(NodeId::new(t as u8)),
            );
            self.noc
                .send(MsgClass::Ack, Endpoint::Node(NodeId::new(t as u8)), me);
        }
        self.noc.send(MsgClass::Done, me, Endpoint::FarSide);
        Ok(())
    }

    /// Evicts one LLC slot (replacement): masters fall back to memory with a
    /// NewMaster/RpFix fan-out to whoever pointed here; stale victims fix
    /// their master's RP; replicas fix their owner's chain.
    pub(crate) fn evict_llc_slot(&mut self, slice: usize, set: usize, way: usize) {
        let Some((key, slot)) = self.llc.remove(slice, set, way) else {
            return;
        };
        self.pressure[slice] += 1;
        let line = LineAddr::new(key);
        let from = self.li_of_llc(slice, way);
        let to = if slot.master {
            if slot.dirty {
                self.noc.offchip(MsgClass::MemWrite);
                self.oracle.write_memory(line, slot.version);
            }
            Li::Mem
        } else if slot.stale {
            // The owner's master keeps its data; its victim just moved to
            // memory.
            Li::Mem
        } else {
            // NS replica: chains fall back to the true master.
            slot.rp
        };
        let (mask, md3_fixed) = self.retarget(line, from, to);
        // Update messages to remote trackers (slice-local fixes are free).
        let class = if slot.master {
            MsgClass::NewMaster
        } else {
            MsgClass::RpFix
        };
        let slice_ep = self.llc_endpoint(slice);
        for t in 0..self.cfg.nodes {
            if mask & (1 << t) == 0 {
                continue;
            }
            self.noc
                .send(class, slice_ep, Endpoint::Node(NodeId::new(t as u8)));
        }
        if md3_fixed && slice_ep != Endpoint::FarSide {
            self.noc.send(class, slice_ep, Endpoint::FarSide);
        }
    }

    /// Evicts a node's MD2 entry: metadata inclusion forces out every line
    /// the region tracks inside the node, then the final LIs spill to MD3
    /// and the node's PB bit clears.
    pub(crate) fn evict_md2_entry(
        &mut self,
        node: usize,
        set: usize,
        way: usize,
        notify: bool,
    ) -> Result<(), ProtocolError> {
        let Some((key, entry)) = self.md2.at(node, set, way).map(|(k, e)| (k, *e)) else {
            return Ok(());
        };
        let region = RegionAddr::new(key);
        self.ctr.md2_evictions += 1;

        // Fold the active MD1 entry (if any) back in, so the resident MD2
        // entry is authoritative during the forced evictions.
        if let Some(tp) = entry.tp {
            let arr = match tp.side {
                Md1Side::Instruction => &mut self.md1i,
                Md1Side::Data => &mut self.md1d,
            };
            let (_, e1) = arr
                .remove(node, tp.set as usize, tp.way as usize)
                .expect("TP names a live MD1 entry");
            let (_, e2) = self.md2.at_mut(node, set, way).expect("occupied");
            e2.li = e1.li;
            e2.private = e1.private;
            e2.tp = None;
        }

        // Forced eviction of node-resident lines (and local-slice replicas).
        // An eviction can re-point the LI at another node-resident location
        // (e.g. L1 replica → local slice replica), so iterate per line until
        // the LI stabilizes on a global location.
        let is_i = self.region_is_icache(node, region);
        let enc = self.enc;
        for off in 0..LINES_PER_REGION {
            let line = region.line(crate::meta_line_offset(off));
            for _ in 0..4 {
                let li = self
                    .md2
                    .at(node, set, way)
                    .map(|(_, e)| e.li.get(off, enc))
                    .expect("occupied");
                match li {
                    Li::L1 { way: lway } => {
                        let kind = if is_i { ArrKind::L1I } else { ArrKind::L1D };
                        let lset = self.l1_set(line);
                        self.evict_data_line(node, kind, lset, lway as usize, !notify)?;
                    }
                    Li::L2 { way: lway } if self.feats.private_l2 => {
                        let lset = self.l2_set(line);
                        self.evict_data_line(node, ArrKind::L2, lset, lway as usize, !notify)?;
                    }
                    Li::LlcNs { node: n, way: lway }
                        if n.index() == node && self.feats.near_side =>
                    {
                        let lset = self.llc_set(line, node);
                        let is_replica = self
                            .llc
                            .at(node, lset, lway as usize)
                            .is_some_and(|(k, dl)| k == line.raw() && !dl.master && !dl.stale);
                        if !is_replica {
                            break; // a master/victim slot in our slice may stay
                        }
                        let rp = self
                            .llc
                            .at(node, lset, lway as usize)
                            .map(|(_, dl)| dl.rp)
                            .expect("occupied");
                        self.llc.remove(node, lset, lway as usize);
                        let (_, e2) = self.md2.at_mut(node, set, way).expect("occupied");
                        e2.li.set(off, rp, enc);
                    }
                    _ => break,
                }
            }
        }

        let final_li = self
            .md2
            .at(node, set, way)
            .map(|(_, e)| e.li)
            .expect("occupied");
        self.md2.remove(node, set, way);

        if notify {
            self.noc.send(
                MsgClass::Md2Spill,
                Endpoint::Node(NodeId::new(node as u8)),
                Endpoint::FarSide,
            );
            self.energy.record(EnergyEvent::Md3, 1);
            let set3 = self.md3.set_index(region.raw());
            if let Some(way3) = self.md3.way_of(set3, region.raw()) {
                let (_, e3) = self.md3.at_mut(set3, way3).expect("occupied");
                e3.pb &= !(1 << node);
                // If we were the private owner, MD3's LIs were invalid: our
                // final LIs (all global now) re-seed them.
                if e3.li.all_invalid() {
                    debug_assert!(
                        final_li.node_local_mask() == 0,
                        "spill must upload only global LIs: {final_li:?}"
                    );
                    e3.li = final_li;
                }
            }
        }
        Ok(())
    }

    /// Evicts one MD3 entry: a global purge of the region (every PB node's
    /// MD2 entry plus all LLC-resident lines go; dirty data drains to
    /// memory).
    pub(crate) fn evict_md3_entry(
        &mut self,
        set3: usize,
        way3: usize,
    ) -> Result<(), ProtocolError> {
        let Some((key, entry)) = self.md3.at(set3, way3).map(|(k, e)| (k, *e)) else {
            return Ok(());
        };
        let region = RegionAddr::new(key);
        self.ctr.md3_evictions += 1;

        for t in entry.pb_nodes().map(|n| n.index()) {
            self.noc.send(
                MsgClass::Inv,
                Endpoint::FarSide,
                Endpoint::Node(NodeId::new(t as u8)),
            );
            self.ctr.invalidations_received += 1;
            let md2 = &self.md2;
            let s2 = md2.set_index(region.raw());
            if let Some(w2) = md2.way_of(t, s2, region.raw()) {
                self.evict_md2_entry(t, s2, w2, false)?;
            }
            self.noc.send(
                MsgClass::Ack,
                Endpoint::Node(NodeId::new(t as u8)),
                Endpoint::FarSide,
            );
        }

        // Sweep the region's lines out of every LLC slice.
        for slice in 0..self.llc.banks() {
            for line in region.lines() {
                let set = self.llc_set(line, slice);
                if let Some(way) = self.llc.way_of(slice, set, line.raw()) {
                    let (_, dl) = self.llc.at(slice, set, way).expect("occupied");
                    if dl.master && dl.dirty {
                        self.noc.offchip(MsgClass::MemWrite);
                        self.oracle.write_memory(line, dl.version);
                    }
                    self.llc.remove(slice, set, way);
                }
            }
        }
        self.md3.remove(set3, way3);
        Ok(())
    }

    /// Bumps the bypass predictor's fill counter for `region` at `node`;
    /// returns the current streaming prediction.
    fn note_region_fill(&mut self, node: usize, region: RegionAddr) -> bool {
        let md2 = &mut self.md2;
        let set = md2.set_index(region.raw());
        let Some(way) = md2.way_of(node, set, region.raw()) else {
            return false;
        };
        let (_, e) = md2.at_mut(node, set, way).expect("occupied");
        let streaming = e.predicts_streaming();
        e.fills = e.fills.saturating_add(1);
        streaming
    }

    /// Records an LLC-level reuse hit for the bypass predictor.
    fn note_region_reuse(&mut self, node: usize, region: RegionAddr) {
        if !self.feats.bypass {
            return;
        }
        let md2 = &mut self.md2;
        let set = md2.set_index(region.raw());
        if let Some(way) = md2.way_of(node, set, region.raw()) {
            let (_, e) = md2.at_mut(node, set, way).expect("occupied");
            e.reuse = e.reuse.saturating_add(1);
        }
    }
}
