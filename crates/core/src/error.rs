//! Typed protocol errors.
//!
//! A corrupted location pointer (LI) used to abort the whole process via
//! `panic!`; transactions now propagate a [`ProtocolError`] instead, so a
//! single bad cell fails its sweep cell (reported in the sweep result) while
//! the rest of a multi-hour sweep keeps running.

use crate::li::Li;

/// A protocol-level failure on the transaction path, caused by metadata
/// state that violates the deterministic-LI invariants beyond what the
/// soft-fallback paths (`determinism_errors`) can absorb.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolError {
    /// An LI that should name an LLC slot named something else entirely.
    NotAnLlcLocation {
        /// The offending location pointer.
        li: Li,
    },
    /// An LLC LI whose slice or way index is outside the configured
    /// geometry (e.g. a near-side pointer on a far-side system).
    LlcSlotOutOfRange {
        /// The offending location pointer.
        li: Li,
        /// Number of LLC slices in this system.
        slices: usize,
        /// Ways per LLC set in this system.
        ways: usize,
    },
    /// An LI of a class that cannot occur where it was found.
    UnexpectedLi {
        /// The offending location pointer.
        li: Li,
        /// Where it was found.
        context: &'static str,
    },
    /// Region metadata in a state the protocol cannot act on.
    CorruptMetadata {
        /// What was corrupt.
        context: &'static str,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::NotAnLlcLocation { li } => {
                write!(f, "{li:?} is not an LLC location")
            }
            ProtocolError::LlcSlotOutOfRange { li, slices, ways } => write!(
                f,
                "{li:?} is outside the LLC geometry ({slices} slices x {ways} ways)"
            ),
            ProtocolError::UnexpectedLi { li, context } => {
                write!(f, "unexpected LI {li:?}: {context}")
            }
            ProtocolError::CorruptMetadata { context } => {
                write!(f, "corrupt metadata: {context}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = ProtocolError::NotAnLlcLocation { li: Li::Mem };
        assert!(e.to_string().contains("Mem"));
        let e = ProtocolError::LlcSlotOutOfRange {
            li: Li::LlcFs { way: 40 },
            slices: 1,
            ways: 32,
        };
        let s = e.to_string();
        assert!(s.contains("1 slices") && s.contains("32 ways"), "{s}");
    }
}
