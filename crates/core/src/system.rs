//! The D2M system: state, construction, addressing helpers and accessors.
//!
//! The protocol flows (reads, writes, evictions, MD3 transactions) live in
//! [`crate::protocol`]; the whole-system invariant checker in
//! [`crate::invariants`].
//!
//! # Storage layout
//!
//! Every per-node structure (the MD1s, the L1 arrays, the MD2s, the LLC
//! slices) is stored as ONE contiguous [`Banked`] arena with one bank per
//! node/slice, addressed by `(bank, set, way)` arithmetic — there is no
//! per-node struct and no `Vec<Vec<...>>` nesting on the transaction hot
//! path. Each bank keeps its own LRU clock, so the arena makes exactly the
//! same replacement decisions as independent per-node arrays (simulation
//! output is byte-identical to the previous layout). MD3 is a single global
//! structure and stays a flat [`SetAssoc`] (itself one contiguous arena).

use d2m_cache::scramble::{region_scramble, scrambled_index};
use d2m_cache::{Banked, SetAssoc, Tlb};
use d2m_common::addr::{LineAddr, NodeId, RegionAddr};
use d2m_common::config::MachineConfig;
use d2m_common::oracle::VersionOracle;
use d2m_common::rng::SimRng;
use d2m_common::stats::Counters;
use d2m_energy::{EnergyAccount, EnergyModel};
use d2m_noc::{Endpoint, Noc};

use crate::counters::{D2mCounters, ProtocolEvents};
use crate::data::DataLine;
use crate::error::ProtocolError;
use crate::li::{Li, LiEncoding};
use crate::lockbits::LockBits;
use crate::meta::{Md1Entry, Md2Entry, Md3Entry};

/// The three evaluated D2M configurations (paper §V-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum D2mVariant {
    /// L1 caches + far-side LLC.
    FarSide,
    /// L1 caches + near-side LLC slices with the pressure placement policy.
    NearSide,
    /// D2M-NS plus replication heuristics and dynamic indexing.
    NearSideRepl,
}

impl D2mVariant {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            D2mVariant::FarSide => "D2M-FS",
            D2mVariant::NearSide => "D2M-NS",
            D2mVariant::NearSideRepl => "D2M-NS-R",
        }
    }

    /// Feature set implied by the variant.
    pub fn features(self) -> D2mFeatures {
        match self {
            D2mVariant::FarSide => D2mFeatures {
                near_side: false,
                replication: false,
                dynamic_indexing: false,
                bypass: false,
                private_l2: false,
                traditional_l1: false,
            },
            D2mVariant::NearSide => D2mFeatures {
                near_side: true,
                replication: false,
                dynamic_indexing: false,
                bypass: false,
                private_l2: false,
                traditional_l1: false,
            },
            D2mVariant::NearSideRepl => D2mFeatures {
                near_side: true,
                replication: true,
                dynamic_indexing: true,
                bypass: false,
                private_l2: false,
                traditional_l1: false,
            },
        }
    }
}

/// Individually-toggleable D2M features (ablation hooks).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct D2mFeatures {
    /// LLC slices on the core side of the interconnect (§IV-B).
    pub near_side: bool,
    /// Replicate instructions / remote-MRU data into the local slice (§IV-C).
    pub replication: bool,
    /// Per-region scrambled cache indices (§IV-D).
    pub dynamic_indexing: bool,
    /// Region-predictor cache bypassing (paper §I's optimization list):
    /// streaming regions skip LLC allocation on memory fills. Off in the
    /// paper's evaluated variants; exposed for the bypass ablation.
    pub bypass: bool,
    /// Unified private L2 per node, used as a victim cache for L1 evictions
    /// (Figure 2's generic architecture; the evaluated variants are L2-less
    /// per Figure 4, and NS slices take the L2's place — so this is only
    /// valid with the far-side LLC).
    pub private_l2: bool,
    /// Traditional front end (paper §III-A): an unmodified core with a TLB
    /// and a *tagged* L1 sits in front of the D2M metadata hierarchy. The
    /// node pays TLB + tag energy on every access and consults MD2 directly
    /// on misses (no MD1); everything from MD2 down is unchanged. Models the
    /// claim that such a system "achieves most of the reported D2M
    /// advantages".
    pub traditional_l1: bool,
}

/// Which data array a node-resident line lives in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ArrKind {
    L1I,
    L1D,
    /// Unified private L2 (optional; Figure 2's generic architecture).
    L2,
}

/// A resolved reference to the active metadata entry for a region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum MdRef {
    Md1 { is_i: bool, set: usize, way: usize },
    Md2 { set: usize, way: usize },
}

/// The Direct-to-Master split cache hierarchy.
///
/// See the crate docs for the architecture; see `DESIGN.md` for how this
/// reproduction maps onto the paper.
pub struct D2mSystem {
    pub(crate) cfg: MachineConfig,
    pub(crate) feats: D2mFeatures,
    variant: D2mVariant,
    pub(crate) enc: LiEncoding,
    /// Instruction-side MD1s: one bank per node.
    pub(crate) md1i: Banked<Md1Entry>,
    /// Data-side MD1s: one bank per node.
    pub(crate) md1d: Banked<Md1Entry>,
    /// MD2s: one bank per node.
    pub(crate) md2: Banked<Md2Entry>,
    pub(crate) tlb2: Vec<Tlb>,
    /// L1 instruction data arrays: one bank per node.
    pub(crate) l1i: Banked<DataLine>,
    /// L1 data arrays: one bank per node.
    pub(crate) l1d: Banked<DataLine>,
    /// Optional unified private L2s: one bank per node.
    pub(crate) l2: Option<Banked<DataLine>>,
    /// LLC data arrays: a single bank (index 0) for far-side, one bank per
    /// node for near-side.
    pub(crate) llc: Banked<DataLine>,
    pub(crate) md3: SetAssoc<Md3Entry>,
    pub(crate) lockbits: LockBits,
    pub(crate) noc: Noc,
    pub(crate) energy: EnergyAccount,
    pub(crate) oracle: VersionOracle,
    pub(crate) rng: SimRng,
    pub(crate) ctr: D2mCounters,
    pub(crate) ev: ProtocolEvents,
    /// Replacements per slice in the current pressure window (§IV-B).
    pub(crate) pressure: Vec<u64>,
    /// Snapshot the placement policy actually consults.
    pub(crate) pressure_last: Vec<u64>,
    pub(crate) window_accesses: u64,
    /// Reusable scratch for the case-C prune-candidate list, so the write
    /// hot path performs no per-access heap allocation.
    pub(crate) scratch_prune: Vec<usize>,
    scramble_salt: u64,
}

impl D2mSystem {
    /// Builds a D2M system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: &MachineConfig, variant: D2mVariant) -> Self {
        Self::with_features(cfg, variant, variant.features(), 0xd2a5)
    }

    /// Builds a D2M system with an explicit feature set (ablations) and
    /// policy seed.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn with_features(
        cfg: &MachineConfig,
        variant: D2mVariant,
        feats: D2mFeatures,
        seed: u64,
    ) -> Self {
        cfg.validate().expect("invalid machine config");
        assert!(
            !(feats.private_l2 && feats.near_side),
            "the private L2 replaces the NS slice (Figure 4); enable only one"
        );
        let n = cfg.nodes;
        let (llc, enc) = if feats.near_side {
            (
                Banked::new(n, cfg.ns_slice.sets, cfg.ns_slice.ways),
                LiEncoding::NearSide,
            )
        } else {
            (
                Banked::new(1, cfg.llc.sets, cfg.llc.ways),
                LiEncoding::FarSide,
            )
        };
        Self {
            cfg: cfg.clone(),
            feats,
            variant,
            enc,
            md1i: Banked::with_hashed_index(n, cfg.md1.sets, cfg.md1.ways),
            md1d: Banked::with_hashed_index(n, cfg.md1.sets, cfg.md1.ways),
            md2: Banked::with_hashed_index(n, cfg.md2.sets, cfg.md2.ways),
            tlb2: (0..n)
                .map(|_| Tlb::new(cfg.tlb.sets, cfg.tlb.ways))
                .collect(),
            l1i: Banked::new(n, cfg.l1i.sets, cfg.l1i.ways),
            l1d: Banked::new(n, cfg.l1d.sets, cfg.l1d.ways),
            l2: feats
                .private_l2
                .then(|| Banked::new(n, cfg.l2.sets, cfg.l2.ways)),
            llc,
            md3: SetAssoc::with_hashed_index(cfg.md3.sets, cfg.md3.ways),
            lockbits: LockBits::new(cfg.md3_lock_bits, 8),
            noc: Noc::new(cfg.lat.noc),
            energy: EnergyAccount::new(EnergyModel::default()),
            oracle: VersionOracle::new(),
            rng: SimRng::from_label(seed, "d2m/policy"),
            ctr: D2mCounters::default(),
            ev: ProtocolEvents::default(),
            pressure: vec![0; n],
            pressure_last: vec![0; n],
            window_accesses: 0,
            scratch_prune: Vec::with_capacity(n),
            scramble_salt: seed ^ 0x5c7a_3bbd,
        }
    }

    /// The configured variant.
    pub fn variant(&self) -> D2mVariant {
        self.variant
    }

    /// The active feature set.
    pub fn features(&self) -> D2mFeatures {
        self.feats
    }

    /// Interconnect accumulator.
    pub fn noc(&self) -> &Noc {
        &self.noc
    }

    /// Mutable interconnect accumulator (e.g. to enable traffic recording).
    pub fn noc_mut(&mut self) -> &mut Noc {
        &mut self.noc
    }

    /// Energy account (structure accesses; NoC/memory energy is derived from
    /// the [`Noc`] counters by the runner).
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    /// Mutable energy account (for the runner's leakage charge).
    pub fn energy_mut(&mut self) -> &mut EnergyAccount {
        &mut self.energy
    }

    /// Raw cache/metadata counters.
    pub fn raw_counters(&self) -> &D2mCounters {
        &self.ctr
    }

    /// Raw protocol-case (PKMO) counters.
    pub fn protocol_events(&self) -> &ProtocolEvents {
        &self.ev
    }

    /// Lock-bit collision model.
    pub fn lockbits(&self) -> &LockBits {
        &self.lockbits
    }

    /// Value-coherence violations observed (must stay zero).
    pub fn coherence_errors(&self) -> u64 {
        self.ctr.coherence_errors
    }

    /// Deterministic-LI violations observed (must stay zero).
    pub fn determinism_errors(&self) -> u64 {
        self.ctr.determinism_errors
    }

    /// Named counter snapshot (events + protocol cases + messages).
    pub fn counters(&self) -> Counters {
        let mut c = self.ctr.to_counters();
        c.merge_prefixed("", &self.ev.to_counters());
        c.merge_prefixed("noc.", &self.noc.counters());
        c.set("lockbits.acquisitions", self.lockbits.acquisitions());
        c.set("lockbits.collisions", self.lockbits.collisions());
        c
    }

    /// Total SRAM capacity in KB for leakage accounting. D2M has no L1 tags
    /// and no TLB1; it adds the MD arrays (~14 B per region entry: tag +
    /// 16 × 6-bit LI + bits) and keeps a TLB2 per node.
    pub fn sram_kb(&self) -> f64 {
        let n = self.cfg.nodes as f64;
        let l1 = (self.cfg.l1i.capacity_bytes() + self.cfg.l1d.capacity_bytes()) as f64;
        let md1 = (2 * self.cfg.md1.entries() * 14) as f64;
        let md2 = (self.cfg.md2.entries() * 14) as f64;
        let tlb2 = (self.cfg.tlb.entries() * 8) as f64;
        // Per-line TP/RP bits in the data arrays (~2 B per line).
        let line_meta = ((self.cfg.l1i.entries() + self.cfg.l1d.entries()) * 2) as f64;
        let l2 = if self.feats.private_l2 {
            (self.cfg.l2.capacity_bytes() + self.cfg.l2.entries() * 2) as f64
        } else {
            0.0
        };
        let llc = self.cfg.llc.capacity_bytes() as f64;
        let llc_meta = (self.cfg.llc.entries() * 2) as f64;
        let md3 = (self.cfg.md3.entries() * 15) as f64;
        (n * (l1 + md1 + md2 + tlb2 + line_meta + l2) + llc + llc_meta + md3) / 1024.0
    }

    /// Simulator-resident metadata footprint (entry sizes × configured
    /// capacities). This is what the region packing shrinks: each entry's
    /// LI array is two `u64` words instead of a 16-element enum array.
    pub fn metadata_footprint(&self) -> crate::meta::MetadataFootprint {
        let n = self.cfg.nodes as u64;
        crate::meta::MetadataFootprint {
            md1_bytes: 2
                * n
                * self.cfg.md1.entries() as u64
                * std::mem::size_of::<Md1Entry>() as u64,
            md2_bytes: n * self.cfg.md2.entries() as u64 * std::mem::size_of::<Md2Entry>() as u64,
            md3_bytes: self.cfg.md3.entries() as u64 * std::mem::size_of::<Md3Entry>() as u64,
        }
    }

    // ---------------- addressing helpers ----------------

    /// Per-region index scramble (0 when dynamic indexing is off).
    #[inline]
    pub(crate) fn scramble(&self, region: RegionAddr) -> u16 {
        if self.feats.dynamic_indexing {
            region_scramble(region.raw(), self.scramble_salt)
        } else {
            0
        }
    }

    /// L2 set index for a line (plain indexing, like the L1).
    #[inline]
    pub(crate) fn l2_set(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.cfg.l2.sets - 1)
    }

    /// L1 set index for a line.
    ///
    /// The L1 index is *not* scrambled: dense L1-resident working sets rely
    /// on the uniform placement of consecutive lines, and randomizing them
    /// costs more conflicts than it removes. Dynamic indexing (§IV-D)
    /// targets the LLC, where regular power-of-two strides pile thousands of
    /// lines onto a few sets — see [`Self::llc_set`].
    #[inline]
    pub(crate) fn l1_set(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.cfg.l1d.sets - 1)
    }

    /// LLC set index for a line within `slice`.
    #[inline]
    pub(crate) fn llc_set(&self, line: LineAddr, slice: usize) -> usize {
        let _ = slice; // all slices share one geometry in the banked arena
        scrambled_index(
            line.raw() as usize,
            self.scramble(line.region()),
            self.llc.sets(),
        )
    }

    /// Maps an LLC-pointing LI to `(slice, way)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::NotAnLlcLocation`] when `li` does not point
    /// at the LLC at all, and [`ProtocolError::LlcSlotOutOfRange`] when it
    /// names a slice or way outside this system's geometry (e.g. a
    /// near-side pointer leaked into a far-side system). Either means the
    /// metadata is corrupt; callers propagate the error so the transaction
    /// fails instead of aborting the process.
    pub(crate) fn llc_slice_way(&self, li: Li) -> Result<(usize, usize), ProtocolError> {
        let (slice, way) = match li {
            Li::LlcFs { way } => (0, way as usize),
            Li::LlcNs { node, way } => (node.index(), way as usize),
            _ => return Err(ProtocolError::NotAnLlcLocation { li }),
        };
        let slices = self.llc.banks();
        let ways = self.llc.ways();
        if slice >= slices || way >= ways {
            return Err(ProtocolError::LlcSlotOutOfRange { li, slices, ways });
        }
        Ok((slice, way))
    }

    /// The LI naming slot `(slice, way)` under the current encoding.
    pub(crate) fn li_of_llc(&self, slice: usize, way: usize) -> Li {
        match self.enc {
            LiEncoding::FarSide => Li::LlcFs { way: way as u8 },
            LiEncoding::NearSide => Li::LlcNs {
                node: NodeId::new(slice as u8),
                way: way as u8,
            },
        }
    }

    /// NoC endpoint of an LLC slice.
    pub(crate) fn llc_endpoint(&self, slice: usize) -> Endpoint {
        match self.enc {
            LiEncoding::FarSide => Endpoint::FarSide,
            LiEncoding::NearSide => Endpoint::Node(NodeId::new(slice as u8)),
        }
    }

    /// MD1 key: virtual region combined with the ASID (virtual tagging).
    /// The ASID occupies high bits so the region bits drive set selection.
    #[inline]
    pub(crate) fn md1_key(vregion: u64, asid: u16) -> u64 {
        vregion ^ ((asid as u64) << 50)
    }

    // ---------------- metadata resolution ----------------

    /// The active metadata reference for `region` at `node`, if the node
    /// tracks it. Pure resolution — no energy/latency accounting.
    pub(crate) fn find_active_md(&self, node: usize, region: RegionAddr) -> Option<MdRef> {
        let set = self.md2.set_index(region.raw());
        let way = self.md2.way_of(node, set, region.raw())?;
        let entry = self
            .md2
            .at(node, set, way)
            .map(|(_, e)| *e)
            .expect("occupied");
        Some(match entry.tp {
            Some(tp) => MdRef::Md1 {
                is_i: tp.side == crate::meta::Md1Side::Instruction,
                set: tp.set as usize,
                way: tp.way as usize,
            },
            None => MdRef::Md2 { set, way },
        })
    }

    /// Reads one LI through an [`MdRef`] (a branch-free shift/mask on the
    /// packed array).
    pub(crate) fn li_get(&self, node: usize, md: MdRef, off: usize) -> Li {
        match md {
            MdRef::Md1 { is_i, set, way } => {
                let arr = if is_i { &self.md1i } else { &self.md1d };
                arr.at(node, set, way)
                    .map(|(_, e)| e.li.get(off, self.enc))
                    .expect("active MD1 entry")
            }
            MdRef::Md2 { set, way } => self
                .md2
                .at(node, set, way)
                .map(|(_, e)| e.li.get(off, self.enc))
                .expect("active MD2 entry"),
        }
    }

    /// Writes one LI through an [`MdRef`].
    pub(crate) fn li_set(&mut self, node: usize, md: MdRef, off: usize, li: Li) {
        let enc = self.enc;
        match md {
            MdRef::Md1 { is_i, set, way } => {
                let arr = if is_i { &mut self.md1i } else { &mut self.md1d };
                let (_, e) = arr.at_mut(node, set, way).expect("active MD1 entry");
                e.li.set(off, li, enc);
            }
            MdRef::Md2 { set, way } => {
                let (_, e) = self.md2.at_mut(node, set, way).expect("active MD2 entry");
                e.li.set(off, li, enc);
            }
        }
    }

    /// Reads the region's private bit through an [`MdRef`].
    pub(crate) fn md_private(&self, node: usize, md: MdRef) -> bool {
        match md {
            MdRef::Md1 { is_i, set, way } => {
                let arr = if is_i { &self.md1i } else { &self.md1d };
                arr.at(node, set, way)
                    .map(|(_, e)| e.private)
                    .expect("active MD1 entry")
            }
            MdRef::Md2 { set, way } => self
                .md2
                .at(node, set, way)
                .map(|(_, e)| e.private)
                .expect("active MD2 entry"),
        }
    }

    /// Clears the private bit in both the MD2 entry and (if active) the MD1
    /// entry for `region` at `node`.
    pub(crate) fn clear_private(&mut self, node: usize, region: RegionAddr) {
        let set = self.md2.set_index(region.raw());
        let Some(way) = self.md2.way_of(node, set, region.raw()) else {
            return;
        };
        let (_, e) = self.md2.at_mut(node, set, way).expect("occupied");
        e.private = false;
        let tp = e.tp;
        if let Some(tp) = tp {
            let arr = match tp.side {
                crate::meta::Md1Side::Instruction => &mut self.md1i,
                crate::meta::Md1Side::Data => &mut self.md1d,
            };
            if let Some((_, e1)) = arr.at_mut(node, tp.set as usize, tp.way as usize) {
                e1.private = false;
            }
        }
    }

    /// The data arena for `kind`; index it with the node as the bank.
    pub(crate) fn arr(&self, kind: ArrKind) -> &Banked<DataLine> {
        match kind {
            ArrKind::L1I => &self.l1i,
            ArrKind::L1D => &self.l1d,
            ArrKind::L2 => self.l2.as_ref().expect("L2 feature enabled"),
        }
    }

    /// Mutable data arena for `kind`; index it with the node as the bank.
    pub(crate) fn arr_mut(&mut self, kind: ArrKind) -> &mut Banked<DataLine> {
        match kind {
            ArrKind::L1I => &mut self.l1i,
            ArrKind::L1D => &mut self.l1d,
            ArrKind::L2 => self.l2.as_mut().expect("L2 feature enabled"),
        }
    }

    /// Finds `line` anywhere in node `n`'s L1 arrays (simulation-side sweep;
    /// hardware walks tracking pointers).
    pub(crate) fn node_slot_of(
        &self,
        node: usize,
        line: LineAddr,
    ) -> Option<(ArrKind, usize, usize)> {
        let set = self.l1_set(line);
        for kind in [ArrKind::L1D, ArrKind::L1I] {
            if let Some(way) = self.arr(kind).way_of(node, set, line.raw()) {
                return Some((kind, set, way));
            }
        }
        if self.feats.private_l2 {
            let set2 = self.l2_set(line);
            if let Some(way) = self.arr(ArrKind::L2).way_of(node, set2, line.raw()) {
                return Some((ArrKind::L2, set2, way));
            }
        }
        None
    }

    /// Replaces every pointer to `from` for `line` with `to`: active MD LIs,
    /// data-line RPs, and the MD3 LI. Returns `(fixed_nodes_mask, md3_fixed)`
    /// so the caller can count the corresponding update messages.
    pub(crate) fn retarget(&mut self, line: LineAddr, from: Li, to: Li) -> (u8, bool) {
        debug_assert!(
            !matches!(from, Li::L1 { .. } | Li::L2 { .. }),
            "retarget is for global locations"
        );
        let region = line.region();
        let off = usize::from(line.region_offset());
        let mut mask = 0u8;
        for n in 0..self.cfg.nodes {
            let mut fixed = false;
            if let Some(md) = self.find_active_md(n, region) {
                if self.li_get(n, md, off) == from {
                    self.li_set(n, md, off, to);
                    fixed = true;
                }
            }
            if let Some((kind, set, way)) = self.node_slot_of(n, line) {
                let (_, dl) = self.arr_mut(kind).at_mut(n, set, way).expect("occupied");
                if dl.rp == from {
                    dl.rp = to;
                    fixed = true;
                }
            }
            // Replicas of `line` in n's local slice whose RP names `from`.
            if self.feats.near_side {
                let set = self.llc_set(line, n);
                if let Some(way) = self.llc.way_of(n, set, line.raw()) {
                    let (_, dl) = self.llc.at_mut(n, set, way).expect("occupied");
                    if dl.rp == from {
                        dl.rp = to;
                        fixed = true;
                    }
                }
            }
            if fixed {
                mask |= 1 << n;
            }
        }
        let mut md3_fixed = false;
        let enc = self.enc;
        let set3 = self.md3.set_index(region.raw());
        if let Some(way3) = self.md3.way_of(set3, region.raw()) {
            let (_, e3) = self.md3.at_mut(set3, way3).expect("occupied");
            if e3.li.get(off, enc) == from {
                e3.li.set(off, to, enc);
                md3_fixed = true;
            }
        }
        (mask, md3_fixed)
    }

    /// Rolls the NS pressure window (called once per access by the
    /// protocol): every `pressure_window × nodes` accesses the per-slice
    /// replacement counts are snapshotted and exchanged (§IV-B).
    pub(crate) fn tick_pressure_window(&mut self) {
        if !self.feats.near_side {
            return;
        }
        self.window_accesses += 1;
        let window = self.cfg.ns_policy.pressure_window * self.cfg.nodes as u64;
        if self.window_accesses >= window {
            self.window_accesses = 0;
            self.pressure_last.copy_from_slice(&self.pressure);
            self.pressure.iter_mut().for_each(|p| *p = 0);
            for n in 0..self.cfg.nodes {
                self.noc.send(
                    d2m_noc::MsgClass::Pressure,
                    Endpoint::Node(NodeId::new(n as u8)),
                    Endpoint::FarSide,
                );
            }
        }
    }

    /// Picks the NS slice for a new allocation by `node` (§IV-B policy).
    pub(crate) fn choose_ns_slice(&mut self, node: usize) -> usize {
        let local = self.pressure_last[node];
        let (remote_min_idx, remote_min) = self
            .pressure_last
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != node)
            .min_by_key(|(_, p)| **p)
            .map(|(i, p)| (i, *p))
            .unwrap_or((node, u64::MAX));
        if local <= remote_min {
            node
        } else {
            let pct = self.cfg.ns_policy.local_alloc_pct_under_pressure as f64 / 100.0;
            if self.rng.chance(pct) {
                node
            } else {
                remote_min_idx
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_matches_variant() {
        let cfg = MachineConfig::default();
        let fs = D2mSystem::new(&cfg, D2mVariant::FarSide);
        assert_eq!(fs.llc.banks(), 1);
        assert_eq!(fs.enc, LiEncoding::FarSide);
        let ns = D2mSystem::new(&cfg, D2mVariant::NearSide);
        assert_eq!(ns.llc.banks(), 8);
        assert!(!ns.features().replication);
        let nsr = D2mSystem::new(&cfg, D2mVariant::NearSideRepl);
        assert!(nsr.features().replication && nsr.features().dynamic_indexing);
    }

    #[test]
    fn llc_li_mapping_roundtrips() {
        let cfg = MachineConfig::default();
        let ns = D2mSystem::new(&cfg, D2mVariant::NearSide);
        let li = ns.li_of_llc(3, 2);
        assert_eq!(ns.llc_slice_way(li), Ok((3, 2)));
        let fs = D2mSystem::new(&cfg, D2mVariant::FarSide);
        let li = fs.li_of_llc(0, 17);
        assert_eq!(fs.llc_slice_way(li), Ok((0, 17)));
    }

    #[test]
    fn llc_slice_way_rejects_corrupt_lis() {
        let cfg = MachineConfig::default();
        let fs = D2mSystem::new(&cfg, D2mVariant::FarSide);
        assert_eq!(
            fs.llc_slice_way(Li::Mem),
            Err(ProtocolError::NotAnLlcLocation { li: Li::Mem })
        );
        // A near-side pointer on a far-side system indexes a slice that does
        // not exist — previously an out-of-bounds panic deep in the vec.
        let bad = Li::LlcNs {
            node: NodeId::new(5),
            way: 1,
        };
        assert!(matches!(
            fs.llc_slice_way(bad),
            Err(ProtocolError::LlcSlotOutOfRange { slices: 1, .. })
        ));
        // A way beyond the slice geometry is caught too.
        let ns = D2mSystem::new(&cfg, D2mVariant::NearSide);
        let wide = Li::LlcNs {
            node: NodeId::new(0),
            way: 63,
        };
        assert!(matches!(
            ns.llc_slice_way(wide),
            Err(ProtocolError::LlcSlotOutOfRange { .. })
        ));
    }

    #[test]
    fn scramble_only_when_dynamic_indexing() {
        let cfg = MachineConfig::default();
        let ns = D2mSystem::new(&cfg, D2mVariant::NearSide);
        assert_eq!(ns.scramble(RegionAddr::new(77)), 0);
        let nsr = D2mSystem::new(&cfg, D2mVariant::NearSideRepl);
        // Not a guarantee for every region, but this one scrambles.
        assert_ne!(nsr.scramble(RegionAddr::new(77)), 0);
    }

    #[test]
    fn ns_slice_choice_prefers_low_pressure() {
        let cfg = MachineConfig::default();
        let mut ns = D2mSystem::new(&cfg, D2mVariant::NearSide);
        // Equal pressure: always local.
        assert_eq!(ns.choose_ns_slice(2), 2);
        // Local under heavy pressure: mostly local (80%), sometimes the
        // least-pressured remote.
        ns.pressure_last = vec![0, 100, 900, 3, 50, 60, 70, 80];
        let picks: Vec<usize> = (0..200).map(|_| ns.choose_ns_slice(2)).collect();
        let local = picks.iter().filter(|p| **p == 2).count();
        assert!(local > 120 && local < 195, "local={local}");
        assert!(
            picks.iter().all(|p| *p == 2 || *p == 0),
            "remote must be argmin"
        );
    }

    #[test]
    fn sram_kb_is_cheaper_than_a_3l_server_baseline() {
        // Paper Figure 4: D2M-NS-R has Base-2L-like cost, far below Base-3L.
        let cfg = MachineConfig::default();
        let d2m = D2mSystem::new(&cfg, D2mVariant::NearSideRepl).sram_kb();
        let l2_total = (cfg.l2.capacity_bytes() * cfg.nodes) as f64 / 1024.0;
        let base3l_floor = (cfg.llc.capacity_bytes() as f64 / 1024.0) + l2_total;
        assert!(d2m < base3l_floor);
    }

    #[test]
    fn md1_key_separates_asids() {
        assert_ne!(D2mSystem::md1_key(10, 1), D2mSystem::md1_key(10, 2));
        assert_ne!(D2mSystem::md1_key(10, 0), D2mSystem::md1_key(11, 0));
    }
}
