//! Hardware-width packed region metadata: 16 six-bit LIs in two `u64`s.
//!
//! The paper's storage argument (§III-A) prices a region's metadata at
//! `PB(8) + 16×LI(6) = 104 bits`. [`PackedLiArray`] stores the LI portion at
//! exactly that density — eight 6-bit lanes per word, two words per region —
//! instead of a `[Li; 16]` enum array (~3 bytes per LI plus padding). Every
//! per-line access is a branch-free shift/mask using the Table I encoding
//! from [`Li::pack`]/[`Li::unpack`], and the bulk queries the replacement,
//! prune, and invariant paths need (resident-line counts, validity tests)
//! are SWAR bit tricks over the two words rather than 16-iteration enum
//! scans.
//!
//! Lane values are whatever [`Li::pack`] produces, so [`Self::set`] always
//! stores the canonical `INVALID` symbol (`0b011_001`); the SWAR predicates
//! nevertheless classify the six reserved symbols (`0b011_010..=0b011_111`)
//! as invalid, exactly like [`Li::unpack`], so raw injection via
//! [`Self::set_raw`] (corruption tests) behaves identically to the old enum
//! arrays.

use d2m_common::addr::LINES_PER_REGION;

use crate::li::{Li, LiEncoding};

/// Bits per LI lane (Table I).
const LANE_BITS: usize = 6;
/// Lanes stored per `u64` word. Only `8 × 6 = 48` bits of each word are
/// used; the top 16 bits stay zero.
const LANES_PER_WORD: usize = 8;
/// Bit 0 of every lane: bits 0, 6, 12, …, 42.
const LANE_LSB: u64 = 0x0000_0410_4104_1041;
/// The canonical packed encoding of [`Li::Invalid`] (`0b011_001`).
const INVALID_BITS: u64 = 0b011_001;
/// The packed encoding of [`Li::Mem`] (`0b011_000`), identical under both
/// encodings.
const MEM_BITS: u64 = 0b011_000;

/// A region's 16 location-information entries, bit-packed at the paper's
/// hardware width (96 bits in two words).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedLiArray {
    /// Lines 0..8 in `words[0]`, lines 8..16 in `words[1]`, 6 bits each.
    words: [u64; 2],
}

impl PackedLiArray {
    /// All 16 lanes [`Li::Invalid`] (the MD3 "private region" state).
    pub const INVALID: Self = Self {
        words: [INVALID_BITS * LANE_LSB; 2],
    };

    /// All 16 lanes [`Li::Mem`] (the fresh-region state handed out by a D4
    /// MD3 allocation).
    pub const MEM: Self = Self {
        words: [MEM_BITS * LANE_LSB; 2],
    };

    /// An array with every lane set to `li`.
    ///
    /// # Panics
    ///
    /// Panics if `li` is not representable under `enc` (see [`Li::pack`]).
    pub fn filled(li: Li, enc: LiEncoding) -> Self {
        let bits = li.pack(enc).expect("LI representable under the encoding") as u64;
        Self {
            words: [bits * LANE_LSB; 2],
        }
    }

    /// Builds from a plain enum array.
    ///
    /// # Panics
    ///
    /// Panics if any element is not representable under `enc`.
    pub fn from_array(lis: &[Li; LINES_PER_REGION], enc: LiEncoding) -> Self {
        let mut out = Self::INVALID;
        for (off, li) in lis.iter().enumerate() {
            out.set(off, *li, enc);
        }
        out
    }

    /// Expands to a plain enum array (checking/debug paths).
    pub fn to_array(&self, enc: LiEncoding) -> [Li; LINES_PER_REGION] {
        let mut out = [Li::Invalid; LINES_PER_REGION];
        for (off, slot) in out.iter_mut().enumerate() {
            *slot = self.get(off, enc);
        }
        out
    }

    /// The raw 6-bit lane for line `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off >= 16`.
    #[inline]
    pub fn get_raw(&self, off: usize) -> u8 {
        assert!(off < LINES_PER_REGION, "line offset {off} out of range");
        let w = self.words[off / LANES_PER_WORD];
        ((w >> ((off % LANES_PER_WORD) * LANE_BITS)) & 0x3f) as u8
    }

    /// Overwrites the raw 6-bit lane for line `off` (corruption injection in
    /// tests; [`Self::set`] is the typed path).
    ///
    /// # Panics
    ///
    /// Panics if `off >= 16` or `bits >= 64`.
    #[inline]
    pub fn set_raw(&mut self, off: usize, bits: u8) {
        assert!(off < LINES_PER_REGION, "line offset {off} out of range");
        assert!(bits < 64, "LI is a 6-bit field");
        let w = &mut self.words[off / LANES_PER_WORD];
        let sh = (off % LANES_PER_WORD) * LANE_BITS;
        *w = (*w & !(0x3f << sh)) | ((bits as u64) << sh);
    }

    /// The LI for line `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off >= 16`.
    #[inline]
    pub fn get(&self, off: usize, enc: LiEncoding) -> Li {
        Li::unpack(self.get_raw(off), enc)
    }

    /// Stores the LI for line `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off >= 16` or `li` is not representable under `enc`
    /// (a way index out of field range, or an LLC variant of the other
    /// encoding — states the enum array could hold but the 6-bit hardware
    /// field cannot).
    #[inline]
    pub fn set(&mut self, off: usize, li: Li, enc: LiEncoding) {
        let bits = li.pack(enc).expect("LI representable under the encoding");
        self.set_raw(off, bits);
    }

    /// Whether line `off`'s LI is valid (not [`Li::Invalid`], including the
    /// reserved symbols that decode as invalid).
    ///
    /// # Panics
    ///
    /// Panics if `off >= 16`.
    #[inline]
    pub fn is_valid(&self, off: usize) -> bool {
        let v = self.get_raw(off);
        !(0b011_001..0b100_000).contains(&v)
    }

    /// Bit 0 of each lane set iff the lane's top three bits are `001` or
    /// `010` (L1/L2 — node-local).
    #[inline]
    fn lanes_node_local(w: u64) -> u64 {
        ((w >> 3) ^ (w >> 4)) & !(w >> 5) & LANE_LSB
    }

    /// Bit 0 of each lane set iff the lane's top bit is set (an LLC way).
    #[inline]
    fn lanes_llc(w: u64) -> u64 {
        (w >> 5) & LANE_LSB
    }

    /// Bit 0 of each lane set iff the lane decodes as [`Li::Invalid`]:
    /// `011SSS` with `SSS != 0` (the canonical symbol and the six reserved
    /// ones).
    #[inline]
    fn lanes_invalid(w: u64) -> u64 {
        let low = w | (w >> 1) | (w >> 2);
        !(w >> 5) & (w >> 4) & (w >> 3) & low & LANE_LSB
    }

    /// Compresses per-lane LSB flags (stride 6) into a contiguous 8-bit
    /// mask.
    #[inline]
    fn gather(mut lanes: u64) -> u16 {
        let mut m = 0u16;
        for k in 0..LANES_PER_WORD {
            m |= ((lanes & 1) as u16) << k;
            lanes >>= LANE_BITS;
        }
        m
    }

    /// Number of lines resident in the node (L1 or L2) — the MD2
    /// region-aware replacement cost, as two SWAR popcounts.
    #[inline]
    pub fn count_node_local(&self) -> u32 {
        Self::lanes_node_local(self.words[0]).count_ones()
            + Self::lanes_node_local(self.words[1]).count_ones()
    }

    /// Number of lines pointing into the LLC — the MD3 replacement cost.
    #[inline]
    pub fn count_llc_resident(&self) -> u32 {
        Self::lanes_llc(self.words[0]).count_ones() + Self::lanes_llc(self.words[1]).count_ones()
    }

    /// Number of valid lines.
    #[inline]
    pub fn count_valid(&self) -> u32 {
        LINES_PER_REGION as u32
            - Self::lanes_invalid(self.words[0]).count_ones()
            - Self::lanes_invalid(self.words[1]).count_ones()
    }

    /// True if every lane is invalid (an MD3 entry for a private region).
    #[inline]
    pub fn all_invalid(&self) -> bool {
        Self::lanes_invalid(self.words[0]) == LANE_LSB
            && Self::lanes_invalid(self.words[1]) == LANE_LSB
    }

    /// True if any lane is valid.
    #[inline]
    pub fn any_valid(&self) -> bool {
        !self.all_invalid()
    }

    /// Bit `n` set iff line `n`'s LI is valid.
    #[inline]
    pub fn valid_mask(&self) -> u16 {
        !(Self::gather(Self::lanes_invalid(self.words[0]))
            | (Self::gather(Self::lanes_invalid(self.words[1])) << 8))
    }

    /// Bit `n` set iff line `n` is node-local (L1/L2).
    #[inline]
    pub fn node_local_mask(&self) -> u16 {
        Self::gather(Self::lanes_node_local(self.words[0]))
            | (Self::gather(Self::lanes_node_local(self.words[1])) << 8)
    }

    /// The two backing words (tests, size accounting).
    #[inline]
    pub fn raw_words(&self) -> [u64; 2] {
        self.words
    }
}

impl Default for PackedLiArray {
    fn default() -> Self {
        Self::INVALID
    }
}

impl std::fmt::Debug for PackedLiArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Raw lanes: encoding-independent, and unambiguous for corrupt
        // patterns.
        write!(f, "PackedLiArray[")?;
        for off in 0..LINES_PER_REGION {
            if off > 0 {
                write!(f, " ")?;
            }
            write!(f, "{:02x}", self.get_raw(off))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2m_common::addr::NodeId;
    use d2m_common::rng::SimRng;

    const ENCODINGS: [LiEncoding; 2] = [LiEncoding::FarSide, LiEncoding::NearSide];

    #[test]
    fn constants_match_per_lane_packing() {
        for off in 0..LINES_PER_REGION {
            assert_eq!(
                PackedLiArray::INVALID.get(off, LiEncoding::FarSide),
                Li::Invalid
            );
            assert_eq!(PackedLiArray::MEM.get(off, LiEncoding::NearSide), Li::Mem);
        }
        assert!(PackedLiArray::INVALID.all_invalid());
        assert!(!PackedLiArray::INVALID.any_valid());
        assert!(PackedLiArray::MEM.any_valid());
        assert_eq!(PackedLiArray::MEM.valid_mask(), 0xffff);
        assert_eq!(PackedLiArray::default(), PackedLiArray::INVALID);
    }

    /// Satellite requirement: every one of the 64 six-bit patterns, under
    /// both encodings, must survive a `set`/`get` round trip at the `Li`
    /// level and a `set_raw`/`get` trip at the decode level, at every line
    /// offset.
    #[test]
    fn exhaustive_six_bit_round_trip() {
        for enc in ENCODINGS {
            for bits in 0u8..64 {
                let li = Li::unpack(bits, enc);
                for off in 0..LINES_PER_REGION {
                    let mut arr = PackedLiArray::MEM;
                    arr.set(off, li, enc);
                    assert_eq!(arr.get(off, enc), li, "bits {bits:#08b} off {off}");
                    // Canonical re-pack: reserved symbols collapse to the
                    // canonical Invalid lane, everything else is identity.
                    assert_eq!(arr.get_raw(off), li.pack(enc).unwrap());

                    // Raw injection must decode exactly like Li::unpack.
                    let mut raw = PackedLiArray::INVALID;
                    raw.set_raw(off, bits);
                    assert_eq!(raw.get_raw(off), bits);
                    assert_eq!(raw.get(off, enc), li);
                    assert_eq!(raw.is_valid(off), li.is_valid());
                    // Neighbours are untouched.
                    for other in (0..LINES_PER_REGION).filter(|o| *o != off) {
                        assert_eq!(raw.get(other, enc), Li::Invalid);
                    }
                }
            }
        }
    }

    /// Every representable LI value for `enc` (mirrors `li.rs`'s exhaustive
    /// test helper).
    fn all_lis(enc: LiEncoding) -> Vec<Li> {
        let mut lis = Vec::new();
        lis.extend((0u8..8).map(|n| Li::Node(NodeId::new(n))));
        lis.extend((0u8..8).map(|way| Li::L1 { way }));
        lis.extend((0u8..8).map(|way| Li::L2 { way }));
        lis.push(Li::Mem);
        lis.push(Li::Invalid);
        match enc {
            LiEncoding::FarSide => lis.extend((0u8..32).map(|way| Li::LlcFs { way })),
            LiEncoding::NearSide => {
                for n in 0u8..8 {
                    for way in 0u8..4 {
                        lis.push(Li::LlcNs {
                            node: NodeId::new(n),
                            way,
                        });
                    }
                }
            }
        }
        lis
    }

    /// Satellite requirement: a seeded randomized mutation/query sequence
    /// driven in lockstep against a reference `[Li; 16]`, same pattern as
    /// the `Banked` vs `SetAssoc` equivalence test from the arena PR.
    #[test]
    fn randomized_equivalence_with_enum_array() {
        for enc in ENCODINGS {
            let lis = all_lis(enc);
            let mut rng = SimRng::from_label(0xd2a5, "packed-li-equiv");
            let mut packed = PackedLiArray::INVALID;
            let mut reference = [Li::Invalid; LINES_PER_REGION];
            for step in 0..20_000u32 {
                let off = rng.below(LINES_PER_REGION as u64) as usize;
                match rng.below(4) {
                    0 | 1 => {
                        let li = lis[rng.below(lis.len() as u64) as usize];
                        packed.set(off, li, enc);
                        reference[off] = li;
                    }
                    2 => {
                        packed.set(off, Li::Invalid, enc);
                        reference[off] = Li::Invalid;
                    }
                    _ => {
                        let bits = rng.below(64) as u8;
                        packed.set_raw(off, bits);
                        reference[off] = Li::unpack(bits, enc);
                    }
                }
                // Point queries.
                assert_eq!(packed.get(off, enc), reference[off], "step {step}");
                // Bulk queries must match the enum-array scans they replace.
                assert_eq!(
                    packed.count_node_local() as usize,
                    reference.iter().filter(|l| l.is_node_local()).count(),
                    "step {step}"
                );
                assert_eq!(
                    packed.count_llc_resident() as usize,
                    reference.iter().filter(|l| l.is_llc()).count(),
                    "step {step}"
                );
                assert_eq!(
                    packed.count_valid() as usize,
                    reference.iter().filter(|l| l.is_valid()).count(),
                    "step {step}"
                );
                assert_eq!(
                    packed.any_valid(),
                    reference.iter().any(|l| l.is_valid()),
                    "step {step}"
                );
                assert_eq!(
                    packed.all_invalid(),
                    reference.iter().all(|l| !l.is_valid()),
                    "step {step}"
                );
                let want_valid: u16 = reference
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.is_valid())
                    .map(|(i, _)| 1u16 << i)
                    .sum();
                assert_eq!(packed.valid_mask(), want_valid, "step {step}");
                let want_local: u16 = reference
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.is_node_local())
                    .map(|(i, _)| 1u16 << i)
                    .sum();
                assert_eq!(packed.node_local_mask(), want_local, "step {step}");
            }
            // Full-array conversions agree at the end of the run.
            assert_eq!(packed.to_array(enc), reference);
            assert_eq!(
                PackedLiArray::from_array(&packed.to_array(enc), enc),
                packed
            );
        }
    }

    #[test]
    fn packed_array_is_two_words() {
        // The §III-A storage claim, enforced: 16 LIs live in 128 bits.
        assert_eq!(std::mem::size_of::<PackedLiArray>(), 16);
    }

    #[test]
    #[should_panic(expected = "line offset")]
    fn get_raw_rejects_out_of_range_offset() {
        let _ = PackedLiArray::INVALID.get_raw(16);
    }

    #[test]
    #[should_panic(expected = "6-bit")]
    fn set_raw_rejects_wide_bits() {
        let mut arr = PackedLiArray::INVALID;
        arr.set_raw(0, 64);
    }

    #[test]
    #[should_panic(expected = "representable")]
    fn set_rejects_wrong_encoding() {
        let mut arr = PackedLiArray::INVALID;
        arr.set(0, Li::LlcFs { way: 0 }, LiEncoding::NearSide);
    }
}
