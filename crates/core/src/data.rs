//! Tag-less data-array line state.
//!
//! D2M's data arrays carry no address tags: a line can only be found through
//! the metadata hierarchy. Each slot instead carries the per-line fields of
//! Figure 2: the replacement pointer (RP) and — implicitly via the simulator
//! (hardware uses tracking pointers) — which line it holds.
//!
//! A slot is either:
//!
//! * a **master** — the single coherent home of the line; always dirty when
//!   in a node's L1/L2, possibly clean (w.r.t. memory) in an LLC slot;
//! * a **replica** — a valid copy; its RP names the master's location;
//! * a **stale victim** — an allocated slot whose contents are outdated
//!   because the master moved into a node on a write upgrade; its owner's RP
//!   points back so evictions can land here (`stale == true`). No LI ever
//!   points at a stale slot (checked by the invariant suite).

use crate::li::Li;

/// One tag-less data-array slot (L1, L2, or an LLC slice/bank).
#[derive(Clone, Copy, Debug)]
pub struct DataLine {
    /// True if this copy is the line's master location.
    pub master: bool,
    /// Master only: no other valid replicas exist (write permission without
    /// coherence; an M-vs-O distinction).
    pub excl: bool,
    /// Data differs from main memory.
    pub dirty: bool,
    /// Victim slot whose contents are outdated (see module docs).
    pub stale: bool,
    /// Value-coherence oracle token carried by this copy.
    pub version: u64,
    /// Node-local cycle at which the fill completes (late-hit model;
    /// only meaningful for L1 slots).
    pub ready_at: u64,
    /// Replacement pointer: victim location (masters) or master location
    /// (replicas).
    pub rp: Li,
}

impl DataLine {
    /// A fresh replica of data whose master lives at `master_loc`.
    pub fn replica(version: u64, ready_at: u64, master_loc: Li) -> Self {
        Self {
            master: false,
            excl: false,
            dirty: false,
            stale: false,
            version,
            ready_at,
            rp: master_loc,
        }
    }

    /// A master copy with victim location `victim`.
    pub fn master(version: u64, ready_at: u64, dirty: bool, victim: Li) -> Self {
        Self {
            master: true,
            excl: true,
            dirty,
            stale: false,
            version,
            ready_at,
            rp: victim,
        }
    }

    /// True if this slot's data may legally be served to a read.
    pub fn serveable(&self) -> bool {
        !self.stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_roles() {
        let r = DataLine::replica(3, 100, Li::Mem);
        assert!(!r.master && !r.dirty && r.serveable());
        assert_eq!(r.rp, Li::Mem);
        let m = DataLine::master(4, 0, true, Li::LlcFs { way: 2 });
        assert!(m.master && m.excl && m.dirty && m.serveable());
    }

    #[test]
    fn stale_slots_are_not_serveable() {
        let mut s = DataLine::replica(1, 0, Li::Mem);
        s.stale = true;
        assert!(!s.serveable());
    }
}
