//! Protocol-level tests: directed scenarios for every appendix case plus
//! randomized whole-system checks against the value oracle and the
//! invariant suite.

use d2m_common::addr::{Asid, NodeId, VAddr};
use d2m_common::config::MachineConfig;
use d2m_common::outcome::ServicedBy;
use d2m_common::rng::SimRng;
use d2m_noc::MsgClass;
use d2m_workloads::{catalog, Access, AccessKind, TraceGen};

use crate::system::{D2mSystem, D2mVariant};

fn cfg() -> MachineConfig {
    let mut c = MachineConfig::default();
    c.check_coherence = true;
    c
}

fn small_cfg() -> MachineConfig {
    // Tiny structures force heavy eviction traffic, exercising the E/F and
    // MD2/MD3 spill paths quickly.
    let mut c = MachineConfig::default();
    c.l1i = d2m_common::config::CacheGeometry::new(8, 2);
    c.l1d = d2m_common::config::CacheGeometry::new(8, 2);
    c.llc = d2m_common::config::CacheGeometry::from_capacity(64 << 10, 32);
    c.ns_slice = d2m_common::config::CacheGeometry::from_capacity(8 << 10, 4);
    c.md1 = d2m_common::config::CacheGeometry::new(2, 2);
    c.md2 = d2m_common::config::CacheGeometry::new(8, 2);
    c.md3 = d2m_common::config::CacheGeometry::new(16, 4);
    c.check_coherence = true;
    c
}

fn acc(node: u8, kind: AccessKind, va: u64) -> Access {
    Access {
        node: NodeId::new(node),
        asid: Asid(0),
        kind,
        vaddr: VAddr::new(va),
    }
}

fn all_variants() -> [D2mVariant; 3] {
    [
        D2mVariant::FarSide,
        D2mVariant::NearSide,
        D2mVariant::NearSideRepl,
    ]
}

#[test]
fn cold_read_fills_from_memory_and_hits_after() {
    for v in all_variants() {
        let mut sys = D2mSystem::new(&cfg(), v);
        let r1 = sys
            .access(&acc(0, AccessKind::Load, 0x100_0000), 0)
            .unwrap();
        assert!(!r1.l1_hit, "{v:?}");
        assert_eq!(r1.serviced_by, ServicedBy::Mem, "{v:?}");
        assert_eq!(r1.private_miss, Some(true), "first touch is private");
        let r2 = sys
            .access(&acc(0, AccessKind::Load, 0x100_0000), 100_000)
            .unwrap();
        assert!(r2.l1_hit, "{v:?}");
        assert!(r2.latency < r1.latency);
        sys.check_invariants()
            .unwrap_or_else(|e| panic!("{v:?}: {e}"));
    }
}

#[test]
fn late_hit_latency_survives_waits_beyond_u32() {
    for v in all_variants() {
        let mut sys = D2mSystem::new(&cfg(), v);
        // Fill at a node-local time far past u32::MAX cycles, then re-access
        // at cycle 0: the in-flight window (`ready_at - now`) exceeds
        // u32::MAX, which the former `as u32` cast silently wrapped.
        let far = u32::MAX as u64 * 4;
        sys.access(&acc(0, AccessKind::Load, 0x900_0000), far)
            .unwrap();
        let r = sys
            .access(&acc(0, AccessKind::Load, 0x900_0000), 0)
            .unwrap();
        assert!(r.l1_hit && r.late, "{v:?}");
        assert!(
            r.latency > u64::from(u32::MAX),
            "{v:?}: late-hit latency truncated to {}",
            r.latency
        );
    }
}

#[test]
fn case_d4_then_d1_then_d2_transitions() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    // Node 0 touches a region: D4 (uncached → private).
    sys.access(&acc(0, AccessKind::Load, 0x200_0000), 0)
        .unwrap();
    assert_eq!(sys.protocol_events().d4_uncached_to_private, 1);
    // Node 1 touches the same region: D2 (private → shared).
    sys.access(&acc(1, AccessKind::Load, 0x200_0000), 0)
        .unwrap();
    assert_eq!(sys.protocol_events().d2_private_to_shared, 1);
    // Node 2: D3 (shared → shared).
    sys.access(&acc(2, AccessKind::Load, 0x200_0040), 0)
        .unwrap();
    assert_eq!(sys.protocol_events().d3_shared_to_shared, 1);
    assert_eq!(sys.coherence_errors(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn private_write_is_directory_free() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    sys.access(&acc(0, AccessKind::Load, 0x300_0000), 0)
        .unwrap();
    let md3_before = sys.raw_counters().md3_accesses;
    // Write miss in the (private) region: case B — no MD3 transaction.
    let r = sys
        .access(&acc(0, AccessKind::Store, 0x300_0040), 0)
        .unwrap();
    assert!(!r.l1_hit);
    assert_eq!(r.private_miss, Some(true));
    assert_eq!(sys.raw_counters().md3_accesses, md3_before);
    assert_eq!(sys.protocol_events().b_write_private, 1);
    // Write hit on the line we just read: silent upgrade.
    sys.access(&acc(0, AccessKind::Store, 0x300_0000), 100_000)
        .unwrap();
    assert_eq!(sys.protocol_events().silent_upgrades, 1);
    assert_eq!(sys.raw_counters().md3_accesses, md3_before);
    sys.check_invariants().unwrap();
}

#[test]
fn shared_write_invalidates_and_repoints() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    let va = 0x400_0000;
    for n in 0..4 {
        sys.access(&acc(n, AccessKind::Load, va), 0).unwrap();
    }
    let inv_before = sys.raw_counters().invalidations_received;
    // Node 0 writes: case C.
    sys.access(&acc(0, AccessKind::Store, va), 100_000).unwrap();
    assert!(sys.protocol_events().c_write_shared >= 1);
    assert!(sys.raw_counters().invalidations_received > inv_before);
    // Node 2 re-reads: the LI must name node 0 (direct-to-master).
    let r = sys.access(&acc(2, AccessKind::Load, va), 200_000).unwrap();
    assert!(!r.l1_hit);
    assert_eq!(r.serviced_by, ServicedBy::RemoteNode);
    assert_eq!(sys.coherence_errors(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn region_grain_false_invalidations_occur() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    // Node 1 caches a *different* line of the region than node 0 writes:
    // the PB multicast still invalidates node 1 (a false invalidation).
    sys.access(&acc(1, AccessKind::Load, 0x500_0040), 0)
        .unwrap();
    sys.access(&acc(0, AccessKind::Load, 0x500_0000), 0)
        .unwrap();
    sys.access(&acc(0, AccessKind::Store, 0x500_0000), 100_000)
        .unwrap();
    assert!(sys.raw_counters().false_invalidations >= 1);
    sys.check_invariants().unwrap();
}

#[test]
fn reads_after_remote_write_see_latest_value_everywhere() {
    for v in all_variants() {
        let mut sys = D2mSystem::new(&cfg(), v);
        let va = 0x600_0000;
        for n in 0..8 {
            sys.access(&acc(n, AccessKind::Load, va), 0).unwrap();
        }
        sys.access(&acc(3, AccessKind::Store, va), 100_000).unwrap();
        for n in 0..8 {
            sys.access(&acc(n, AccessKind::Load, va), 200_000).unwrap();
        }
        assert_eq!(sys.coherence_errors(), 0, "{v:?}");
        sys.check_invariants()
            .unwrap_or_else(|e| panic!("{v:?}: {e}"));
    }
}

#[test]
fn ns_local_allocation_and_hits() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::NearSide);
    // Fill a line, evict it from L1 by conflicting lines, then re-read:
    // it should hit in the node's own NS slice (pressure is equal → local).
    let base = 0x700_0000u64;
    sys.access(&acc(0, AccessKind::Load, base), 0).unwrap();
    for i in 1..=10u64 {
        sys.access(&acc(0, AccessKind::Load, base + i * 64 * 64), 0)
            .unwrap();
    }
    let r = sys
        .access(&acc(0, AccessKind::Load, base), 1_000_000)
        .unwrap();
    assert!(!r.l1_hit);
    assert_eq!(
        r.serviced_by,
        ServicedBy::LocalNs,
        "local slice should serve"
    );
    assert!(sys.raw_counters().ns_alloc_local > 0);
    sys.check_invariants().unwrap();
}

#[test]
fn replication_pulls_instructions_local() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::NearSideRepl);
    let code = 0x10_0000u64;
    // Node 0 faults the code in; the slice allocation lands somewhere.
    sys.access(&acc(0, AccessKind::IFetch, code), 0).unwrap();
    // Node 1 fetches the same line: wherever it was, after the first access
    // the replication heuristic must keep a local copy, so a second fetch
    // after L1 eviction hits the local slice.
    sys.access(&acc(1, AccessKind::IFetch, code), 0).unwrap();
    // Dynamic indexing scrambles sets per region, so flush the L1-I with a
    // broad sweep rather than a single-set conflict pattern.
    for i in 1..=1500u64 {
        sys.access(&acc(1, AccessKind::IFetch, code + 0x10_0000 + i * 64), 0)
            .unwrap();
    }
    let r = sys
        .access(&acc(1, AccessKind::IFetch, code), 1_000_000)
        .unwrap();
    assert!(!r.l1_hit);
    assert!(
        matches!(r.serviced_by, ServicedBy::LocalNs),
        "replicated instructions should be local, got {:?}",
        r.serviced_by
    );
    assert_eq!(sys.coherence_errors(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn master_eviction_private_updates_li_to_victim() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    let va = 0x800_0000u64;
    // Install the region first so the store is a case-B (MD-hit) write miss.
    sys.access(&acc(0, AccessKind::Load, va + 0x40), 0).unwrap();
    sys.access(&acc(0, AccessKind::Store, va), 0).unwrap();
    assert!(sys.protocol_events().b_write_private >= 1);
    // Evict the dirty master from L1 with conflicting lines (case E).
    for i in 1..=10u64 {
        sys.access(&acc(0, AccessKind::Load, va + i * 64 * 64), 0)
            .unwrap();
    }
    assert!(sys.protocol_events().e_evict_private >= 1);
    // Re-read: data must come back (from its LLC victim slot) with the
    // written version.
    let r = sys
        .access(&acc(0, AccessKind::Load, va), 1_000_000)
        .unwrap();
    assert!(!r.l1_hit);
    assert_eq!(sys.coherence_errors(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn master_eviction_shared_runs_case_f() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    let va = 0x900_0000u64;
    sys.access(&acc(1, AccessKind::Load, va), 0).unwrap();
    sys.access(&acc(0, AccessKind::Store, va), 0).unwrap(); // node 0 becomes master (case C)
    let f_before = sys.protocol_events().f_evict_shared;
    for i in 1..=10u64 {
        sys.access(&acc(0, AccessKind::Load, va + i * 64 * 64), 0)
            .unwrap();
    }
    assert!(sys.protocol_events().f_evict_shared > f_before);
    assert!(sys.noc().count(MsgClass::EvictReq) >= 1);
    // Node 1 re-reads: must see node 0's write from the victim location.
    sys.access(&acc(1, AccessKind::Load, va), 1_000_000)
        .unwrap();
    assert_eq!(sys.coherence_errors(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn md2_pruning_reprivatizes_regions() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    let va = 0xa00_0000u64;
    // Node 1 reads one line of the region, then node 1's copy is evicted so
    // its MD2 entry tracks nothing locally.
    sys.access(&acc(1, AccessKind::Load, va + 0x40), 0).unwrap();
    for i in 1..=10u64 {
        sys.access(&acc(1, AccessKind::Load, va + 0x40 + i * 64 * 64), 0)
            .unwrap();
    }
    // Node 0 writes a line: the invalidation reaches node 1, whose entry is
    // pruneable if its MD1 is no longer active. Run enough other regions
    // through node 1's MD1 to deactivate it first.
    for i in 1..=40u64 {
        sys.access(&acc(1, AccessKind::Load, 0xb00_0000 + i * 1024 * 16), 0)
            .unwrap();
    }
    sys.access(&acc(0, AccessKind::Load, va), 0).unwrap();
    sys.access(&acc(0, AccessKind::Store, va), 100_000).unwrap();
    assert!(sys.raw_counters().md2_prunes >= 1, "pruning should trigger");
    sys.check_invariants().unwrap();
}

#[test]
fn server_style_disjoint_asids_stay_private() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    for n in 0..8u8 {
        for i in 0..64u64 {
            let a = Access {
                node: NodeId::new(n),
                asid: Asid(n as u16 + 1),
                kind: if i % 4 == 0 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                vaddr: VAddr::new(0x100_0000 + i * 64),
            };
            sys.access(&a, 0).unwrap();
        }
    }
    let c = sys.raw_counters();
    assert_eq!(
        c.private_region_misses, c.classified_misses,
        "disjoint address spaces must be 100% private (Table V, Server)"
    );
    assert_eq!(sys.protocol_events().c_write_shared, 0);
    assert_eq!(sys.coherence_errors(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn dynamic_indexing_spreads_strided_conflicts() {
    // A power-of-two stride that lands every scan line in LLC set 0 —
    // without scrambling the lines thrash a single set and keep refetching
    // from memory; with scrambling (NS-R) they spread and become LLC hits.
    let stride = 4096 * 64u64; // 4096 lines
    let run = |variant| {
        let mut c = cfg();
        c.check_coherence = false;
        let mut sys = D2mSystem::new(&c, variant);
        for rep in 0..12 {
            for i in 0..96u64 {
                sys.access(
                    &acc(0, AccessKind::Load, 0x4_0000_0000 + i * stride),
                    rep * 1000,
                )
                .unwrap();
            }
        }
        sys.raw_counters().mem_fills
    };
    let without = run(D2mVariant::NearSide);
    let with = run(D2mVariant::NearSideRepl);
    assert!(
        with < without / 2,
        "scrambling should turn conflict refetches into LLC hits: {with} vs {without}"
    );
}

#[test]
fn pkmo_cases_a_and_b_dominate() {
    // The paper's headline: ~90% of misses need no MD3 involvement.
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    let spec = catalog::by_name("mix2").unwrap();
    let mut gen = TraceGen::new(&spec, 8, 3);
    let mut batch = Vec::new();
    let mut run = |sys: &mut D2mSystem, n: usize| {
        for _ in 0..n {
            batch.clear();
            gen.next_batch(&mut batch);
            for a in &batch {
                sys.access(a, 0).unwrap();
            }
        }
    };
    // Warm up (cold-start MD misses are all case D), then measure the
    // steady-state case mix.
    run(&mut sys, 4000);
    let w = *sys.protocol_events();
    run(&mut sys, 8000);
    let e = sys.protocol_events();
    let free = (e.a_read_md_hit + e.b_write_private) - (w.a_read_md_hit + w.b_write_private);
    let total = free + (e.c_write_shared + e.d_md_miss) - (w.c_write_shared + w.d_md_miss);
    let frac = free as f64 / total as f64;
    assert!(frac > 0.9, "directory-free fraction only {frac}");
    assert_eq!(sys.coherence_errors(), 0);
}

#[test]
fn tiny_config_survives_heavy_eviction_storms() {
    for v in all_variants() {
        let mut sys = D2mSystem::new(&small_cfg(), v);
        let spec = catalog::by_name("fluidanimate").unwrap();
        let mut gen = TraceGen::new(&spec, 8, 5);
        let mut batch = Vec::new();
        for i in 0..800 {
            batch.clear();
            gen.next_batch(&mut batch);
            for a in &batch {
                sys.access(a, i * 10).unwrap();
            }
        }
        assert!(sys.raw_counters().md2_evictions > 0, "{v:?}");
        assert!(sys.raw_counters().md3_evictions > 0, "{v:?}");
        assert_eq!(sys.coherence_errors(), 0, "{v:?}");
        assert_eq!(sys.determinism_errors(), 0, "{v:?}");
        sys.check_invariants()
            .unwrap_or_else(|e| panic!("{v:?}: {e}"));
    }
}

#[test]
fn deterministic_simulation() {
    let run = || {
        let mut sys = D2mSystem::new(&cfg(), D2mVariant::NearSideRepl);
        let spec = catalog::by_name("barnes").unwrap();
        let mut gen = TraceGen::new(&spec, 8, 9);
        let mut batch = Vec::new();
        for _ in 0..500 {
            batch.clear();
            gen.next_batch(&mut batch);
            for a in &batch {
                sys.access(a, 0).unwrap();
            }
        }
        sys.counters()
    };
    assert_eq!(run(), run());
}

#[test]
fn code_and_data_sides_are_separate() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    let va = 0xc00_0000u64;
    sys.access(&acc(0, AccessKind::IFetch, va), 0).unwrap();
    assert_eq!(sys.raw_counters().l1i_misses, 1);
    // A data load of the same line misses in L1-D and moves the region's
    // active metadata to the data side.
    let r = sys.access(&acc(0, AccessKind::Load, va), 0).unwrap();
    assert!(!r.l1_hit);
    assert_eq!(sys.raw_counters().l1d_misses, 1);
    sys.check_invariants().unwrap();
}

#[test]
fn md1_miss_md2_hit_path() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    // Touch enough distinct regions to overflow the 128-entry MD1 but not
    // the 4K-entry MD2.
    for i in 0..400u64 {
        sys.access(&acc(0, AccessKind::Load, 0x1_000_0000 + i * 1024), 0)
            .unwrap();
    }
    // Revisit the first region: MD1 misses, MD2 hits.
    let h_before = sys.raw_counters().md2_hits;
    sys.access(&acc(0, AccessKind::Load, 0x1_000_0000), 1_000_000)
        .unwrap();
    assert!(sys.raw_counters().md2_hits > h_before);
    sys.check_invariants().unwrap();
}

/// Randomized multi-node access sequences preserve value coherence, LI
/// determinism and all structural invariants, for every variant.
///
/// Formerly a proptest; now driven by 24 deterministic [`SimRng`] streams
/// over the same op space (node 0..8, kind 0..3, slot 0..48, 200..400 ops)
/// so the workspace builds with no external dependencies.
#[test]
fn random_accesses_preserve_all_invariants() {
    for case in 0u64..24 {
        let mut rng = SimRng::from_label(0xD2A7_0001, &format!("ops-{case}"));
        let n_ops = 200 + rng.below(200) as usize;
        let ops: Vec<(u8, u8, u64)> = (0..n_ops)
            .map(|_| (rng.below(8) as u8, rng.below(3) as u8, rng.below(48)))
            .collect();
        let mut systems: Vec<D2mSystem> = all_variants()
            .into_iter()
            .map(|v| D2mSystem::new(&small_cfg(), v))
            .collect();
        // Also cover the optional private-L2 configuration.
        let mut l2cfg = small_cfg();
        l2cfg.l2 = d2m_common::config::CacheGeometry::new(8, 2);
        systems.push(D2mSystem::with_features(
            &l2cfg,
            D2mVariant::FarSide,
            l2_feats(),
            1,
        ));
        for mut sys in systems {
            for (i, (node, kind, slot)) in ops.iter().enumerate() {
                // A small pool of lines across 3 regions shared by all nodes
                // maximizes coherence interaction.
                let va = 0x2_000_0000 + slot * 64;
                let kind = match kind {
                    0 => AccessKind::Load,
                    1 => AccessKind::Store,
                    _ => AccessKind::IFetch,
                };
                // Instruction fetches use a separate code pool: mixing
                // ifetch and stores on one line is not a real program.
                let va = if kind == AccessKind::IFetch {
                    va + 0x100_0000
                } else {
                    va
                };
                sys.access(&acc(*node, kind, va), i as u64 * 7).unwrap();
            }
            assert_eq!(sys.coherence_errors(), 0, "case {case} {:?}", sys.variant());
            assert_eq!(
                sys.determinism_errors(),
                0,
                "case {case} {:?}",
                sys.variant()
            );
            if let Err(e) = sys.check_invariants() {
                panic!("case {case} {:?}: {e}", sys.variant());
            }
        }
    }
}

/// Every workload trace in the catalog keeps the oracle clean.
///
/// Formerly a sampled proptest over (workload, seed); now exhaustive over
/// the whole catalog with a seed derived per workload.
#[test]
fn catalog_traces_stay_coherent() {
    for (widx, spec) in catalog::all().unwrap().iter().enumerate() {
        let seed = (widx as u64) % 50;
        let mut sys = D2mSystem::new(&small_cfg(), D2mVariant::NearSideRepl);
        let mut gen = TraceGen::new(spec, 8, seed);
        let mut batch = Vec::new();
        for _ in 0..60 {
            batch.clear();
            gen.next_batch(&mut batch);
            for a in &batch {
                sys.access(a, 0).unwrap();
            }
        }
        assert_eq!(sys.coherence_errors(), 0, "{}", spec.name);
        assert_eq!(sys.determinism_errors(), 0, "{}", spec.name);
        if let Err(e) = sys.check_invariants() {
            panic!("{}: {e}", spec.name);
        }
    }
}

#[test]
fn dbg_pkmo_breakdown() {
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    let spec = catalog::by_name("mix2").unwrap();
    let mut gen = TraceGen::new(&spec, 8, 3);
    let mut batch = Vec::new();
    for _ in 0..4000 {
        batch.clear();
        gen.next_batch(&mut batch);
        for a in &batch {
            sys.access(a, 0).unwrap();
        }
    }
    let w = *sys.protocol_events();
    let wc = *sys.raw_counters();
    for _ in 0..8000 {
        batch.clear();
        gen.next_batch(&mut batch);
        for a in &batch {
            sys.access(a, 0).unwrap();
        }
    }
    let e = sys.protocol_events();
    let c = sys.raw_counters();
    println!("A={} B={} C={} D={} (d1={} d2={} d3={} d4={}) E={} F={} prune={} md2evict={} md3evict={} l1d_miss={} l1i_miss={} md1h={}/{} md2h={}/{}",
        e.a_read_md_hit-w.a_read_md_hit, e.b_write_private-w.b_write_private,
        e.c_write_shared-w.c_write_shared, e.d_md_miss-w.d_md_miss,
        e.d1_untracked_to_private-w.d1_untracked_to_private, e.d2_private_to_shared-w.d2_private_to_shared,
        e.d3_shared_to_shared-w.d3_shared_to_shared, e.d4_uncached_to_private-w.d4_uncached_to_private,
        e.e_evict_private-w.e_evict_private, e.f_evict_shared-w.f_evict_shared,
        c.md2_prunes-wc.md2_prunes, c.md2_evictions-wc.md2_evictions, c.md3_evictions-wc.md3_evictions,
        c.l1d_misses-wc.l1d_misses, c.l1i_misses-wc.l1i_misses,
        c.md1_hits-wc.md1_hits, c.md1_accesses-wc.md1_accesses,
        c.md2_hits-wc.md2_hits, c.md2_accesses-wc.md2_accesses);
}

#[test]
fn bypass_skips_llc_allocation_for_streaming_regions() {
    use crate::system::D2mFeatures;
    let mut c = cfg();
    c.check_coherence = true;
    let feats = D2mFeatures {
        near_side: true,
        replication: false,
        dynamic_indexing: false,
        bypass: true,
        private_l2: false,
        traditional_l1: false,
    };
    let mut sys = D2mSystem::with_features(&c, D2mVariant::NearSide, feats, 1);
    // Stream 4 KB lines within ONE region's metadata? No — stream across many
    // lines of a handful of regions so the fill counter saturates, with no
    // LLC reuse.
    let base = 0x9_0000_0000u64;
    for i in 0..400u64 {
        sys.access(&acc(0, AccessKind::Load, base + i * 64), i)
            .unwrap();
    }
    assert!(
        sys.raw_counters().bypassed_fills > 0,
        "streaming fills should bypass the LLC"
    );
    assert_eq!(sys.coherence_errors(), 0);
    sys.check_invariants().unwrap();
    // Re-reading a bypassed line must still be correct (memory master).
    sys.access(&acc(0, AccessKind::Load, base + 8 * 64), 10_000)
        .unwrap();
    assert_eq!(sys.coherence_errors(), 0);
}

#[test]
fn bypass_spares_regions_with_reuse() {
    use crate::system::D2mFeatures;
    let mut c = cfg();
    c.check_coherence = true;
    let feats = D2mFeatures {
        near_side: false,
        replication: false,
        dynamic_indexing: false,
        bypass: true,
        private_l2: false,
        traditional_l1: false,
    };
    let mut sys = D2mSystem::with_features(&c, D2mVariant::FarSide, feats, 1);
    let base = 0xa_0000_0000u64;
    // Interleave fills with LLC reuse (evict from L1, re-read): the region
    // keeps showing reuse, so fills must NOT be bypassed.
    for round in 0..6u64 {
        for i in 0..16u64 {
            sys.access(&acc(0, AccessKind::Load, base + i * 64), round * 100)
                .unwrap();
        }
        // Thrash L1 set-wise to force LLC re-reads of the same region.
        for i in 0..1500u64 {
            sys.access(
                &acc(0, AccessKind::Load, 0xb_0000_0000 + i * 64),
                round * 100,
            )
            .unwrap();
        }
    }
    // The thrash filler itself streams (and may be bypassed); what matters
    // is that the *reused* region kept its LLC residency: a re-read after L1
    // eviction must be an LLC hit, not another memory fill.
    let r = sys
        .access(&acc(0, AccessKind::Load, base), 1_000_000)
        .unwrap();
    assert!(
        matches!(r.serviced_by, ServicedBy::Llc),
        "reused region must stay LLC-resident, got {:?}",
        r.serviced_by
    );
    sys.check_invariants().unwrap();
}

#[test]
fn md2_spill_reseeds_md3_for_private_regions() {
    // A private region whose MD2 entry is evicted must upload its final LIs
    // so MD3 can track the region as untracked — and a later reader (D1)
    // must find the data without touching memory again.
    let mut c = cfg();
    c.md2 = d2m_common::config::CacheGeometry::new(2, 2); // tiny MD2
    let mut sys = D2mSystem::new(&c, D2mVariant::FarSide);
    let va = 0x3_0000_0000u64;
    sys.access(&acc(0, AccessKind::Load, va), 0).unwrap();
    let fills_before = sys.raw_counters().mem_fills;
    // Evict the region's MD2 entry by touching many other regions.
    for i in 1..=32u64 {
        sys.access(&acc(0, AccessKind::Load, va + i * 1024 * 4), 0)
            .unwrap();
    }
    assert!(sys.raw_counters().md2_evictions > 0);
    // Another node reads the same line: D1 (untracked→private) must point it
    // at the LLC master from the spill — no new memory fill for that line.
    let before_d1 = sys.protocol_events().d1_untracked_to_private;
    let r = sys.access(&acc(1, AccessKind::Load, va), 100_000).unwrap();
    assert!(sys.protocol_events().d1_untracked_to_private > before_d1);
    assert_ne!(
        r.serviced_by,
        ServicedBy::Mem,
        "spill preserved LLC residency"
    );
    let _ = fills_before;
    assert_eq!(sys.coherence_errors(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn llc_master_eviction_retargets_trackers_to_memory() {
    // Force LLC slot churn with a tiny LLC: trackers' LIs must fall back to
    // MEM (NewMaster/RpFix), and re-reads must stay coherent.
    let mut c = cfg();
    c.llc = d2m_common::config::CacheGeometry::from_capacity(32 << 10, 4);
    c.ns_slice = d2m_common::config::CacheGeometry::from_capacity(4 << 10, 4);
    let mut sys = D2mSystem::new(&c, D2mVariant::FarSide);
    let va = 0x5_0000_0000u64;
    sys.access(&acc(0, AccessKind::Load, va), 0).unwrap();
    // Stream lines mapping to the same LLC set (128 sets here).
    for i in 1..=16u64 {
        sys.access(&acc(1, AccessKind::Load, va + i * 128 * 64), 0)
            .unwrap();
    }
    // Node 0's copy may have lost its LLC backing; a re-read after L1
    // eviction must still return the right data.
    for i in 1..=10u64 {
        sys.access(&acc(0, AccessKind::Load, 0x6_0000_0000 + i * 64 * 64), 0)
            .unwrap();
    }
    sys.access(&acc(0, AccessKind::Load, va), 1_000_000)
        .unwrap();
    assert_eq!(sys.coherence_errors(), 0);
    assert_eq!(sys.determinism_errors(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn pressure_exchange_messages_are_counted() {
    let mut c = cfg();
    c.ns_policy.pressure_window = 100; // exchange often
    let mut sys = D2mSystem::new(&c, D2mVariant::NearSide);
    for i in 0..2000u64 {
        sys.access(
            &acc((i % 8) as u8, AccessKind::Load, 0x7_0000_0000 + i * 64),
            i,
        )
        .unwrap();
    }
    assert!(sys.noc().count(MsgClass::Pressure) > 0);
}

#[test]
fn remote_master_read_drops_exclusivity() {
    // After node 0 writes (master, exclusive) and node 1 reads it directly,
    // node 0's next write to the same line needs a coherence round again.
    let mut sys = D2mSystem::new(&cfg(), D2mVariant::FarSide);
    let va = 0x8_0000_0000u64;
    sys.access(&acc(1, AccessKind::Load, va), 0).unwrap(); // make region shared later
    sys.access(&acc(0, AccessKind::Store, va), 0).unwrap(); // case C: node 0 master
    let c_before = sys.protocol_events().c_write_shared;
    sys.access(&acc(1, AccessKind::Load, va), 100_000).unwrap(); // direct read from node 0
    sys.access(&acc(0, AccessKind::Store, va), 200_000).unwrap(); // must invalidate node 1
    assert!(
        sys.protocol_events().c_write_shared > c_before,
        "write after remote read requires a new case-C round"
    );
    sys.access(&acc(1, AccessKind::Load, va), 300_000).unwrap();
    assert_eq!(sys.coherence_errors(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn metadata_capacity_governs_readmm_rate() {
    // Footnote 5 mechanism check at unit scale: a starved MD2/MD3 must
    // re-fetch region metadata (case D) far more often than the default.
    let run = |md2_sets: usize, md3_sets: usize| {
        let mut c = cfg();
        c.md2 = d2m_common::config::CacheGeometry::new(md2_sets, 8);
        c.md3 = d2m_common::config::CacheGeometry::new(md3_sets, 16);
        let mut sys = D2mSystem::new(&c, D2mVariant::FarSide);
        let spec = catalog::by_name("canneal").unwrap();
        let mut gen = TraceGen::new(&spec, 8, 4);
        let mut batch = Vec::new();
        for _ in 0..2500 {
            batch.clear();
            gen.next_batch(&mut batch);
            for a in &batch {
                sys.access(a, 0).unwrap();
            }
        }
        sys.protocol_events().d_md_miss
    };
    let starved = run(16, 64);
    let default = run(512, 1024);
    assert!(
        starved as f64 > 1.25 * default as f64,
        "starved metadata must multiply ReadMM rounds: {starved} vs {default}"
    );
}

fn l2_feats() -> crate::system::D2mFeatures {
    crate::system::D2mFeatures {
        near_side: false,
        replication: false,
        dynamic_indexing: false,
        bypass: false,
        private_l2: true,
        traditional_l1: false,
    }
}

#[test]
fn private_l2_serves_as_a_victim_cache() {
    let mut sys = D2mSystem::with_features(&cfg(), D2mVariant::FarSide, l2_feats(), 1);
    let va = 0xc_0000_0000u64;
    sys.access(&acc(0, AccessKind::Load, va), 0).unwrap();
    // Conflict-evict from L1: the clean replica demotes into the L2.
    for i in 1..=10u64 {
        sys.access(&acc(0, AccessKind::Load, va + i * 64 * 64), 0)
            .unwrap();
    }
    let r = sys
        .access(&acc(0, AccessKind::Load, va), 1_000_000)
        .unwrap();
    assert!(!r.l1_hit);
    assert_eq!(r.serviced_by, ServicedBy::L2, "victim cache must serve");
    assert_eq!(sys.coherence_errors(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn private_l2_master_roundtrip() {
    let mut sys = D2mSystem::with_features(&cfg(), D2mVariant::FarSide, l2_feats(), 1);
    let va = 0xd_0000_0000u64;
    // Make node 0 the master (case B via region fill + store).
    sys.access(&acc(0, AccessKind::Load, va + 0x40), 0).unwrap();
    sys.access(&acc(0, AccessKind::Store, va), 0).unwrap();
    // Evict the dirty master from L1: it must land in its L2 victim slot.
    for i in 1..=10u64 {
        sys.access(&acc(0, AccessKind::Load, va + i * 64 * 64), 0)
            .unwrap();
    }
    let r = sys
        .access(&acc(0, AccessKind::Load, va), 1_000_000)
        .unwrap();
    assert_eq!(r.serviced_by, ServicedBy::L2, "master moved to the L2");
    // Another node reads: direct-to-master must find it inside node 0.
    let r2 = sys
        .access(&acc(1, AccessKind::Load, va), 1_000_000)
        .unwrap();
    assert_eq!(r2.serviced_by, ServicedBy::RemoteNode);
    assert_eq!(sys.coherence_errors(), 0);
    sys.check_invariants().unwrap();
}

#[test]
fn private_l2_survives_random_traces() {
    let mut c = small_cfg();
    c.l2 = d2m_common::config::CacheGeometry::new(16, 4);
    for name in ["fluidanimate", "tpc-c", "mix2"] {
        let spec = catalog::by_name(name).unwrap();
        let mut sys = D2mSystem::with_features(&c, D2mVariant::FarSide, l2_feats(), 3);
        let mut gen = TraceGen::new(&spec, 8, 3);
        let mut batch = Vec::new();
        for i in 0..600 {
            batch.clear();
            gen.next_batch(&mut batch);
            for a in &batch {
                sys.access(a, i * 10).unwrap();
            }
        }
        assert_eq!(sys.coherence_errors(), 0, "{name}");
        assert_eq!(sys.determinism_errors(), 0, "{name}");
        sys.check_invariants()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
#[should_panic(expected = "private L2 replaces the NS slice")]
fn private_l2_rejects_near_side() {
    let mut f = l2_feats();
    f.near_side = true;
    let _ = D2mSystem::with_features(&cfg(), D2mVariant::NearSide, f, 1);
}

#[test]
fn shared_write_hit_after_master_slot_eviction_keeps_rps_valid() {
    // Regression: node 0 holds an L1 replica whose RP names its *local
    // replication chain* slot; the line's LLC master slot is then evicted
    // (master falls back to memory). A subsequent store at node 0 must not
    // adopt the chain slot as its victim location — the case-C round purges
    // that slot, which would leave the new master's RP dangling.
    let mut c = cfg();
    c.ns_slice = d2m_common::config::CacheGeometry::from_capacity(16 << 10, 4);
    c.llc = d2m_common::config::CacheGeometry::from_capacity(128 << 10, 32);
    let mut sys = D2mSystem::new(&c, D2mVariant::NearSideRepl);
    let va = 0x4100_0000u64; // shared segment region

    // Node 1 faults the line in: master lands in node 1's slice (equal
    // pressure ⇒ local allocation).
    sys.access(&acc(1, AccessKind::Load, va), 0).unwrap();
    // Node 0 reads it twice: remote-NS hit + MRU ⇒ replicated into node 0's
    // slice, with node 0's L1 RP pointing at the local replica.
    sys.access(&acc(0, AccessKind::Load, va), 0).unwrap();

    // Thrash node 1's small slice so the master slot is evicted and the
    // master falls back to memory.
    for i in 1..=4096u64 {
        sys.access(&acc(1, AccessKind::Load, 0x2_0000_0000 + i * 64), 0)
            .unwrap();
    }

    // Store at node 0: write-hit on the replica (if still L1-resident) or a
    // write miss — either way the new master's RP must name a live victim.
    sys.access(&acc(0, AccessKind::Store, va), 1_000_000)
        .unwrap();
    sys.debug_validate_rps().unwrap();
    sys.check_invariants().unwrap();

    // And the value must be visible everywhere.
    sys.access(&acc(1, AccessKind::Load, va), 2_000_000)
        .unwrap();
    assert_eq!(sys.coherence_errors(), 0);
}

#[test]
fn traditional_front_end_keeps_d2m_semantics() {
    // §III-A: an unmodified core with TLB + tagged L1 in front of MD2/MD3.
    let feats = crate::system::D2mFeatures {
        near_side: true,
        replication: true,
        dynamic_indexing: false,
        bypass: false,
        private_l2: false,
        traditional_l1: true,
    };
    let mut c = cfg();
    c.check_coherence = true;
    let mut sys = D2mSystem::with_features(&c, D2mVariant::NearSideRepl, feats, 1);
    let spec = catalog::by_name("fluidanimate").unwrap();
    let mut gen = TraceGen::new(&spec, 8, 21);
    let mut batch = Vec::new();
    for i in 0..800 {
        batch.clear();
        gen.next_batch(&mut batch);
        for a in &batch {
            sys.access(a, i * 10).unwrap();
        }
    }
    assert_eq!(sys.coherence_errors(), 0);
    assert_eq!(sys.determinism_errors(), 0);
    sys.check_invariants().unwrap();
    // MD1 must be untouched; MD2 carries every resolution.
    assert_eq!(sys.raw_counters().md1_accesses, 0);
    assert!(sys.raw_counters().md2_accesses > 0);
}

#[test]
fn protocol_message_conservation_laws() {
    // Structural accounting identities of the protocol, checked over real
    // traces for every variant:
    //   ReadMM ≡ case D;   GetMD ≡ case D2;   MdReply ≡ D + D2 + spills;
    //   Done ≡ ReadMM + ReadEx + EvictReq;    Inv ≤ Ack ≤ Inv + NewMaster.
    for v in all_variants() {
        let mut sys = D2mSystem::new(&small_cfg(), v);
        let spec = catalog::by_name("barnes").unwrap();
        let mut gen = TraceGen::new(&spec, 8, 8);
        let mut batch = Vec::new();
        for _ in 0..800 {
            batch.clear();
            gen.next_batch(&mut batch);
            for a in &batch {
                sys.access(a, 0).unwrap();
            }
        }
        let ev = sys.protocol_events();
        let noc = sys.noc();
        assert_eq!(noc.count(MsgClass::ReadMM), ev.d_md_miss, "{v:?}");
        assert_eq!(noc.count(MsgClass::GetMd), ev.d2_private_to_shared, "{v:?}");
        assert_eq!(
            noc.count(MsgClass::Done),
            noc.count(MsgClass::ReadMM)
                + noc.count(MsgClass::ReadEx)
                + noc.count(MsgClass::EvictReq),
            "{v:?}"
        );
        let inv = noc.count(MsgClass::Inv);
        let ack = noc.count(MsgClass::Ack);
        let nm = noc.count(MsgClass::NewMaster);
        assert!(
            inv <= ack && ack <= inv + nm,
            "{v:?}: inv {inv} ack {ack} nm {nm}"
        );
        assert_eq!(sys.coherence_errors(), 0, "{v:?}");
    }
}

#[test]
fn corrupted_li_yields_protocol_error_not_abort() {
    use crate::error::ProtocolError;
    use crate::li::{Li, LiEncoding};

    let mut c = cfg();
    c.check_coherence = false;
    // Halve the LLC associativity (same capacity) so a way index can be out
    // of geometry: the packed 6-bit LI field can encode ways 0..32, but this
    // system only has 16.
    c.llc = d2m_common::config::CacheGeometry::from_capacity(8 << 20, 16);
    let mut sys = D2mSystem::new(&c, D2mVariant::FarSide);
    let va = 0x900_0000u64;
    sys.access(&acc(0, AccessKind::Load, va), 0).unwrap();

    // Plant a raw out-of-geometry pattern (0b111111 = far-side way 31) in
    // the now-active MD1 entry, at an offset the L1 does not yet hold. The
    // packed array stores exactly what the 6-bit hardware field would.
    let md1 = &mut sys.md1d;
    let slots: Vec<(usize, usize)> = md1.iter_bank(0).map(|(s, w, _, _)| (s, w)).collect();
    assert!(!slots.is_empty(), "first access must activate an MD1 entry");
    for (s, w) in slots {
        let (_, e) = md1.at_mut(0, s, w).expect("occupied");
        e.li.set_raw(1, 0b11_1111);
        assert_eq!(e.li.get(1, LiEncoding::FarSide), Li::LlcFs { way: 31 });
    }

    let err = sys
        .access(&acc(0, AccessKind::Load, va + 64), 0)
        .expect_err("corrupt LI must fail the transaction, not abort");
    assert!(
        matches!(err, ProtocolError::LlcSlotOutOfRange { ways: 16, .. }),
        "{err}"
    );
    // The error message names the offender for cell-failure reports.
    assert!(err.to_string().contains("LlcFs"), "{err}");
}
