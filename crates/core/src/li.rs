//! Location Information (LI) — the paper's Table I, plus the near-side
//! reinterpretation of §IV-B.
//!
//! Each cacheline's location is a 6-bit pointer:
//!
//! | bits     | meaning                         |
//! |----------|---------------------------------|
//! | `000NNN` | master in remote node `NNN`     |
//! | `001WWW` | in local L1, way `WWW`          |
//! | `010WWW` | in local L2, way `WWW`          |
//! | `011SSS` | one of eight symbols (`MEM`, `INVALID`, six reserved) |
//! | `1WWWWW` | far-side LLC, way `WWWWW` (32 ways) |
//!
//! With a near-side LLC the last row is reinterpreted as `1NNNWW`: node
//! `NNN`'s slice, way `WW` (4 ways × 8 nodes = the same 32 ways). The 6-bit
//! cost per cacheline — versus ~30 bits for an address tag — is the paper's
//! headline storage argument.

use d2m_common::addr::NodeId;

/// A cacheline's location, as tracked by the metadata hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Li {
    /// The master is in a remote node's private hierarchy (tracked by node
    /// id only, so nodes can move lines between their own levels freely).
    Node(NodeId),
    /// In the local L1, at the given way.
    L1 {
        /// Way within the L1 set.
        way: u8,
    },
    /// In the local L2, at the given way.
    L2 {
        /// Way within the L2 set.
        way: u8,
    },
    /// The master is main memory.
    Mem,
    /// No location is being tracked (used by MD3 for private regions, whose
    /// authoritative LIs live in the owner's MD1/MD2).
    #[default]
    Invalid,
    /// Far-side LLC at the given way (0..32).
    LlcFs {
        /// Way within the far-side LLC set.
        way: u8,
    },
    /// Near-side LLC: `node`'s slice at the given way (0..4).
    LlcNs {
        /// Slice owner.
        node: NodeId,
        /// Way within the slice set.
        way: u8,
    },
}

/// Whether the 6-bit encoding uses the far-side or near-side interpretation
/// of the `1…` row.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LiEncoding {
    /// `1WWWWW`: 32-way far-side LLC.
    FarSide,
    /// `1NNNWW`: 8 slices × 4 ways.
    NearSide,
}

/// Errors from [`Li::pack`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PackLiError {
    /// A way index exceeded its field width.
    WayOutOfRange,
    /// A far-side variant was packed with the near-side encoding or vice
    /// versa.
    WrongEncoding,
}

impl std::fmt::Display for PackLiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackLiError::WayOutOfRange => write!(f, "way index exceeds the LI field width"),
            PackLiError::WrongEncoding => {
                write!(f, "LLC variant does not match the selected LI encoding")
            }
        }
    }
}

impl std::error::Error for PackLiError {}

const SYM_MEM: u8 = 0;
const SYM_INVALID: u8 = 1;

impl Li {
    /// Packs into the 6-bit hardware encoding.
    ///
    /// # Errors
    ///
    /// Returns [`PackLiError`] if a way index does not fit its field or the
    /// LLC variant does not match `enc`.
    pub fn pack(self, enc: LiEncoding) -> Result<u8, PackLiError> {
        let check = |v: u8, bits: u32| {
            if u32::from(v) < (1 << bits) {
                Ok(v)
            } else {
                Err(PackLiError::WayOutOfRange)
            }
        };
        match self {
            Li::Node(n) => Ok(n.raw()), // 000NNN
            Li::L1 { way } => Ok(0b001_000 | check(way, 3)?),
            Li::L2 { way } => Ok(0b010_000 | check(way, 3)?),
            Li::Mem => Ok(0b011_000 | SYM_MEM),
            Li::Invalid => Ok(0b011_000 | SYM_INVALID),
            Li::LlcFs { way } => match enc {
                LiEncoding::FarSide => Ok(0b100_000 | check(way, 5)?),
                LiEncoding::NearSide => Err(PackLiError::WrongEncoding),
            },
            Li::LlcNs { node, way } => match enc {
                LiEncoding::NearSide => Ok(0b100_000 | (node.raw() << 2) | check(way, 2)?),
                LiEncoding::FarSide => Err(PackLiError::WrongEncoding),
            },
        }
    }

    /// Unpacks a 6-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `bits >= 64` (not a 6-bit value).
    pub fn unpack(bits: u8, enc: LiEncoding) -> Li {
        assert!(bits < 64, "LI is a 6-bit field");
        match bits >> 3 {
            0b000 => Li::Node(NodeId::new(bits & 0b111)),
            0b001 => Li::L1 { way: bits & 0b111 },
            0b010 => Li::L2 { way: bits & 0b111 },
            0b011 => match bits & 0b111 {
                SYM_MEM => Li::Mem,
                _ => Li::Invalid,
            },
            _ => match enc {
                LiEncoding::FarSide => Li::LlcFs {
                    way: bits & 0b11111,
                },
                LiEncoding::NearSide => Li::LlcNs {
                    node: NodeId::new((bits >> 2) & 0b111),
                    way: bits & 0b11,
                },
            },
        }
    }

    /// True if this LI points at data cached inside the local node (L1/L2).
    pub fn is_node_local(self) -> bool {
        matches!(self, Li::L1 { .. } | Li::L2 { .. })
    }

    /// True if this LI points at an LLC slot (far- or near-side).
    pub fn is_llc(self) -> bool {
        matches!(self, Li::LlcFs { .. } | Li::LlcNs { .. })
    }

    /// True if the location is tracked at all.
    pub fn is_valid(self) -> bool {
        !matches!(self, Li::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_encodings() {
        // The exact rows of Table I.
        assert_eq!(
            Li::Node(NodeId::new(5)).pack(LiEncoding::FarSide),
            Ok(0b000_101)
        );
        assert_eq!(Li::L1 { way: 7 }.pack(LiEncoding::FarSide), Ok(0b001_111));
        assert_eq!(Li::L2 { way: 3 }.pack(LiEncoding::FarSide), Ok(0b010_011));
        assert_eq!(Li::Mem.pack(LiEncoding::FarSide), Ok(0b011_000));
        assert_eq!(
            Li::LlcFs { way: 31 }.pack(LiEncoding::FarSide),
            Ok(0b111_111)
        );
        // §IV-B reinterpretation: 1NNNWW.
        assert_eq!(
            Li::LlcNs {
                node: NodeId::new(6),
                way: 2
            }
            .pack(LiEncoding::NearSide),
            Ok(0b1_110_10)
        );
    }

    #[test]
    fn pack_rejects_out_of_range_ways() {
        assert_eq!(
            Li::L1 { way: 8 }.pack(LiEncoding::FarSide),
            Err(PackLiError::WayOutOfRange)
        );
        assert_eq!(
            Li::LlcFs { way: 32 }.pack(LiEncoding::FarSide),
            Err(PackLiError::WayOutOfRange)
        );
        assert_eq!(
            Li::LlcNs {
                node: NodeId::new(0),
                way: 4
            }
            .pack(LiEncoding::NearSide),
            Err(PackLiError::WayOutOfRange)
        );
    }

    #[test]
    fn pack_rejects_wrong_encoding() {
        assert_eq!(
            Li::LlcFs { way: 0 }.pack(LiEncoding::NearSide),
            Err(PackLiError::WrongEncoding)
        );
        assert_eq!(
            Li::LlcNs {
                node: NodeId::new(0),
                way: 0
            }
            .pack(LiEncoding::FarSide),
            Err(PackLiError::WrongEncoding)
        );
    }

    #[test]
    fn invalid_symbol_roundtrips() {
        let bits = Li::Invalid.pack(LiEncoding::FarSide).unwrap();
        assert_eq!(Li::unpack(bits, LiEncoding::FarSide), Li::Invalid);
        assert!(!Li::Invalid.is_valid());
    }

    #[test]
    fn reserved_symbols_decode_as_invalid() {
        for s in 2..8u8 {
            assert_eq!(Li::unpack(0b011_000 | s, LiEncoding::FarSide), Li::Invalid);
        }
    }

    #[test]
    fn predicates() {
        assert!(Li::L1 { way: 0 }.is_node_local());
        assert!(!Li::Mem.is_node_local());
        assert!(Li::LlcFs { way: 1 }.is_llc());
        assert!(Li::LlcNs {
            node: NodeId::new(1),
            way: 1
        }
        .is_llc());
        assert!(!Li::Node(NodeId::new(1)).is_llc());
    }

    /// Every representable LI value for `enc` (exhaustive, replacing the
    /// former proptest sampling — the whole space is tiny).
    fn all_lis(enc: LiEncoding) -> Vec<Li> {
        let mut lis = Vec::new();
        lis.extend((0u8..8).map(|n| Li::Node(NodeId::new(n))));
        lis.extend((0u8..8).map(|way| Li::L1 { way }));
        lis.extend((0u8..8).map(|way| Li::L2 { way }));
        lis.push(Li::Mem);
        lis.push(Li::Invalid);
        match enc {
            LiEncoding::FarSide => lis.extend((0u8..32).map(|way| Li::LlcFs { way })),
            LiEncoding::NearSide => {
                for n in 0u8..8 {
                    for way in 0u8..4 {
                        lis.push(Li::LlcNs {
                            node: NodeId::new(n),
                            way,
                        });
                    }
                }
            }
        }
        lis
    }

    #[test]
    fn pack_unpack_roundtrip_farside() {
        for li in all_lis(LiEncoding::FarSide) {
            let bits = li.pack(LiEncoding::FarSide).unwrap();
            assert!(bits < 64, "{li:?} must fit 6 bits");
            assert_eq!(Li::unpack(bits, LiEncoding::FarSide), li);
        }
    }

    #[test]
    fn pack_unpack_roundtrip_nearside() {
        for li in all_lis(LiEncoding::NearSide) {
            let bits = li.pack(LiEncoding::NearSide).unwrap();
            assert!(bits < 64, "{li:?} must fit 6 bits");
            assert_eq!(Li::unpack(bits, LiEncoding::NearSide), li);
        }
    }

    #[test]
    fn every_6bit_value_decodes() {
        // Total decode: no 6-bit pattern is unrepresentable.
        for bits in 0u8..64 {
            let _ = Li::unpack(bits, LiEncoding::FarSide);
            let _ = Li::unpack(bits, LiEncoding::NearSide);
        }
    }
}
