//! MD3 blocking-mechanism lock bits (paper appendix).
//!
//! D2M serializes metadata-mutating transactions per region with a blocking
//! mechanism at MD3, implemented as a set of hashed lock bits (the WildFire /
//! SunFire lineage). The paper reports that **1 K lock bits yield a
//! negligible collision rate**. Because the simulator executes transactions
//! atomically, blocking never stalls anything here — but this model measures
//! what the hash collisions *would* be: two concurrent transactions on
//! different regions colliding on the same lock bit would serialize
//! needlessly.
//!
//! The collision estimate treats the other in-flight transactions as the
//! most recent `window` distinct regions (a pessimistic stand-in for true
//! concurrency, biased toward reporting *more* collisions than reality).

use d2m_common::addr::RegionAddr;

/// Tracks hashed-lock-bit collisions over a sliding window of recent
/// blocking transactions.
#[derive(Clone, Debug)]
pub struct LockBits {
    bits: usize,
    window: Vec<(usize, RegionAddr)>,
    head: usize,
    acquisitions: u64,
    collisions: u64,
}

impl LockBits {
    /// Creates a model with `bits` lock bits, tracking `window` concurrent
    /// transactions.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a power of two or `window` is zero.
    pub fn new(bits: usize, window: usize) -> Self {
        assert!(bits.is_power_of_two(), "lock bits must be a power of two");
        assert!(window > 0);
        Self {
            bits,
            window: Vec::with_capacity(window),
            head: 0,
            acquisitions: 0,
            collisions: 0,
        }
    }

    fn hash(&self, region: RegionAddr) -> usize {
        let mut x = region.raw();
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        (x as usize) & (self.bits - 1)
    }

    /// Records one blocking transaction on `region`; returns true if it
    /// collided with a *different* region in the window.
    pub fn acquire(&mut self, region: RegionAddr) -> bool {
        self.acquisitions += 1;
        let h = self.hash(region);
        let collided = self.window.iter().any(|&(bit, r)| bit == h && r != region);
        if collided {
            self.collisions += 1;
        }
        if self.window.len() < self.window.capacity() {
            self.window.push((h, region));
        } else {
            let cap = self.window.capacity();
            self.window[self.head] = (h, region);
            self.head = (self.head + 1) % cap;
        }
        collided
    }

    /// Blocking transactions recorded.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Cross-region collisions recorded.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Collision rate in [0, 1].
    pub fn collision_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.collisions as f64 / self.acquisitions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_region_never_collides_with_itself() {
        let mut lb = LockBits::new(1024, 8);
        let r = RegionAddr::new(42);
        for _ in 0..100 {
            assert!(!lb.acquire(r));
        }
        assert_eq!(lb.collisions(), 0);
    }

    #[test]
    fn tiny_lock_array_collides_often() {
        let mut lb = LockBits::new(2, 8);
        for i in 0..1000u64 {
            lb.acquire(RegionAddr::new(i));
        }
        assert!(lb.collision_rate() > 0.5, "rate {}", lb.collision_rate());
    }

    #[test]
    fn paper_sized_array_has_negligible_collisions() {
        // 1 K lock bits, 8-deep window of distinct hot regions: the paper's
        // "negligible collision rate" claim.
        let mut lb = LockBits::new(1024, 8);
        for i in 0..100_000u64 {
            lb.acquire(RegionAddr::new(i % 64));
        }
        assert!(lb.collision_rate() < 0.02, "rate {}", lb.collision_rate());
    }

    #[test]
    fn rate_handles_empty() {
        assert_eq!(LockBits::new(16, 4).collision_rate(), 0.0);
    }
}
