//! Metadata-hierarchy entries: MD1, MD2 and MD3 regions, presence bits, and
//! the Table II region classification.
//!
//! A *region* covers 16 adjacent cachelines. Each node tracks regions in a
//! virtually-tagged MD1 (replacing the TLB on the L1 path) backed by a
//! physically-tagged MD2; the shared MD3 tracks which nodes track each region
//! via **presence bits** (PB) and holds master locations for regions no node
//! owns privately. Exactly one of (MD1 entry, MD2 entry) holds the *active*
//! (authoritative) LI array per node — the MD2 entry's tracking pointer (TP)
//! names the active MD1 entry, if any.
//!
//! All three entry kinds store their LI array as a [`PackedLiArray`] — two
//! `u64` words at the paper's 6-bit-per-line hardware width — so the
//! replacement-cost and validity queries below are single-word SWAR
//! operations rather than 16-element enum scans.

use d2m_common::addr::{NodeId, RegionAddr};

use crate::packed::PackedLiArray;

/// Table II: region classification from the number of presence bits set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionClass {
    /// Not in MD3 at all.
    Uncached,
    /// In MD3 with no PB set: tracked only by MD3 (LLC/memory locations).
    Untracked,
    /// Exactly one PB set: that node owns the region privately; MD3's LIs
    /// are invalid and all coherence is skipped.
    Private,
    /// More than one PB set: shared; MD3's LIs are authoritative for master
    /// locations.
    Shared,
}

/// Classifies a PB mask per Table II (for a region present in MD3).
pub fn classify_pb(pb: u8) -> RegionClass {
    match pb.count_ones() {
        0 => RegionClass::Untracked,
        1 => RegionClass::Private,
        _ => RegionClass::Shared,
    }
}

/// One MD1 entry: virtually tagged (the SetAssoc key is the virtual region),
/// carrying the physical region (replacing the TLB translation) and the
/// active LI array while resident.
#[derive(Clone, Copy, Debug)]
pub struct Md1Entry {
    /// Physical region address (MD1 provides translation, paper §II-A).
    pub region: RegionAddr,
    /// Region private bit (P).
    pub private: bool,
    /// Location information, one 6-bit field per cacheline.
    pub li: PackedLiArray,
}

/// Which MD1 a region's active entry lives in (footnote 2: an MD2 field
/// records whether the active LI array is in MD1-I or MD1-D).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Md1Side {
    /// The instruction-side MD1.
    Instruction,
    /// The data-side MD1.
    Data,
}

/// Tracking pointer from an MD2 entry to its active MD1 entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrackingPtr {
    /// Which MD1 array.
    pub side: Md1Side,
    /// Set index within that MD1.
    pub set: u16,
    /// Way within the set.
    pub way: u8,
}

/// One MD2 entry: physically tagged (SetAssoc key is the physical region).
#[derive(Clone, Copy, Debug)]
pub struct Md2Entry {
    /// Region private bit (P).
    pub private: bool,
    /// Location information — authoritative only while `tp` is `None`.
    pub li: PackedLiArray,
    /// Tracking pointer to the active MD1 entry, if the region is active.
    pub tp: Option<TrackingPtr>,
    /// Whether this region's L1-resident lines live in the L1-I (footnote 2:
    /// MD2 records which MD1/L1 side a region is active on).
    pub is_icache: bool,
    /// Saturating count of memory fills observed for this region (cache-
    /// bypass predictor state — the paper's §I "attach properties to each
    /// region" flexibility; see `D2mFeatures::bypass`).
    pub fills: u8,
    /// Saturating count of LLC-level reuse hits for this region.
    pub reuse: u8,
}

impl Md2Entry {
    /// Bypass predictor (when the `bypass` feature is on): a region that has
    /// streamed many lines through memory without a single LLC reuse is not
    /// worth caching in the LLC.
    pub fn predicts_streaming(&self) -> bool {
        self.fills >= 8 && self.reuse == 0
    }
}

impl Md2Entry {
    /// Number of lines this entry tracks inside the node (L1/L2) — the
    /// region-aware MD2 replacement cost (paper §II-A prefers evicting
    /// regions with few cachelines present). A two-popcount SWAR query.
    pub fn node_resident_lines(&self) -> u64 {
        u64::from(self.li.count_node_local())
    }
}

/// One MD3 entry.
#[derive(Clone, Copy, Debug)]
pub struct Md3Entry {
    /// Presence bits: bit *n* set ⇔ node *n* has a valid MD2 entry.
    pub pb: u8,
    /// Master locations; invalid while the region is Private (the owner's
    /// MD1/MD2 is authoritative).
    pub li: PackedLiArray,
}

impl Md3Entry {
    /// Classification per Table II.
    pub fn class(&self) -> RegionClass {
        classify_pb(self.pb)
    }

    /// Nodes with the PB bit set. The bound comes from [`NodeId::MAX_NODES`]
    /// so this iteration cannot diverge from the config validator.
    pub fn pb_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..NodeId::MAX_NODES as u8)
            .filter(|n| self.pb & (1 << n) != 0)
            .map(NodeId::new)
    }

    /// Number of LIs pointing into the LLC — used by the MD3 replacement
    /// policy (prefer evicting regions with little LLC residency). A
    /// two-popcount SWAR query.
    pub fn llc_resident_lines(&self) -> u64 {
        u64::from(self.li.count_llc_resident())
    }
}

/// Simulator-resident metadata footprint: bytes held in the MD structures,
/// derived from entry sizes × configured capacities. Deterministic (pure
/// type-layout arithmetic), so the throughput harness can record it as a
/// comparable JSON field.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MetadataFootprint {
    /// All MD1 entries across both sides and all nodes.
    pub md1_bytes: u64,
    /// All MD2 entries across all nodes.
    pub md2_bytes: u64,
    /// The shared MD3's entries.
    pub md3_bytes: u64,
}

impl MetadataFootprint {
    /// Total metadata bytes.
    pub fn total(&self) -> u64 {
        self.md1_bytes + self.md2_bytes + self.md3_bytes
    }
}

/// Storage comparison from §III-A: per 16-line region across 8 nodes, D2M's
/// metadata (PB(8) + 16×LI(6)) is on par with a traditional fully-mapped
/// directory (16 × 9).
pub fn metadata_bits_per_region() -> (u32, u32) {
    let d2m = 8 + 16 * 6;
    let full_map_dir = 16 * 9;
    (d2m, full_map_dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::li::{Li, LiEncoding};
    use d2m_common::addr::LINES_PER_REGION;

    #[test]
    fn table_ii_classification() {
        assert_eq!(classify_pb(0b0000_0000), RegionClass::Untracked);
        assert_eq!(classify_pb(0b0000_0100), RegionClass::Private);
        assert_eq!(classify_pb(0b0000_0101), RegionClass::Shared);
        assert_eq!(classify_pb(0b1111_1111), RegionClass::Shared);
    }

    #[test]
    fn md3_pb_nodes_enumeration() {
        let e = Md3Entry {
            pb: 0b1000_0010,
            li: PackedLiArray::MEM,
        };
        let nodes: Vec<u8> = e.pb_nodes().map(|n| n.raw()).collect();
        assert_eq!(nodes, vec![1, 7]);
        assert_eq!(e.class(), RegionClass::Shared);
    }

    #[test]
    fn pb_nodes_bound_matches_pb_field_width() {
        // Every bit of the u8 PB field must be visited: a full mask names
        // exactly MAX_NODES nodes.
        let e = Md3Entry {
            pb: u8::MAX,
            li: PackedLiArray::INVALID,
        };
        assert_eq!(e.pb_nodes().count(), NodeId::MAX_NODES);
    }

    #[test]
    fn resident_line_costs() {
        let enc = LiEncoding::FarSide;
        let mut li = [Li::Mem; LINES_PER_REGION];
        li[0] = Li::L1 { way: 0 };
        li[1] = Li::L2 { way: 3 };
        li[2] = Li::LlcFs { way: 9 };
        let li = PackedLiArray::from_array(&li, enc);
        let md2 = Md2Entry {
            private: true,
            li,
            tp: None,
            is_icache: false,
            fills: 0,
            reuse: 0,
        };
        assert_eq!(md2.node_resident_lines(), 2);
        let md3 = Md3Entry { pb: 0, li };
        assert_eq!(md3.llc_resident_lines(), 1);
    }

    #[test]
    fn storage_is_on_par_with_full_map_directory() {
        let (d2m, dir) = metadata_bits_per_region();
        assert_eq!(d2m, 104);
        assert_eq!(dir, 144);
        assert!(d2m <= dir, "paper §III-A: on par or better");
    }

    #[test]
    fn entries_shrank_to_near_hardware_width() {
        // The point of the packing: entry sizes are now dominated by the two
        // LI words, not enum padding. Guard against regressions.
        assert!(std::mem::size_of::<Md2Entry>() <= 32);
        assert!(std::mem::size_of::<Md3Entry>() <= 24);
        assert!(std::mem::size_of::<Md1Entry>() <= 32);
    }
}
