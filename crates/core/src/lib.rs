//! Direct-to-Master (D2M): a split metadata/data cache hierarchy.
//!
//! Reproduction of *A Split Cache Hierarchy for Enabling Data-oriented
//! Optimizations* (Sembrant, Hagersten, Black-Schaffer — HPCA 2017).
//!
//! D2M splits the cache hierarchy in two:
//!
//! * a **metadata hierarchy** — per-node MD1 (virtually tagged, replacing
//!   the TLB on the L1 path) and MD2 (physically tagged), plus a shared MD3
//!   with per-region presence bits — that tracks, per 16-line region, a
//!   6-bit [`li::Li`] location pointer per cacheline;
//! * a **data hierarchy** of tag-less SRAM arrays (L1s and LLC slices) whose
//!   lines carry only a replacement pointer ([`data::DataLine::rp`]).
//!
//! Because the metadata is *deterministic* (an LI always names a slot that
//! holds valid data), nodes access masters directly — no level-by-level
//! searches, no tag comparisons, and no directory indirection for ~90% of
//! misses. Region classification from the presence bits then enables the
//! paper's data-oriented optimizations, all implemented here: dynamic
//! coherence for private regions, the near-side LLC with pressure-based
//! placement (§IV-B), cooperative replication (§IV-C), dynamic index
//! scrambling (§IV-D), and MD2 pruning (§IV-A).
//!
//! # Example
//!
//! ```
//! use d2m_core::{D2mSystem, D2mVariant};
//! use d2m_common::MachineConfig;
//! use d2m_workloads::{catalog, TraceGen};
//!
//! let cfg = MachineConfig::default();
//! let mut sys = D2mSystem::new(&cfg, D2mVariant::NearSideRepl);
//! let mut gen = TraceGen::new(&catalog::by_name("swaptions").unwrap(), 8, 1);
//! let mut batch = Vec::new();
//! gen.next_batch(&mut batch);
//! for a in &batch {
//!     sys.access(a, 0).unwrap();
//! }
//! assert_eq!(sys.coherence_errors(), 0);
//! sys.check_invariants().unwrap();
//! ```

pub mod counters;
pub mod data;
pub mod error;
pub mod invariants;
pub mod li;
pub mod lockbits;
pub mod meta;
pub mod packed;
pub mod protocol;
pub mod system;

#[cfg(test)]
mod tests;

pub use counters::{D2mCounters, ProtocolEvents};
pub use error::ProtocolError;
pub use li::{Li, LiEncoding};
pub use lockbits::LockBits;
pub use meta::{classify_pb, MetadataFootprint, RegionClass};
pub use packed::PackedLiArray;
pub use system::{D2mFeatures, D2mSystem, D2mVariant};

use d2m_common::addr::LineOffset;

/// Converts a 0..16 metadata LI index into a [`LineOffset`].
pub(crate) fn meta_line_offset(off: usize) -> LineOffset {
    LineOffset::new(off as u8)
}
