//! CACTI-magnitude energy model and EDP accounting (paper §V-A/§V-C).
//!
//! The paper estimates energy with CACTI 6.0 / McPAT at 22 nm and reports
//! **cache-hierarchy EDP normalized to Base-2L** (Figure 6), split into
//! *standard* structures (darker bars: caches, tags, TLB, directory, NoC)
//! and *D2M-only* structures (lighter bars: the location trackers MD1/2/3).
//!
//! Absolute joules are irrelevant for the normalized figure; what matters is
//! that per-access energies have realistic magnitude *ratios* (an LLC access
//! costs several L1 accesses, a NoC data crossing costs more than a header,
//! metadata arrays are far smaller than the tags+TLB they replace). The
//! default [`EnergyModel`] encodes those ratios; every value is documented
//! and overridable.
//!
//! # Example
//!
//! ```
//! use d2m_energy::{EnergyAccount, EnergyEvent, EnergyModel};
//!
//! let model = EnergyModel::default();
//! let mut acc = EnergyAccount::new(model);
//! acc.record(EnergyEvent::L1Array, 1);
//! acc.record(EnergyEvent::Md1, 1);
//! assert!(acc.dynamic_pj() > 0.0);
//! let edp = acc.edp(1_000);
//! assert!(edp > 0.0);
//! ```

use d2m_common::impl_json_struct;

/// A dynamic energy event, one per structure access or message.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EnergyEvent {
    /// One 64 B L1 data/instruction array way read or write.
    L1Array,
    /// One L1 tag way comparison (baselines pay `ways` of these on a search
    /// without way prediction; Base-2L's perfect way prediction pays 1).
    L1TagWay,
    /// One L2 array access (Base-3L private L2).
    L2Array,
    /// One L2 tag way comparison.
    L2TagWay,
    /// One far-side LLC bank access.
    LlcArray,
    /// One LLC tag way comparison.
    LlcTagWay,
    /// One near-side LLC slice access.
    NsSliceArray,
    /// One TLB lookup.
    Tlb,
    /// One baseline directory lookup/update.
    Directory,
    /// One NoC message header traversal.
    NocHeader,
    /// One NoC 64 B data traversal.
    NocData,
    /// One off-chip memory access (read or write).
    Mem,
    /// One MD1 lookup/update (D2M-only).
    Md1,
    /// One MD2 lookup/update (D2M-only).
    Md2,
    /// One MD3 lookup/update (D2M-only).
    Md3,
}

/// Number of distinct energy events.
pub const ENERGY_EVENTS: usize = 15;

impl EnergyEvent {
    /// All events, in a stable order.
    pub const ALL: [EnergyEvent; ENERGY_EVENTS] = [
        EnergyEvent::L1Array,
        EnergyEvent::L1TagWay,
        EnergyEvent::L2Array,
        EnergyEvent::L2TagWay,
        EnergyEvent::LlcArray,
        EnergyEvent::LlcTagWay,
        EnergyEvent::NsSliceArray,
        EnergyEvent::Tlb,
        EnergyEvent::Directory,
        EnergyEvent::NocHeader,
        EnergyEvent::NocData,
        EnergyEvent::Mem,
        EnergyEvent::Md1,
        EnergyEvent::Md2,
        EnergyEvent::Md3,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            EnergyEvent::L1Array => "l1_array",
            EnergyEvent::L1TagWay => "l1_tag",
            EnergyEvent::L2Array => "l2_array",
            EnergyEvent::L2TagWay => "l2_tag",
            EnergyEvent::LlcArray => "llc_array",
            EnergyEvent::LlcTagWay => "llc_tag",
            EnergyEvent::NsSliceArray => "ns_slice",
            EnergyEvent::Tlb => "tlb",
            EnergyEvent::Directory => "directory",
            EnergyEvent::NocHeader => "noc_header",
            EnergyEvent::NocData => "noc_data",
            EnergyEvent::Mem => "mem_ctrl",
            EnergyEvent::Md1 => "md1",
            EnergyEvent::Md2 => "md2",
            EnergyEvent::Md3 => "md3",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|e| *e == self).expect("in ALL")
    }

    /// True for the structures that exist only in D2M (Figure 6's lighter
    /// bars).
    pub fn is_d2m_only(self) -> bool {
        matches!(self, EnergyEvent::Md1 | EnergyEvent::Md2 | EnergyEvent::Md3)
    }
}

/// Per-event dynamic energies (pJ) and leakage parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// pJ per [`EnergyEvent::L1Array`].
    pub l1_array_pj: f64,
    /// pJ per [`EnergyEvent::L1TagWay`].
    pub l1_tag_way_pj: f64,
    /// pJ per [`EnergyEvent::L2Array`].
    pub l2_array_pj: f64,
    /// pJ per [`EnergyEvent::L2TagWay`].
    pub l2_tag_way_pj: f64,
    /// pJ per [`EnergyEvent::LlcArray`].
    pub llc_array_pj: f64,
    /// pJ per [`EnergyEvent::LlcTagWay`].
    pub llc_tag_way_pj: f64,
    /// pJ per [`EnergyEvent::NsSliceArray`].
    pub ns_slice_pj: f64,
    /// pJ per [`EnergyEvent::Tlb`].
    pub tlb_pj: f64,
    /// pJ per [`EnergyEvent::Directory`].
    pub directory_pj: f64,
    /// pJ per [`EnergyEvent::NocHeader`].
    pub noc_header_pj: f64,
    /// pJ per [`EnergyEvent::NocData`].
    pub noc_data_pj: f64,
    /// pJ per [`EnergyEvent::Mem`].
    pub mem_pj: f64,
    /// pJ per [`EnergyEvent::Md1`].
    pub md1_pj: f64,
    /// pJ per [`EnergyEvent::Md2`].
    pub md2_pj: f64,
    /// pJ per [`EnergyEvent::Md3`].
    pub md3_pj: f64,
    /// Leakage, pJ per KB of standard SRAM per cycle.
    pub leak_pj_per_kb_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // 22 nm CACTI-magnitude values; see module docs for why only the
        // ratios matter. Tag comparisons include the comparator; the MD
        // arrays are small (128 / 4 K / 16 K regions × ~14 B).
        Self {
            l1_array_pj: 12.0,
            l1_tag_way_pj: 1.2,
            l2_array_pj: 30.0,
            l2_tag_way_pj: 1.6,
            llc_array_pj: 65.0,
            llc_tag_way_pj: 2.0,
            ns_slice_pj: 34.0,
            tlb_pj: 2.5,
            directory_pj: 28.0,
            noc_header_pj: 9.0,
            noc_data_pj: 62.0,
            // On-chip memory-controller/PHY cost per access; DRAM core
            // energy is outside the "cache hierarchy EDP" the paper reports.
            mem_pj: 380.0,
            md1_pj: 2.0,
            md2_pj: 9.0,
            md3_pj: 26.0,
            leak_pj_per_kb_cycle: 0.006,
        }
    }
}

impl_json_struct!(EnergyModel {
    l1_array_pj,
    l1_tag_way_pj,
    l2_array_pj,
    l2_tag_way_pj,
    llc_array_pj,
    llc_tag_way_pj,
    ns_slice_pj,
    tlb_pj,
    directory_pj,
    noc_header_pj,
    noc_data_pj,
    mem_pj,
    md1_pj,
    md2_pj,
    md3_pj,
    leak_pj_per_kb_cycle,
});

impl EnergyModel {
    /// Dynamic energy of one event in pJ.
    pub fn event_pj(&self, e: EnergyEvent) -> f64 {
        match e {
            EnergyEvent::L1Array => self.l1_array_pj,
            EnergyEvent::L1TagWay => self.l1_tag_way_pj,
            EnergyEvent::L2Array => self.l2_array_pj,
            EnergyEvent::L2TagWay => self.l2_tag_way_pj,
            EnergyEvent::LlcArray => self.llc_array_pj,
            EnergyEvent::LlcTagWay => self.llc_tag_way_pj,
            EnergyEvent::NsSliceArray => self.ns_slice_pj,
            EnergyEvent::Tlb => self.tlb_pj,
            EnergyEvent::Directory => self.directory_pj,
            EnergyEvent::NocHeader => self.noc_header_pj,
            EnergyEvent::NocData => self.noc_data_pj,
            EnergyEvent::Mem => self.mem_pj,
            EnergyEvent::Md1 => self.md1_pj,
            EnergyEvent::Md2 => self.md2_pj,
            EnergyEvent::Md3 => self.md3_pj,
        }
    }
}

/// Accumulates dynamic and static energy for one simulated system.
#[derive(Clone, Debug)]
pub struct EnergyAccount {
    model: EnergyModel,
    dynamic_std_pj: f64,
    dynamic_d2m_pj: f64,
    static_pj: f64,
    by_event_pj: [f64; ENERGY_EVENTS],
}

impl EnergyAccount {
    /// Creates an empty account using `model`.
    pub fn new(model: EnergyModel) -> Self {
        Self {
            model,
            dynamic_std_pj: 0.0,
            dynamic_d2m_pj: 0.0,
            static_pj: 0.0,
            by_event_pj: [0.0; ENERGY_EVENTS],
        }
    }

    /// Records `count` occurrences of `event`.
    #[inline]
    pub fn record(&mut self, event: EnergyEvent, count: u64) {
        let pj = self.model.event_pj(event) * count as f64;
        self.by_event_pj[event.index()] += pj;
        if event.is_d2m_only() {
            self.dynamic_d2m_pj += pj;
        } else {
            self.dynamic_std_pj += pj;
        }
    }

    /// Dynamic energy recorded for one event class (pJ) — the per-structure
    /// split behind Figure 6's stacked bars.
    pub fn event_pj_total(&self, event: EnergyEvent) -> f64 {
        self.by_event_pj[event.index()]
    }

    /// Per-structure dynamic-energy breakdown, largest first.
    pub fn breakdown(&self) -> Vec<(EnergyEvent, f64)> {
        let mut v: Vec<(EnergyEvent, f64)> = EnergyEvent::ALL
            .iter()
            .map(|e| (*e, self.by_event_pj[e.index()]))
            .filter(|(_, pj)| *pj > 0.0)
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    /// Per-structure dynamic-energy breakdown as deterministic JSON.
    ///
    /// Events appear in [`EnergyEvent::ALL`] order (not sorted by magnitude),
    /// zero rows omitted, so equal accounts serialize byte-identically.
    pub fn breakdown_json(&self) -> d2m_common::json::Json {
        use d2m_common::json::Json;
        let rows = EnergyEvent::ALL
            .iter()
            .filter(|e| self.by_event_pj[e.index()] > 0.0)
            .map(|e| (e.name().to_string(), Json::F64(self.by_event_pj[e.index()])))
            .collect();
        Json::Obj(rows)
    }

    /// Charges leakage for `sram_kb` kilobytes of (standard) SRAM over
    /// `cycles` cycles.
    pub fn charge_leakage(&mut self, sram_kb: f64, cycles: u64) {
        self.static_pj += self.model.leak_pj_per_kb_cycle * sram_kb * cycles as f64;
    }

    /// Total dynamic energy (pJ).
    pub fn dynamic_pj(&self) -> f64 {
        self.dynamic_std_pj + self.dynamic_d2m_pj
    }

    /// Dynamic energy of standard structures (pJ) — Figure 6's darker bars.
    pub fn dynamic_std_pj(&self) -> f64 {
        self.dynamic_std_pj
    }

    /// Dynamic energy of D2M-only structures (pJ) — Figure 6's lighter bars.
    pub fn dynamic_d2m_pj(&self) -> f64 {
        self.dynamic_d2m_pj
    }

    /// Static (leakage) energy (pJ).
    pub fn static_pj(&self) -> f64 {
        self.static_pj
    }

    /// Total energy (pJ).
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj() + self.static_pj
    }

    /// Energy-delay product in pJ·cycles for an execution of `cycles`.
    pub fn edp(&self, cycles: u64) -> f64 {
        self.total_pj() * cycles as f64
    }

    /// The model in use.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_ratios_are_sane() {
        let m = EnergyModel::default();
        // An LLC access costs several L1 accesses.
        assert!(m.llc_array_pj > 3.0 * m.l1_array_pj);
        // The MD1 replaces TLB1+L1 tags and must be cheaper than them.
        assert!(m.md1_pj < m.tlb_pj + 8.0 * m.l1_tag_way_pj);
        // NS slice cheaper than far LLC bank.
        assert!(m.ns_slice_pj < m.llc_array_pj);
        // Data crossing dwarfs a header.
        assert!(m.noc_data_pj > 4.0 * m.noc_header_pj);
    }

    #[test]
    fn record_splits_std_and_d2m() {
        let mut a = EnergyAccount::new(EnergyModel::default());
        a.record(EnergyEvent::L1Array, 2);
        a.record(EnergyEvent::Md2, 3);
        assert!(a.dynamic_std_pj() > 0.0);
        assert!(a.dynamic_d2m_pj() > 0.0);
        assert_eq!(a.dynamic_pj(), a.dynamic_std_pj() + a.dynamic_d2m_pj());
    }

    #[test]
    fn leakage_scales_with_capacity_and_time() {
        let mut a = EnergyAccount::new(EnergyModel::default());
        a.charge_leakage(1024.0, 1000);
        let one = a.static_pj();
        a.charge_leakage(1024.0, 1000);
        assert!((a.static_pj() - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn edp_is_energy_times_delay() {
        let mut a = EnergyAccount::new(EnergyModel::default());
        a.record(EnergyEvent::Mem, 1);
        let e = a.total_pj();
        assert!((a.edp(10) - e * 10.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_tracks_per_event_energy() {
        let mut a = EnergyAccount::new(EnergyModel::default());
        a.record(EnergyEvent::L1Array, 3);
        a.record(EnergyEvent::Md3, 2);
        let b = a.breakdown();
        assert_eq!(b.len(), 2);
        assert!(b[0].1 >= b[1].1, "sorted descending");
        assert!((a.event_pj_total(EnergyEvent::L1Array) - 36.0).abs() < 1e-9);
        let sum: f64 = b.iter().map(|(_, pj)| pj).sum();
        assert!((sum - a.dynamic_pj()).abs() < 1e-9);
    }

    #[test]
    fn event_names_are_unique() {
        let mut names: Vec<_> = EnergyEvent::ALL.iter().map(|e| e.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ENERGY_EVENTS);
    }

    #[test]
    fn every_event_has_positive_energy() {
        let m = EnergyModel::default();
        for e in [
            EnergyEvent::L1Array,
            EnergyEvent::L1TagWay,
            EnergyEvent::L2Array,
            EnergyEvent::L2TagWay,
            EnergyEvent::LlcArray,
            EnergyEvent::LlcTagWay,
            EnergyEvent::NsSliceArray,
            EnergyEvent::Tlb,
            EnergyEvent::Directory,
            EnergyEvent::NocHeader,
            EnergyEvent::NocData,
            EnergyEvent::Mem,
            EnergyEvent::Md1,
            EnergyEvent::Md2,
            EnergyEvent::Md3,
        ] {
            assert!(m.event_pj(e) > 0.0, "{e:?}");
        }
    }
}
