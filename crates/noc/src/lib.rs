//! On-chip interconnect model.
//!
//! The paper's evaluation charges every protocol hop that crosses the
//! interconnect (node ↔ far side, node ↔ node, node ↔ remote NS-slice) and
//! reports **network traffic in messages per 1000 instructions** (Figure 5),
//! split into *basic* coherence traffic and *D2M-specific* traffic (MD2
//! spill/fill, NewMaster updates, …). This crate provides exactly that
//! accounting: a [`MsgClass`] taxonomy with per-class payload sizes and the
//! basic/D2M-specific split, and a [`Noc`] accumulator that returns the hop
//! latency for each send.
//!
//! # Example
//!
//! ```
//! use d2m_noc::{Endpoint, MsgClass, Noc};
//! use d2m_common::addr::NodeId;
//!
//! let mut noc = Noc::new(16);
//! let lat = noc.send(MsgClass::ReadReq, Endpoint::Node(NodeId::new(0)), Endpoint::FarSide);
//! assert_eq!(lat, 16);
//! assert_eq!(noc.messages(), 1);
//! ```

use d2m_common::addr::NodeId;
use d2m_common::json::{Json, ToJson};
use d2m_common::stats::Counters;

/// One end of an interconnect message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Endpoint {
    /// A core node (with its private caches / NS slice).
    Node(NodeId),
    /// The far side of the interconnect: shared LLC, directory/MD3, memory
    /// controller.
    FarSide,
}

/// Message classes used by the baselines and D2M.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum MsgClass {
    // --- basic data-coherence traffic (both baselines and D2M) ---
    /// Read request (baseline: to directory; D2M: DirectRead to a master).
    ReadReq,
    /// Read-exclusive / write-miss request.
    ReadExReq,
    /// Ownership upgrade for a line already held shared.
    UpgradeReq,
    /// Data reply carrying one cacheline.
    DataReply,
    /// Control acknowledgement.
    Ack,
    /// Invalidation request.
    Inv,
    /// Request forwarded to a remote owner node.
    Fwd,
    /// Dirty-data writeback (to LLC victim slot or memory).
    WbData,
    /// Memory read issued by the far side (off-chip; counted separately).
    MemRead,
    /// Memory write issued by the far side (off-chip; counted separately).
    MemWrite,
    // --- D2M-specific metadata traffic (lighter bars in Figure 5) ---
    /// Blocking read-metadata-miss request to MD3 (case D).
    ReadMM,
    /// Blocking read-exclusive to MD3 for shared regions (case C).
    ReadEx,
    /// MD3 asks the single owner for its region metadata (case D2).
    GetMd,
    /// Region metadata reply (MD3 → node fill, or node → MD3 upload).
    MdReply,
    /// MD2 spill: evicted region metadata uploaded to MD3.
    Md2Spill,
    /// New-master update multicast on shared-region master eviction (case F).
    NewMaster,
    /// Eviction request to MD3 (case F).
    EvictReq,
    /// Unblock message completing a blocking MD3 transaction.
    Done,
    /// Replacement-pointer fix-up when a victim slot disappears.
    RpFix,
    /// Periodic NS-LLC pressure exchange (placement policy, §IV-B).
    Pressure,
}

/// Number of distinct message classes.
pub const MSG_CLASSES: usize = 20;

impl MsgClass {
    /// All classes, in `repr` order.
    pub const ALL: [MsgClass; MSG_CLASSES] = [
        MsgClass::ReadReq,
        MsgClass::ReadExReq,
        MsgClass::UpgradeReq,
        MsgClass::DataReply,
        MsgClass::Ack,
        MsgClass::Inv,
        MsgClass::Fwd,
        MsgClass::WbData,
        MsgClass::MemRead,
        MsgClass::MemWrite,
        MsgClass::ReadMM,
        MsgClass::ReadEx,
        MsgClass::GetMd,
        MsgClass::MdReply,
        MsgClass::Md2Spill,
        MsgClass::NewMaster,
        MsgClass::EvictReq,
        MsgClass::Done,
        MsgClass::RpFix,
        MsgClass::Pressure,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            MsgClass::ReadReq => "read_req",
            MsgClass::ReadExReq => "readex_req",
            MsgClass::UpgradeReq => "upgrade_req",
            MsgClass::DataReply => "data_reply",
            MsgClass::Ack => "ack",
            MsgClass::Inv => "inv",
            MsgClass::Fwd => "fwd",
            MsgClass::WbData => "wb_data",
            MsgClass::MemRead => "mem_read",
            MsgClass::MemWrite => "mem_write",
            MsgClass::ReadMM => "read_mm",
            MsgClass::ReadEx => "read_ex",
            MsgClass::GetMd => "get_md",
            MsgClass::MdReply => "md_reply",
            MsgClass::Md2Spill => "md2_spill",
            MsgClass::NewMaster => "new_master",
            MsgClass::EvictReq => "evict_req",
            MsgClass::Done => "done",
            MsgClass::RpFix => "rp_fix",
            MsgClass::Pressure => "pressure",
        }
    }

    /// Payload bytes beyond the 8-byte header.
    pub fn payload_bytes(self) -> u32 {
        match self {
            MsgClass::DataReply | MsgClass::WbData | MsgClass::MemRead | MsgClass::MemWrite => 64,
            // Region metadata: 16 LIs × 6 bits + tag/PB ≈ 16 bytes.
            MsgClass::MdReply | MsgClass::Md2Spill => 16,
            _ => 0,
        }
    }

    /// True for metadata-hierarchy traffic that only exists in D2M
    /// (the lighter bars of Figure 5).
    pub fn is_d2m_specific(self) -> bool {
        matches!(
            self,
            MsgClass::ReadMM
                | MsgClass::ReadEx
                | MsgClass::GetMd
                | MsgClass::MdReply
                | MsgClass::Md2Spill
                | MsgClass::NewMaster
                | MsgClass::EvictReq
                | MsgClass::Done
                | MsgClass::RpFix
                | MsgClass::Pressure
        )
    }

    /// True for off-chip memory-controller traffic, which Figure 5 does not
    /// count as on-chip network messages.
    pub fn is_offchip(self) -> bool {
        matches!(self, MsgClass::MemRead | MsgClass::MemWrite)
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Per-message-class source→destination traffic counts.
///
/// Endpoints are indexed `0..nodes` for [`Endpoint::Node`] and `nodes` for
/// [`Endpoint::FarSide`]. Off by default — a [`Noc`] without a matrix does
/// exactly the pre-observability work — and enabled per run with
/// [`Noc::enable_matrix`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficMatrix {
    nodes: usize,
    /// `counts[class][from * (nodes + 1) + to]`, class-major.
    counts: Vec<Vec<u64>>,
}

impl TrafficMatrix {
    /// Creates an all-zero matrix for `nodes` core nodes plus the far side.
    pub fn new(nodes: usize) -> Self {
        let endpoints = nodes + 1;
        Self {
            nodes,
            counts: vec![vec![0; endpoints * endpoints]; MSG_CLASSES],
        }
    }

    fn endpoint_index(&self, ep: Endpoint) -> usize {
        match ep {
            Endpoint::Node(n) => n.index().min(self.nodes),
            Endpoint::FarSide => self.nodes,
        }
    }

    #[inline]
    fn record(&mut self, class: MsgClass, from: Endpoint, to: Endpoint) {
        let f = self.endpoint_index(from);
        let t = self.endpoint_index(to);
        self.counts[class.idx()][f * (self.nodes + 1) + t] += 1;
    }

    /// Number of core nodes (the far side is one extra endpoint).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Count for `(class, from, to)`.
    pub fn count(&self, class: MsgClass, from: Endpoint, to: Endpoint) -> u64 {
        let f = self.endpoint_index(from);
        let t = self.endpoint_index(to);
        self.counts[class.idx()][f * (self.nodes + 1) + t]
    }

    /// Total messages recorded across all classes and endpoint pairs.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Adds another matrix's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn merge(&mut self, other: &TrafficMatrix) {
        assert_eq!(self.nodes, other.nodes, "matrix shapes must match");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }
}

impl ToJson for TrafficMatrix {
    /// Deterministic sparse rendering: only non-zero entries, in class-major
    /// then `(from, to)` order, as `{"class": [[from, to, count], ...]}`.
    /// Endpoint index `nodes` denotes the far side.
    fn to_json(&self) -> Json {
        let endpoints = self.nodes + 1;
        let mut classes = Vec::new();
        for class in MsgClass::ALL {
            let row = &self.counts[class.idx()];
            let entries: Vec<Json> = (0..endpoints)
                .flat_map(|f| (0..endpoints).map(move |t| (f, t)))
                .filter(|&(f, t)| row[f * endpoints + t] != 0)
                .map(|(f, t)| {
                    Json::Arr(vec![
                        Json::U64(f as u64),
                        Json::U64(t as u64),
                        Json::U64(row[f * endpoints + t]),
                    ])
                })
                .collect();
            if !entries.is_empty() {
                classes.push((class.name().to_string(), Json::Arr(entries)));
            }
        }
        Json::Obj(vec![
            ("nodes".to_string(), Json::U64(self.nodes as u64)),
            ("classes".to_string(), Json::Obj(classes)),
        ])
    }
}

/// Interconnect accumulator: counts messages and bytes, returns hop latency.
#[derive(Clone, Debug)]
pub struct Noc {
    hop_latency: u64,
    counts: [u64; MSG_CLASSES],
    header_bytes: u64,
    data_bytes: u64,
    matrix: Option<TrafficMatrix>,
}

impl Noc {
    /// Creates an accumulator with the given single-traversal latency.
    pub fn new(hop_latency: u64) -> Self {
        Self {
            hop_latency,
            counts: [0; MSG_CLASSES],
            header_bytes: 0,
            data_bytes: 0,
            matrix: None,
        }
    }

    /// Turns on per-class source→destination traffic attribution for `nodes`
    /// core nodes. Costs one branch per send when off, one vector increment
    /// when on; aggregate counts are unaffected either way.
    pub fn enable_matrix(&mut self, nodes: usize) {
        self.matrix = Some(TrafficMatrix::new(nodes));
    }

    /// The traffic matrix, when enabled.
    pub fn matrix(&self) -> Option<&TrafficMatrix> {
        self.matrix.as_ref()
    }

    /// Records a message and returns its latency contribution in cycles.
    ///
    /// Messages between a node and itself (e.g. an access to the local NS
    /// slice) cost nothing and are not counted — that is precisely the
    /// near-side advantage.
    pub fn send(&mut self, class: MsgClass, from: Endpoint, to: Endpoint) -> u64 {
        if from == to {
            return 0;
        }
        self.counts[class.idx()] += 1;
        self.header_bytes += 8;
        self.data_bytes += class.payload_bytes() as u64;
        if let Some(m) = self.matrix.as_mut() {
            m.record(class, from, to);
        }
        if class.is_offchip() {
            0 // charged via the memory latency, not a NoC hop
        } else {
            self.hop_latency
        }
    }

    /// Records an off-chip memory access (read or write). Off-chip traffic
    /// has no NoC endpoints and no hop latency — the memory latency is
    /// charged by the caller — but is counted for energy accounting.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not an off-chip class.
    pub fn offchip(&mut self, class: MsgClass) {
        assert!(class.is_offchip(), "{class:?} is not off-chip");
        self.counts[class.idx()] += 1;
        self.header_bytes += 8;
        self.data_bytes += class.payload_bytes() as u64;
    }

    /// Records a multicast from `from` to every endpoint in `to`, returning
    /// the latency of the slowest leg (legs are parallel).
    pub fn multicast<I>(&mut self, class: MsgClass, from: Endpoint, to: I) -> u64
    where
        I: IntoIterator<Item = Endpoint>,
    {
        let mut worst = 0;
        for t in to {
            worst = worst.max(self.send(class, from, t));
        }
        worst
    }

    /// Total on-chip messages (off-chip memory traffic excluded).
    pub fn messages(&self) -> u64 {
        MsgClass::ALL
            .iter()
            .filter(|c| !c.is_offchip())
            .map(|c| self.counts[c.idx()])
            .sum()
    }

    /// On-chip messages from D2M-specific classes.
    pub fn d2m_messages(&self) -> u64 {
        MsgClass::ALL
            .iter()
            .filter(|c| c.is_d2m_specific() && !c.is_offchip())
            .map(|c| self.counts[c.idx()])
            .sum()
    }

    /// Count for one class.
    pub fn count(&self, class: MsgClass) -> u64 {
        self.counts[class.idx()]
    }

    /// Total bytes moved on-chip (headers + payloads, memory traffic
    /// excluded).
    pub fn onchip_bytes(&self) -> u64 {
        let off: u64 = [MsgClass::MemRead, MsgClass::MemWrite]
            .iter()
            .map(|c| self.counts[c.idx()] * (8 + c.payload_bytes() as u64))
            .sum();
        self.header_bytes + self.data_bytes - off
    }

    /// Data-only bytes moved on-chip (the paper's "data traffic" metric).
    pub fn onchip_data_bytes(&self) -> u64 {
        MsgClass::ALL
            .iter()
            .filter(|c| !c.is_offchip())
            .map(|c| self.counts[c.idx()] * c.payload_bytes() as u64)
            .sum()
    }

    /// Hop latency parameter.
    pub fn hop_latency(&self) -> u64 {
        self.hop_latency
    }

    /// Snapshot as named counters (`msg.<class>` plus aggregates).
    pub fn counters(&self) -> Counters {
        let mut c = Counters::new();
        for class in MsgClass::ALL {
            c.set(format!("msg.{}", class.name()), self.counts[class.idx()]);
        }
        c.set("msg_total", self.messages());
        c.set("msg_d2m", self.d2m_messages());
        c.set("bytes_onchip", self.onchip_bytes());
        c.set("bytes_data", self.onchip_data_bytes());
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u8) -> Endpoint {
        Endpoint::Node(NodeId::new(i))
    }

    #[test]
    fn send_counts_and_latency() {
        let mut noc = Noc::new(10);
        assert_eq!(noc.send(MsgClass::ReadReq, n(0), Endpoint::FarSide), 10);
        assert_eq!(noc.send(MsgClass::DataReply, Endpoint::FarSide, n(0)), 10);
        assert_eq!(noc.messages(), 2);
        assert_eq!(noc.count(MsgClass::ReadReq), 1);
    }

    #[test]
    fn local_send_is_free_and_uncounted() {
        let mut noc = Noc::new(10);
        assert_eq!(noc.send(MsgClass::ReadReq, n(3), n(3)), 0);
        assert_eq!(noc.messages(), 0);
        assert_eq!(noc.onchip_bytes(), 0);
    }

    #[test]
    fn multicast_counts_each_leg_once() {
        let mut noc = Noc::new(7);
        let lat = noc.multicast(MsgClass::Inv, Endpoint::FarSide, (0..4).map(n));
        assert_eq!(lat, 7, "legs are parallel");
        assert_eq!(noc.count(MsgClass::Inv), 4);
    }

    #[test]
    fn byte_accounting_distinguishes_payloads() {
        let mut noc = Noc::new(1);
        noc.send(MsgClass::ReadReq, n(0), Endpoint::FarSide); // 8 B
        noc.send(MsgClass::DataReply, Endpoint::FarSide, n(0)); // 72 B
        noc.send(MsgClass::MdReply, Endpoint::FarSide, n(0)); // 24 B
        assert_eq!(noc.onchip_bytes(), 8 + 72 + 24);
        assert_eq!(noc.onchip_data_bytes(), 64 + 16);
    }

    #[test]
    fn offchip_traffic_not_in_message_count() {
        let mut noc = Noc::new(5);
        assert_eq!(
            noc.send(MsgClass::MemRead, Endpoint::FarSide, Endpoint::FarSide),
            0
        );
        let lat = noc.send(MsgClass::MemWrite, n(0), Endpoint::FarSide);
        assert_eq!(lat, 0, "memory latency is charged separately");
        assert_eq!(noc.messages(), 0);
        assert_eq!(noc.onchip_bytes(), 0);
    }

    #[test]
    fn d2m_specific_split() {
        let mut noc = Noc::new(1);
        noc.send(MsgClass::ReadReq, n(0), Endpoint::FarSide);
        noc.send(MsgClass::ReadMM, n(0), Endpoint::FarSide);
        noc.send(MsgClass::NewMaster, Endpoint::FarSide, n(1));
        assert_eq!(noc.messages(), 3);
        assert_eq!(noc.d2m_messages(), 2);
    }

    #[test]
    fn node_to_node_costs_one_hop() {
        let mut noc = Noc::new(9);
        assert_eq!(noc.send(MsgClass::Fwd, n(0), n(5)), 9);
    }

    #[test]
    fn counters_snapshot_has_all_classes() {
        let mut noc = Noc::new(1);
        noc.send(MsgClass::Ack, n(0), n(1));
        let c = noc.counters();
        assert_eq!(c.get("msg.ack"), 1);
        assert_eq!(c.get("msg_total"), 1);
        assert!(c.len() >= MSG_CLASSES);
    }

    #[test]
    fn matrix_is_off_by_default_and_free() {
        let mut plain = Noc::new(4);
        let mut probed = Noc::new(4);
        probed.enable_matrix(8);
        for noc in [&mut plain, &mut probed] {
            noc.send(MsgClass::ReadReq, n(0), Endpoint::FarSide);
            noc.send(MsgClass::DataReply, Endpoint::FarSide, n(0));
            noc.send(MsgClass::Fwd, n(1), n(2));
        }
        assert!(plain.matrix().is_none());
        // Aggregate accounting is identical with the matrix on.
        assert_eq!(plain.counters(), probed.counters());
    }

    #[test]
    fn matrix_attributes_source_and_destination() {
        let mut noc = Noc::new(4);
        noc.enable_matrix(8);
        noc.send(MsgClass::ReadReq, n(0), Endpoint::FarSide);
        noc.send(MsgClass::ReadReq, n(0), Endpoint::FarSide);
        noc.send(MsgClass::Fwd, n(1), n(2));
        noc.send(MsgClass::Fwd, n(3), n(3)); // local: free, unrecorded
        let m = noc.matrix().unwrap();
        assert_eq!(m.count(MsgClass::ReadReq, n(0), Endpoint::FarSide), 2);
        assert_eq!(m.count(MsgClass::Fwd, n(1), n(2)), 1);
        assert_eq!(m.count(MsgClass::Fwd, n(3), n(3)), 0);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn matrix_merge_and_json_are_deterministic() {
        use d2m_common::json::ToJson;
        let mut a = TrafficMatrix::new(4);
        let mut b = TrafficMatrix::new(4);
        a.record(MsgClass::Inv, Endpoint::FarSide, n(1));
        b.record(MsgClass::Inv, Endpoint::FarSide, n(1));
        b.record(MsgClass::Ack, n(1), Endpoint::FarSide);
        a.merge(&b);
        assert_eq!(a.count(MsgClass::Inv, Endpoint::FarSide, n(1)), 2);
        let text = a.to_json().to_string_compact();
        // Only non-zero entries, far side rendered as index `nodes`.
        assert!(text.contains("\"inv\":[[4,1,2]]"), "{text}");
        assert!(text.contains("\"ack\":[[1,4,1]]"), "{text}");
        let again = a.to_json().to_string_compact();
        assert_eq!(text, again);
    }

    #[test]
    fn class_names_are_unique() {
        let mut names: Vec<_> = MsgClass::ALL.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), MSG_CLASSES);
    }
}
