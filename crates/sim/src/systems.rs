//! The five evaluated systems behind one interface.

use d2m_baseline::{Baseline, BaselineKind};
use d2m_common::config::MachineConfig;
use d2m_common::outcome::AccessResult;
use d2m_common::probe::Probe;
use d2m_common::stats::Counters;
use d2m_core::{D2mSystem, D2mVariant, MetadataFootprint, ProtocolError};
use d2m_energy::EnergyAccount;
use d2m_noc::Noc;
use d2m_workloads::Access;

/// The five systems of the paper's evaluation (Figure 4 / §V-A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SystemKind {
    /// Mobile-class baseline: L1 + shared LLC, MESI directory.
    Base2L,
    /// Server-class baseline: adds a private 256 KB L2 per node.
    Base3L,
    /// D2M with a far-side LLC.
    D2mFs,
    /// D2M with near-side LLC slices (pressure placement).
    D2mNs,
    /// D2M-NS plus replication and dynamic indexing.
    D2mNsR,
}

impl SystemKind {
    /// All systems in figure order.
    pub const ALL: [SystemKind; 5] = [
        SystemKind::Base2L,
        SystemKind::Base3L,
        SystemKind::D2mFs,
        SystemKind::D2mNs,
        SystemKind::D2mNsR,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Base2L => "Base-2L",
            SystemKind::Base3L => "Base-3L",
            SystemKind::D2mFs => "D2M-FS",
            SystemKind::D2mNs => "D2M-NS",
            SystemKind::D2mNsR => "D2M-NS-R",
        }
    }

    /// True for the D2M variants.
    pub fn is_d2m(self) -> bool {
        matches!(
            self,
            SystemKind::D2mFs | SystemKind::D2mNs | SystemKind::D2mNsR
        )
    }
}

d2m_common::impl_json_enum!(SystemKind {
    Base2L,
    Base3L,
    D2mFs,
    D2mNs,
    D2mNsR,
});

/// A constructed system of any kind.
pub enum AnySystem {
    /// One of the two baselines.
    Base(Box<Baseline>),
    /// One of the three D2M variants.
    D2m(Box<D2mSystem>),
}

impl AnySystem {
    /// Builds a system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation, or if a `build` fault-point rule is
    /// armed (`D2M_FAULT=build@<system-name>:*:panic`) — the hook tests use
    /// to prove a panic deep inside a sweep worker is isolated to its cell.
    pub fn build(kind: SystemKind, cfg: &MachineConfig, seed: u64) -> Self {
        // The `error` action is meaningless at a constructor; only
        // panic/exit rules are useful here.
        let _ = d2m_common::faultpoint::fire("build", kind.name(), seed);
        match kind {
            SystemKind::Base2L => {
                AnySystem::Base(Box::new(Baseline::new(cfg, BaselineKind::TwoLevel)))
            }
            SystemKind::Base3L => {
                AnySystem::Base(Box::new(Baseline::new(cfg, BaselineKind::ThreeLevel)))
            }
            SystemKind::D2mFs => AnySystem::D2m(Box::new(D2mSystem::with_features(
                cfg,
                D2mVariant::FarSide,
                D2mVariant::FarSide.features(),
                seed,
            ))),
            SystemKind::D2mNs => AnySystem::D2m(Box::new(D2mSystem::with_features(
                cfg,
                D2mVariant::NearSide,
                D2mVariant::NearSide.features(),
                seed,
            ))),
            SystemKind::D2mNsR => AnySystem::D2m(Box::new(D2mSystem::with_features(
                cfg,
                D2mVariant::NearSideRepl,
                D2mVariant::NearSideRepl.features(),
                seed,
            ))),
        }
    }

    /// Simulates one access at node-local cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] when the D2M metadata hierarchy is found
    /// corrupted mid-transaction. The baseline systems are infallible.
    #[inline]
    pub fn access(&mut self, a: &Access, now: u64) -> Result<AccessResult, ProtocolError> {
        match self {
            AnySystem::Base(s) => Ok(s.access(a, now)),
            AnySystem::D2m(s) => s.access(a, now),
        }
    }

    /// Like [`AnySystem::access`], feeding a transaction event to `probe`.
    ///
    /// With `probe == None` this is exactly [`AnySystem::access`].
    ///
    /// # Errors
    ///
    /// Same as [`AnySystem::access`].
    #[inline]
    pub fn access_probed(
        &mut self,
        a: &Access,
        now: u64,
        probe: Option<&mut dyn Probe>,
    ) -> Result<AccessResult, ProtocolError> {
        match self {
            AnySystem::Base(s) => Ok(s.access_probed(a, now, probe)),
            AnySystem::D2m(s) => s.access_probed(a, now, probe),
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> Counters {
        match self {
            AnySystem::Base(s) => s.counters(),
            AnySystem::D2m(s) => s.counters(),
        }
    }

    /// Interconnect accumulator.
    pub fn noc(&self) -> &Noc {
        match self {
            AnySystem::Base(s) => s.noc(),
            AnySystem::D2m(s) => s.noc(),
        }
    }

    /// Mutable interconnect accumulator (e.g. to enable traffic recording).
    pub fn noc_mut(&mut self) -> &mut Noc {
        match self {
            AnySystem::Base(s) => s.noc_mut(),
            AnySystem::D2m(s) => s.noc_mut(),
        }
    }

    /// Structure-access energy account.
    pub fn energy(&self) -> &EnergyAccount {
        match self {
            AnySystem::Base(s) => s.energy(),
            AnySystem::D2m(s) => s.energy(),
        }
    }

    /// Mutable energy account.
    pub fn energy_mut(&mut self) -> &mut EnergyAccount {
        match self {
            AnySystem::Base(s) => s.energy_mut(),
            AnySystem::D2m(s) => s.energy_mut(),
        }
    }

    /// Total SRAM KB for leakage.
    pub fn sram_kb(&self) -> f64 {
        match self {
            AnySystem::Base(s) => s.sram_kb(),
            AnySystem::D2m(s) => s.sram_kb(),
        }
    }

    /// Oracle violations observed (must stay zero).
    pub fn coherence_errors(&self) -> u64 {
        match self {
            AnySystem::Base(s) => s.coherence_errors(),
            AnySystem::D2m(s) => s.coherence_errors(),
        }
    }

    /// Simulator-resident metadata footprint (MD1/MD2/MD3 bytes, derived
    /// from entry sizes × configured capacities). Baselines carry no split
    /// metadata hierarchy and report all-zero.
    pub fn metadata_footprint(&self) -> MetadataFootprint {
        match self {
            AnySystem::Base(_) => MetadataFootprint::default(),
            AnySystem::D2m(s) => s.metadata_footprint(),
        }
    }

    /// D2M-only view, for protocol-case statistics.
    pub fn as_d2m(&self) -> Option<&D2mSystem> {
        match self {
            AnySystem::D2m(s) => Some(s),
            AnySystem::Base(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_build_and_access() {
        use d2m_common::addr::{Asid, NodeId, VAddr};
        use d2m_workloads::AccessKind;
        let cfg = MachineConfig::default();
        for kind in SystemKind::ALL {
            let mut sys = AnySystem::build(kind, &cfg, 1);
            let a = Access {
                node: NodeId::new(0),
                asid: Asid(0),
                kind: AccessKind::Load,
                vaddr: VAddr::new(0x12345),
            };
            let r = sys.access(&a, 0).unwrap();
            assert!(r.latency > 0, "{}", kind.name());
            assert!(sys.sram_kb() > 1000.0);
        }
    }

    #[test]
    fn metadata_footprint_is_d2m_only_and_deterministic() {
        let cfg = MachineConfig::default();
        for kind in SystemKind::ALL {
            let sys = AnySystem::build(kind, &cfg, 1);
            let fp = sys.metadata_footprint();
            if kind.is_d2m() {
                assert!(fp.md1_bytes > 0 && fp.md2_bytes > 0 && fp.md3_bytes > 0);
                // Pure type-layout arithmetic: a rebuild reports the same bytes.
                assert_eq!(AnySystem::build(kind, &cfg, 99).metadata_footprint(), fp);
            } else {
                assert_eq!(fp.total(), 0, "{}", kind.name());
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(SystemKind::Base2L.name(), "Base-2L");
        assert_eq!(SystemKind::D2mNsR.name(), "D2M-NS-R");
        assert!(SystemKind::D2mFs.is_d2m() && !SystemKind::Base3L.is_d2m());
    }
}
