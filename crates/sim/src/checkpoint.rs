//! Per-cell checkpoint journal: kill/resume for long-running sweeps.
//!
//! A full paper grid (45 workloads × 5 systems × config points) is hours of
//! wall-clock inside one [`run_sweep`] call. [`run_sweep_checkpointed`]
//! makes that call killable: every completed cell is appended to a journal
//! file — one compact JSON line, fsync'd before the worker moves on — and a
//! rerun with `resume = true` skips every journaled cell. The final
//! [`SweepResult`] is assembled in cell-index order from journaled and
//! freshly-run cells alike, so its JSON is **byte-identical** to an
//! uninterrupted run — across any kill/resume point and any worker-thread
//! count (`tests/sweep_fault_tolerance.rs` and `ci.sh` prove this with
//! injected kills).
//!
//! # Journal format
//!
//! Line 1 is a header binding the journal to its spec:
//!
//! ```text
//! {"journal":"d2m-sweep-checkpoint","version":1,"name":…,"master_seed":…,
//!  "num_cells":…,"fingerprint":…}
//! ```
//!
//! `fingerprint` is [`d2m_common::fnv1a_64`] over the spec's compact
//! deterministic JSON, so resuming against a journal written for *any*
//! different grid, run length or seed is rejected with
//! [`CheckpointError::SpecMismatch`] instead of silently mixing results.
//! Each subsequent line is one [`CellResult`]. Lines are appended in
//! completion order — under a parallel pool that order is scheduling-
//! dependent, but each *line* is a deterministic encoding and the journal is
//! only ever read back into an index-keyed table, so scheduling never leaks
//! into results. A truncated final line (the process died mid-write) is
//! detected and discarded on resume; that cell is simply re-run.
//!
//! # Fault points
//!
//! After each append (write + fsync) the `checkpoint` fault point fires
//! with the 1-based append sequence number as its key and the sweep name as
//! its scope: `D2M_FAULT=checkpoint:3:exit` kills the process right after
//! the third journaled cell, which is how CI exercises a real mid-sweep
//! kill.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use d2m_common::fnv1a_64;
use d2m_common::json::{FromJson, Json, ToJson};

use crate::sweep::{missing_cell, pool_run, run_cell, CellResult, SweepResult, SweepSpec};

/// Journal format version; bumped on any incompatible layout change.
const JOURNAL_VERSION: u64 = 1;

/// Why a checkpointed sweep could not run or resume.
#[derive(Debug)]
pub enum CheckpointError {
    /// The journal could not be created, read, appended or synced.
    Io {
        /// Journal path.
        path: PathBuf,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// The journal exists but is not a well-formed checkpoint journal.
    Corrupt {
        /// Journal path.
        path: PathBuf,
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// The journal was written for a different sweep spec.
    SpecMismatch {
        /// Journal path.
        path: PathBuf,
        /// Which header field disagreed, and how.
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, error } => {
                write!(f, "checkpoint journal {}: {error}", path.display())
            }
            CheckpointError::Corrupt { path, line, detail } => write!(
                f,
                "checkpoint journal {} line {line}: {detail}",
                path.display()
            ),
            CheckpointError::SpecMismatch { path, detail } => write!(
                f,
                "checkpoint journal {} belongs to a different sweep: {detail}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// The spec fingerprint stored in (and checked against) journal headers.
fn spec_fingerprint(spec: &SweepSpec) -> u64 {
    fnv1a_64(spec.to_json().to_string_compact().as_bytes())
}

fn header_json(spec: &SweepSpec) -> Json {
    Json::Obj(vec![
        (
            "journal".to_string(),
            Json::Str("d2m-sweep-checkpoint".to_string()),
        ),
        ("version".to_string(), Json::U64(JOURNAL_VERSION)),
        ("name".to_string(), Json::Str(spec.name.clone())),
        ("master_seed".to_string(), Json::U64(spec.master_seed)),
        ("num_cells".to_string(), Json::U64(spec.num_cells() as u64)),
        ("fingerprint".to_string(), Json::U64(spec_fingerprint(spec))),
    ])
}

fn check_header(spec: &SweepSpec, header: &Json, path: &Path) -> Result<(), CheckpointError> {
    let mismatch = |detail: String| CheckpointError::SpecMismatch {
        path: path.to_path_buf(),
        detail,
    };
    let expect = header_json(spec);
    for (key, want) in match &expect {
        Json::Obj(fields) => fields.iter(),
        _ => unreachable!("header_json builds an object"),
    } {
        let got = header.get(key);
        if got != Some(want) {
            return Err(mismatch(format!(
                "header field {key:?} is {} (expected {})",
                got.map_or("missing".to_string(), Json::to_string_compact),
                want.to_string_compact()
            )));
        }
    }
    Ok(())
}

/// Parses an existing journal into an index-keyed table of completed cells.
///
/// Tolerates exactly one kind of damage: a final line that does not parse,
/// which is what a kill mid-append leaves behind; it is reported on stderr
/// and the cell re-runs. Damage anywhere else is [`CheckpointError::Corrupt`].
fn load_journal(spec: &SweepSpec, path: &Path) -> Result<Vec<Option<CellResult>>, CheckpointError> {
    let text = std::fs::read_to_string(path).map_err(|error| CheckpointError::Io {
        path: path.to_path_buf(),
        error,
    })?;
    let corrupt = |line: usize, detail: String| CheckpointError::Corrupt {
        path: path.to_path_buf(),
        line,
        detail,
    };
    let mut done: Vec<Option<CellResult>> = vec![None; spec.num_cells()];
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return Err(corrupt(1, "empty journal (missing header)".to_string()));
    }
    let header =
        Json::parse(lines[0]).map_err(|e| corrupt(1, format!("unparseable header: {e}")))?;
    check_header(spec, &header, path)?;
    for (i, line) in lines.iter().enumerate().skip(1) {
        let lineno = i + 1;
        let is_last = i == lines.len() - 1;
        let cell = match Json::parse(line).and_then(|j| CellResult::from_json(&j)) {
            Ok(c) => c,
            Err(e) if is_last => {
                // A kill mid-append leaves a truncated tail; losing that one
                // cell is the designed-for case, not corruption.
                eprintln!(
                    "warning: checkpoint journal {}: discarding truncated final line {lineno} ({e})",
                    path.display()
                );
                break;
            }
            Err(e) => return Err(corrupt(lineno, format!("unparseable cell: {e}"))),
        };
        let index = cell.index as usize;
        if index >= done.len() {
            return Err(corrupt(
                lineno,
                format!("cell index {index} out of range (grid has {})", done.len()),
            ));
        }
        if cell.seed != spec.cell_seed(index) {
            return Err(corrupt(
                lineno,
                format!("cell {index} seed does not match the spec's derivation"),
            ));
        }
        // Appends are idempotent; if a cell ever appears twice, the later
        // (most recently journaled) line wins.
        done[index] = Some(cell);
    }
    Ok(done)
}

struct JournalWriter {
    file: File,
    /// Cells appended by *this* run (resumed cells excluded); the
    /// `checkpoint` fault-point key.
    appended: u64,
    /// First append failure; once set, journaling stops and the sweep
    /// aborts after the pool drains.
    error: Option<std::io::Error>,
}

impl JournalWriter {
    /// Appends one line followed by fsync, so a completed cell survives any
    /// later kill. On failure, records the error and drops the line.
    fn append(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        let r = self
            .file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.sync_data());
        match r {
            Ok(()) => self.appended += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Runs a sweep with a per-cell checkpoint journal at `path`.
///
/// With `resume = false` any existing journal at `path` is discarded and
/// the whole grid runs. With `resume = true` and an existing journal, cells
/// already journaled are loaded instead of re-run (after validating the
/// journal belongs to exactly this spec); with `resume = true` and no
/// journal the sweep simply starts fresh. Either way the returned
/// [`SweepResult`] — cells in index order, failures included — serializes
/// byte-identically to [`crate::sweep::run_sweep_with_jobs`] on the same
/// spec.
///
/// Cells fail in isolation exactly as in
/// [`crate::sweep::run_sweep_with_jobs`]: a panicking or failing cell is
/// journaled as a failed [`CellResult`] and does not abort the sweep.
///
/// # Errors
///
/// [`CheckpointError::Io`] when the journal cannot be created, read or
/// appended (an append failure aborts the sweep — silently continuing
/// without durability would defeat the point of asking for a checkpoint);
/// [`CheckpointError::Corrupt`] for a damaged journal (other than the
/// expected truncated tail); [`CheckpointError::SpecMismatch`] when the
/// journal belongs to a different spec.
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn run_sweep_checkpointed(
    spec: &SweepSpec,
    jobs: usize,
    path: &Path,
    resume: bool,
) -> Result<SweepResult, CheckpointError> {
    assert!(jobs >= 1, "sweep needs at least one worker");
    let started = Instant::now();
    let io_err = |error: std::io::Error| CheckpointError::Io {
        path: path.to_path_buf(),
        error,
    };
    let n = spec.num_cells();
    let resuming = resume && path.exists();
    let mut done = if resuming {
        load_journal(spec, path)?
    } else {
        vec![None; n]
    };
    let file = if resuming {
        OpenOptions::new().append(true).open(path)
    } else {
        File::create(path)
    }
    .map_err(io_err)?;
    let mut writer = JournalWriter {
        file,
        appended: 0,
        error: None,
    };
    if !resuming {
        writer.append(&header_json(spec).to_string_compact());
        if let Some(e) = writer.error.take() {
            return Err(io_err(e));
        }
        // The header is not a cell; it must not advance the fault-point key.
        writer.appended = 0;
    }

    let todo: Vec<usize> = (0..n).filter(|&i| done[i].is_none()).collect();
    let journal = Mutex::new(writer);
    let jobs_used = jobs.min(todo.len().max(1));
    let fresh = pool_run(todo.len(), jobs_used, |k| {
        let index = todo[k];
        {
            // Journaling already failed: don't burn hours simulating cells
            // whose results can no longer be made durable.
            let j = journal.lock().unwrap_or_else(PoisonError::into_inner);
            if j.error.is_some() {
                return None;
            }
        }
        let cell = run_cell(spec, index);
        let seq = {
            let mut j = journal.lock().unwrap_or_else(PoisonError::into_inner);
            j.append(&cell.to_json().to_string_compact());
            j.appended
        };
        // Fire outside the lock, and isolated: a `panic` rule here must not
        // take down the pool (the cell is already durable).
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d2m_common::faultpoint::fire("checkpoint", &spec.name, seq)
        }));
        Some(cell)
    });
    let writer = journal.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(error) = writer.error {
        return Err(io_err(error));
    }

    for (k, c) in fresh.into_iter().enumerate() {
        if let Some(Some(cell)) = c {
            done[todo[k]] = Some(cell);
        }
    }
    let cells = done
        .into_iter()
        .enumerate()
        .map(|(i, c)| c.unwrap_or_else(|| missing_cell(spec, i)))
        .collect();
    Ok(SweepResult {
        name: spec.name.clone(),
        master_seed: spec.master_seed,
        cells,
        jobs_used,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;
    use crate::sweep::run_sweep_with_jobs;
    use crate::systems::SystemKind;
    use d2m_common::MachineConfig;
    use d2m_workloads::catalog;

    fn spec(name: &str) -> SweepSpec {
        SweepSpec::single(
            name,
            &MachineConfig::default(),
            &[SystemKind::Base2L, SystemKind::D2mNsR],
            &[catalog::by_name("swaptions").unwrap()],
            &RunConfig {
                instructions: 15_000,
                warmup_instructions: 5_000,
                seed: 11,
            },
        )
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("d2m-ckpt-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_journals_every_cell() {
        let s = spec("ckpt-basic");
        let path = tmp("basic.ckpt");
        let res = run_sweep_checkpointed(&s, 2, &path, false).unwrap();
        assert_eq!(
            res.to_json_string(),
            run_sweep_with_jobs(&s, 1).to_json_string()
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1 + s.num_cells());
        assert!(text
            .lines()
            .next()
            .unwrap()
            .contains("d2m-sweep-checkpoint"));
    }

    #[test]
    fn resume_from_complete_journal_runs_nothing_and_is_identical() {
        let s = spec("ckpt-complete");
        let path = tmp("complete.ckpt");
        let full = run_sweep_checkpointed(&s, 2, &path, false).unwrap();
        let resumed = run_sweep_checkpointed(&s, 2, &path, true).unwrap();
        assert_eq!(full.to_json_string(), resumed.to_json_string());
        // Nothing was re-run, so nothing was appended.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1 + s.num_cells());
    }

    #[test]
    fn resume_rejects_a_journal_from_a_different_spec() {
        let s = spec("ckpt-a");
        let path = tmp("mismatch.ckpt");
        run_sweep_checkpointed(&s, 1, &path, false).unwrap();
        let mut other = spec("ckpt-a");
        other.master_seed += 1;
        let err = run_sweep_checkpointed(&other, 1, &path, true).unwrap_err();
        assert!(matches!(err, CheckpointError::SpecMismatch { .. }), "{err}");
        assert!(err.to_string().contains("master_seed"), "{err}");
    }

    #[test]
    fn resume_rejects_mid_journal_corruption() {
        let s = spec("ckpt-corrupt");
        let path = tmp("corrupt.ckpt");
        run_sweep_checkpointed(&s, 1, &path, false).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = "{not json";
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let err = run_sweep_checkpointed(&s, 1, &path, true).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupt { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn without_resume_an_existing_journal_is_restarted() {
        let s = spec("ckpt-restart");
        let path = tmp("restart.ckpt");
        run_sweep_checkpointed(&s, 1, &path, false).unwrap();
        let res = run_sweep_checkpointed(&s, 1, &path, false).unwrap();
        assert_eq!(
            res.to_json_string(),
            run_sweep_with_jobs(&s, 1).to_json_string()
        );
        // Restarted, not appended: exactly one header + one line per cell.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1 + s.num_cells());
    }
}
