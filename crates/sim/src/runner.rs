//! The trace-driven run loop and analytic core timing model.
//!
//! Timing model (paper §V-A/§V-D): each node has its own cycle clock.
//! Committing instructions costs `insts / base_ipc` cycles; an L1 miss (or a
//! late hit) additionally stalls the node for `(latency - L1) × blocking`,
//! with `blocking = 1.0` for instruction misses (an OoO core cannot fetch
//! past a missing instruction) and `≈ 0.35` for data misses (mostly hidden
//! by the OoO window). Bandwidth is infinite, as in the paper.
//!
//! Energy finalization: structure accesses are recorded by the systems
//! themselves; the runner adds per-message NoC energy and per-access memory
//! energy from the interconnect counters, plus leakage over the measured
//! cycles.

use d2m_common::config::MachineConfig;
use d2m_common::outcome::ServicedBy;
use d2m_energy::EnergyEvent;
use d2m_noc::MsgClass;
use d2m_workloads::{TraceGen, WorkloadSpec};

use crate::metrics::{counters_delta, RunMetrics};
use crate::systems::{AnySystem, SystemKind};

/// Run-length and reproducibility parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Instructions to measure (after warmup).
    pub instructions: u64,
    /// Warmup instructions (excluded from all metrics).
    pub warmup_instructions: u64,
    /// Master seed for workload generation and policies.
    pub seed: u64,
}

impl RunConfig {
    /// The default experiment length (used by the benchmark harness).
    pub fn full() -> Self {
        Self {
            instructions: 6_000_000,
            warmup_instructions: 2_000_000,
            seed: 42,
        }
    }

    /// A fast configuration for tests and `--quick` harness runs.
    pub fn quick() -> Self {
        Self {
            instructions: 200_000,
            warmup_instructions: 50_000,
            seed: 42,
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::full()
    }
}

d2m_common::impl_json_struct!(RunConfig {
    instructions,
    warmup_instructions,
    seed,
});

#[derive(Default, Clone)]
struct ServeTally {
    miss_hist: d2m_common::stats::Histogram,
    ns_local_i: u64,
    ns_local_d: u64,
    l2_i: u64,
    l2_d: u64,
    llc_level_i: u64,
    llc_level_d: u64,
    miss_i: u64,
    miss_d: u64,
    mem_serviced: u64,
    misses: u64,
}

impl ServeTally {
    fn record(&mut self, is_i: bool, serviced: ServicedBy, latency: u32) {
        self.miss_hist.record(latency as u64);
        self.misses += 1;
        if is_i {
            self.miss_i += 1;
        } else {
            self.miss_d += 1;
        }
        match serviced {
            ServicedBy::LocalNs => {
                if is_i {
                    self.ns_local_i += 1;
                } else {
                    self.ns_local_d += 1;
                }
            }
            ServicedBy::L2 => {
                if is_i {
                    self.l2_i += 1;
                } else {
                    self.l2_d += 1;
                }
            }
            ServicedBy::Mem => self.mem_serviced += 1,
            _ => {}
        }
        if serviced.is_llc_level() {
            if is_i {
                self.llc_level_i += 1;
            } else {
                self.llc_level_d += 1;
            }
        }
    }
}

/// Runs one (system, workload) pair and extracts its metrics.
///
/// # Panics
///
/// Panics if the machine config is invalid or (in debug builds) if the
/// system violates value coherence.
pub fn run_one(
    kind: SystemKind,
    cfg: &MachineConfig,
    spec: &WorkloadSpec,
    rc: &RunConfig,
) -> RunMetrics {
    let mut sys = AnySystem::build(kind, cfg, rc.seed);
    let mut gen = TraceGen::new(spec, cfg.nodes, rc.seed);
    let mut clocks = vec![0f64; cfg.nodes];
    let mut batch = Vec::new();

    let ipc = cfg.core.base_ipc;
    let l1_lat = cfg.lat.l1 as f64;
    let insts_per_fetch = spec.insts_per_fetch;
    let mut tally = ServeTally::default();
    let mut run_insts = |sys: &mut AnySystem,
                         gen: &mut TraceGen,
                         clocks: &mut [f64],
                         tally: &mut ServeTally,
                         measure: bool,
                         target: u64| {
        let mut insts = 0u64;
        while insts < target {
            batch.clear();
            insts += gen.next_batch(&mut batch);
            for a in &batch {
                let n = a.node.index();
                let now = clocks[n] as u64;
                let r = sys.access(a, now);
                let is_i = a.kind.is_ifetch();
                if is_i {
                    clocks[n] += insts_per_fetch / ipc;
                }
                if !r.l1_hit || r.late {
                    let beyond = (r.latency as f64 - l1_lat).max(0.0);
                    let blocking = if is_i {
                        cfg.core.ifetch_blocking
                    } else {
                        cfg.core.data_blocking
                    };
                    clocks[n] += beyond * blocking;
                }
                if measure && !r.l1_hit {
                    tally.record(is_i, r.serviced_by, r.latency);
                }
            }
        }
        insts
    };

    // Warmup, then snapshot.
    run_insts(
        &mut sys,
        &mut gen,
        &mut clocks,
        &mut tally,
        false,
        rc.warmup_instructions,
    );
    let warm_counters = sys.counters();
    let warm_cycles = clocks.iter().cloned().fold(0f64, f64::max);
    let warm_dyn_std = sys.energy().dynamic_std_pj();
    let warm_dyn_d2m = sys.energy().dynamic_d2m_pj();
    tally = ServeTally::default();

    // Measurement window.
    let instructions = run_insts(
        &mut sys,
        &mut gen,
        &mut clocks,
        &mut tally,
        true,
        rc.instructions,
    );
    let end_cycles = clocks.iter().cloned().fold(0f64, f64::max);
    let cycles = (end_cycles - warm_cycles).max(1.0) as u64;

    assert_eq!(
        sys.coherence_errors(),
        0,
        "{} violated value coherence on {}",
        kind.name(),
        spec.name
    );

    let delta = counters_delta(&sys.counters(), &warm_counters);

    // ---- energy finalization over the measurement window ----
    let model = *sys.energy().model();
    let mut dynamic_std = sys.energy().dynamic_std_pj() - warm_dyn_std;
    let dynamic_d2m = sys.energy().dynamic_d2m_pj() - warm_dyn_d2m;
    for class in MsgClass::ALL {
        let count = delta.get(&format!("noc.msg.{}", class.name()));
        if count == 0 {
            continue;
        }
        if class.is_offchip() {
            dynamic_std += count as f64 * model.event_pj(EnergyEvent::Mem);
        } else {
            dynamic_std += count as f64 * model.event_pj(EnergyEvent::NocHeader);
            let payload = class.payload_bytes() as f64 / 64.0;
            dynamic_std += count as f64 * payload * model.event_pj(EnergyEvent::NocData);
        }
    }
    let leakage = model.leak_pj_per_kb_cycle * sys.sram_kb() * cycles as f64;
    let energy_pj = dynamic_std + dynamic_d2m + leakage;
    let edp = energy_pj * cycles as f64;

    // ---- metric extraction ----
    let ki = instructions as f64 / 1000.0;
    let pct = instructions as f64 / 100.0;
    let msgs = delta.get("noc.msg_total") as f64;
    let d2m_msgs = delta.get("noc.msg_d2m") as f64;
    let miss_latency_sum = delta.get("miss_latency_sum") as f64;
    let miss_count = delta.get("miss_count").max(1) as f64;
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    let (ns_i, ns_d) = match kind {
        SystemKind::Base3L => (
            ratio(tally.l2_i, tally.miss_i),
            ratio(tally.l2_d, tally.miss_d),
        ),
        _ => (
            ratio(tally.ns_local_i, tally.miss_i),
            ratio(tally.ns_local_d, tally.miss_d),
        ),
    };
    let private_misses = delta.get("private.misses");
    let classified = delta.get("private.classified");
    let dir_or_md3 = if kind.is_d2m() {
        delta.get("md3.accesses")
    } else {
        delta.get("dir.accesses")
    };
    let md2_or_l2tag = if kind.is_d2m() {
        delta.get("md2.accesses")
    } else {
        // Base-3L searches its L2 tags on every L1 miss.
        delta.get("l1i.misses") + delta.get("l1d.misses")
    };

    RunMetrics {
        system: kind.name().to_string(),
        workload: spec.name.clone(),
        category: spec.category.name().to_string(),
        instructions,
        cycles,
        ipc: instructions as f64 / cycles as f64,
        msgs_per_kilo_inst: msgs / ki,
        d2m_msgs_per_kilo_inst: d2m_msgs / ki,
        data_bytes_per_kilo_inst: delta.get("noc.bytes_data") as f64 / ki,
        l1i_miss_pct: delta.get("l1i.misses") as f64 / pct,
        l1d_miss_pct: delta.get("l1d.misses") as f64 / pct,
        late_i_pct: delta.get("late_hits.i") as f64 / pct,
        late_d_pct: delta.get("late_hits.d") as f64 / pct,
        ns_hit_ratio_i: ns_i,
        ns_hit_ratio_d: ns_d,
        avg_miss_latency: miss_latency_sum / miss_count,
        p50_miss_latency: tally.miss_hist.quantile(0.5),
        p95_miss_latency: tally.miss_hist.quantile(0.95),
        mem_service_frac: ratio(tally.mem_serviced, tally.misses),
        energy_pj,
        edp,
        d2m_energy_frac: dynamic_d2m / energy_pj.max(f64::MIN_POSITIVE),
        invalidations: delta.get("inv.received"),
        private_miss_frac: ratio(private_misses, classified),
        dir_or_md3_accesses: dir_or_md3,
        md2_or_l2tag_accesses: md2_or_l2tag,
        counters: delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2m_workloads::catalog;

    fn quick() -> RunConfig {
        RunConfig {
            instructions: 60_000,
            warmup_instructions: 20_000,
            seed: 7,
        }
    }

    #[test]
    fn run_produces_sane_metrics() {
        let cfg = MachineConfig::default();
        let spec = catalog::by_name("swaptions").unwrap();
        let m = run_one(SystemKind::Base2L, &cfg, &spec, &quick());
        assert!(m.instructions >= 60_000);
        assert!(m.cycles > 0 && m.ipc > 0.1 && m.ipc <= cfg.core.base_ipc * cfg.nodes as f64);
        assert!(m.energy_pj > 0.0 && m.edp > 0.0);
        assert!(m.msgs_per_kilo_inst >= 0.0);
    }

    #[test]
    fn d2m_reduces_traffic_on_a_private_workload() {
        let mut cfg = MachineConfig::default();
        cfg.check_coherence = true;
        // A cache-warm multiprogrammed workload: private regions make D2M's
        // misses directory-free and NS hits local.
        let mut spec =
            d2m_workloads::WorkloadSpec::base(d2m_workloads::Category::Server, "tiny-private");
        spec.private_lines = 1 << 12;
        spec.warm_regions = 60;
        let rc = RunConfig {
            instructions: 500_000,
            warmup_instructions: 400_000,
            seed: 7,
        };
        let base = run_one(SystemKind::Base2L, &cfg, &spec, &rc);
        let d2m = run_one(SystemKind::D2mNsR, &cfg, &spec, &rc);
        assert!(
            d2m.msgs_per_kilo_inst < base.msgs_per_kilo_inst,
            "D2M {} vs base {}",
            d2m.msgs_per_kilo_inst,
            base.msgs_per_kilo_inst
        );
        // Server mixes are fully private (Table V).
        assert!(d2m.private_miss_frac > 0.99);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = MachineConfig::default();
        let spec = catalog::by_name("google").unwrap();
        let a = run_one(SystemKind::D2mNs, &cfg, &spec, &quick());
        let b = run_one(SystemKind::D2mNs, &cfg, &spec, &quick());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.invalidations, b.invalidations);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn warmup_is_excluded() {
        let cfg = MachineConfig::default();
        let spec = catalog::by_name("swaptions").unwrap();
        let long_warm = run_one(
            SystemKind::Base2L,
            &cfg,
            &spec,
            &RunConfig {
                instructions: 50_000,
                warmup_instructions: 100_000,
                seed: 1,
            },
        );
        // After a long warmup the small code footprint is resident: the
        // measured L1-I miss ratio must be far below the cold one.
        assert!(long_warm.l1i_miss_pct < 1.0, "{}", long_warm.l1i_miss_pct);
    }
}
