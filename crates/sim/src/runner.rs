//! The trace-driven run loop and analytic core timing model.
//!
//! Timing model (paper §V-A/§V-D): each node has its own cycle clock.
//! Committing instructions costs `insts / base_ipc` cycles; an L1 miss (or a
//! late hit) additionally stalls the node for `(latency - L1) × blocking`,
//! with `blocking = 1.0` for instruction misses (an OoO core cannot fetch
//! past a missing instruction) and `≈ 0.35` for data misses (mostly hidden
//! by the OoO window). Bandwidth is infinite, as in the paper.
//!
//! Energy finalization: structure accesses are recorded by the systems
//! themselves; the runner adds per-message NoC energy and per-access memory
//! energy from the interconnect counters, plus leakage over the measured
//! cycles.

use std::fmt;

use d2m_common::config::MachineConfig;
use d2m_common::json::{Json, ToJson};
use d2m_common::outcome::ServicedBy;
use d2m_common::probe::{Probe, RecordingProbe};
use d2m_common::stats::Counters;
use d2m_core::ProtocolError;
use d2m_energy::EnergyEvent;
use d2m_noc::{MsgClass, TrafficMatrix};
use d2m_workloads::{TraceGen, WorkloadSpec};

use crate::metrics::{counters_delta, RunMetrics};
use crate::systems::{AnySystem, SystemKind};

/// Why a run could not produce metrics.
///
/// Either the protocol found its metadata corrupted mid-transaction, the
/// value-coherence oracle observed a violation, or a fault-injection rule
/// ([`d2m_common::faultpoint`]) fired. All name the (system, workload) pair
/// so a sweep can report exactly which cell failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// A transaction aborted on corrupted metadata.
    Protocol {
        /// Display name of the system that failed.
        system: &'static str,
        /// Workload being run.
        workload: String,
        /// The underlying protocol error.
        error: ProtocolError,
    },
    /// The value-coherence oracle observed violations.
    Coherence {
        /// Display name of the system that failed.
        system: &'static str,
        /// Workload being run.
        workload: String,
        /// Number of violations observed.
        violations: u64,
    },
    /// A transient failure injected via [`d2m_common::faultpoint`]
    /// (`D2M_FAULT=cell:<idx>:error`). The only [retryable] variant: the
    /// simulator itself is deterministic, so a protocol or coherence failure
    /// would recur identically on retry, but an injected fault models the
    /// transient infrastructure failures (OOM kill, I/O hiccup) that bounded
    /// retry exists for.
    ///
    /// [retryable]: RunError::is_retryable
    Injected {
        /// Display name of the system that failed.
        system: &'static str,
        /// Workload being run.
        workload: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Protocol {
                system,
                workload,
                error,
            } => write!(f, "protocol error on {system}/{workload}: {error}"),
            RunError::Coherence {
                system,
                workload,
                violations,
            } => write!(
                f,
                "{system} violated value coherence on {workload} ({violations} violations)"
            ),
            RunError::Injected { system, workload } => {
                write!(f, "injected transient fault on {system}/{workload}")
            }
        }
    }
}

impl RunError {
    /// True when a retry could plausibly succeed. Protocol and coherence
    /// failures are deterministic — the same cell replays to the same
    /// failure — so only injected transient faults qualify.
    pub fn is_retryable(&self) -> bool {
        matches!(self, RunError::Injected { .. })
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Protocol { error, .. } => Some(error),
            RunError::Coherence { .. } | RunError::Injected { .. } => None,
        }
    }
}

/// Run-length and reproducibility parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Instructions to measure (after warmup).
    pub instructions: u64,
    /// Warmup instructions (excluded from all metrics).
    pub warmup_instructions: u64,
    /// Master seed for workload generation and policies.
    pub seed: u64,
}

impl RunConfig {
    /// The default experiment length (used by the benchmark harness).
    pub fn full() -> Self {
        Self {
            instructions: 6_000_000,
            warmup_instructions: 2_000_000,
            seed: 42,
        }
    }

    /// A fast configuration for tests and `--quick` harness runs.
    pub fn quick() -> Self {
        Self {
            instructions: 200_000,
            warmup_instructions: 50_000,
            seed: 42,
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::full()
    }
}

d2m_common::impl_json_struct!(RunConfig {
    instructions,
    warmup_instructions,
    seed,
});

#[derive(Default, Clone)]
struct ServeTally {
    miss_hist: d2m_common::stats::Histogram,
    ns_local_i: u64,
    ns_local_d: u64,
    l2_i: u64,
    l2_d: u64,
    llc_level_i: u64,
    llc_level_d: u64,
    miss_i: u64,
    miss_d: u64,
    mem_serviced: u64,
    misses: u64,
}

impl ServeTally {
    fn record(&mut self, is_i: bool, serviced: ServicedBy, latency: u64) {
        self.miss_hist.record(latency);
        self.misses += 1;
        if is_i {
            self.miss_i += 1;
        } else {
            self.miss_d += 1;
        }
        match serviced {
            ServicedBy::LocalNs => {
                if is_i {
                    self.ns_local_i += 1;
                } else {
                    self.ns_local_d += 1;
                }
            }
            ServicedBy::L2 => {
                if is_i {
                    self.l2_i += 1;
                } else {
                    self.l2_d += 1;
                }
            }
            ServicedBy::Mem => self.mem_serviced += 1,
            _ => {}
        }
        if serviced.is_llc_level() {
            if is_i {
                self.llc_level_i += 1;
            } else {
                self.llc_level_d += 1;
            }
        }
    }
}

/// Everything a fully-observed run produces beyond its scalar metrics.
///
/// Built by [`run_one_observed`]; serializes deterministically — two
/// identical runs yield byte-identical [`RunObservation::to_json`] output.
#[derive(Clone, Debug)]
pub struct RunObservation {
    /// The measurement-window metrics (identical to [`run_one`]'s).
    pub metrics: RunMetrics,
    /// Absolute counter snapshot at the end of warmup.
    pub warmup_counters: Counters,
    /// Transaction-level recording: per-level/per-endpoint counts, latency
    /// and hop histograms, phase markers ("warmup", "measured").
    pub probe: RecordingProbe,
    /// Per-message-class traffic matrix over the whole run.
    pub traffic: TrafficMatrix,
    /// Per-structure dynamic-energy breakdown (deterministic key order).
    pub energy_breakdown: Json,
}

impl RunObservation {
    /// Deterministic JSON: metrics, per-phase counters, probe report,
    /// traffic matrix and energy breakdown.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("metrics".to_string(), self.metrics.to_json()),
            (
                "phases".to_string(),
                Json::Obj(vec![
                    ("warmup".to_string(), self.warmup_counters.to_json()),
                    ("measured".to_string(), self.metrics.counters.to_json()),
                ]),
            ),
            ("probe".to_string(), self.probe.report()),
            ("traffic".to_string(), self.traffic.to_json()),
            (
                "energy_breakdown".to_string(),
                self.energy_breakdown.clone(),
            ),
        ])
    }
}

/// Runs one (system, workload) pair and extracts its metrics.
///
/// # Panics
///
/// Panics if the machine config is invalid, if the system violates value
/// coherence, or if the protocol aborts on corrupted metadata. Sweeps that
/// must survive a failing cell use [`run_one_checked`] instead.
pub fn run_one(
    kind: SystemKind,
    cfg: &MachineConfig,
    spec: &WorkloadSpec,
    rc: &RunConfig,
) -> RunMetrics {
    match run_one_checked(kind, cfg, spec, rc) {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    }
}

/// Like [`run_one`], but failures become a typed [`RunError`] naming the
/// failing (system, workload) pair instead of aborting the process.
///
/// # Errors
///
/// [`RunError::Protocol`] when a transaction aborts on corrupted metadata;
/// [`RunError::Coherence`] when the value-coherence oracle records
/// violations.
pub fn run_one_checked(
    kind: SystemKind,
    cfg: &MachineConfig,
    spec: &WorkloadSpec,
    rc: &RunConfig,
) -> Result<RunMetrics, RunError> {
    run_core(kind, cfg, spec, rc, None, false).map(|(m, _, _)| m)
}

/// Runs one pair with the full observability layer enabled: a
/// [`RecordingProbe`] fed every transaction (with "warmup"/"measured" phase
/// markers), a per-message-class [`TrafficMatrix`], per-phase counter
/// snapshots and the per-structure energy breakdown.
///
/// The scalar metrics are identical to [`run_one`]'s for the same inputs —
/// observation never perturbs the simulation.
///
/// # Errors
///
/// Same as [`run_one_checked`].
pub fn run_one_observed(
    kind: SystemKind,
    cfg: &MachineConfig,
    spec: &WorkloadSpec,
    rc: &RunConfig,
) -> Result<RunObservation, RunError> {
    let mut probe = RecordingProbe::new();
    let (metrics, warmup_counters, sys) = run_core(kind, cfg, spec, rc, Some(&mut probe), true)?;
    let traffic = sys
        .noc()
        .matrix()
        .cloned()
        .unwrap_or_else(|| TrafficMatrix::new(cfg.nodes));
    let energy_breakdown = sys.energy().breakdown_json();
    Ok(RunObservation {
        metrics,
        warmup_counters,
        probe,
        traffic,
        energy_breakdown,
    })
}

fn run_core(
    kind: SystemKind,
    cfg: &MachineConfig,
    spec: &WorkloadSpec,
    rc: &RunConfig,
    mut probe: Option<&mut RecordingProbe>,
    record_traffic: bool,
) -> Result<(RunMetrics, Counters, AnySystem), RunError> {
    let mut sys = AnySystem::build(kind, cfg, rc.seed);
    if record_traffic {
        sys.noc_mut().enable_matrix(cfg.nodes);
    }
    let mut gen = TraceGen::new(spec, cfg.nodes, rc.seed);
    let mut clocks = vec![0f64; cfg.nodes];
    let mut batch = Vec::new();

    let ipc = cfg.core.base_ipc;
    let l1_lat = cfg.lat.l1 as f64;
    let insts_per_fetch = spec.insts_per_fetch;
    let mut tally = ServeTally::default();
    let mut run_insts = |sys: &mut AnySystem,
                         gen: &mut TraceGen,
                         clocks: &mut [f64],
                         tally: &mut ServeTally,
                         mut probe: Option<&mut RecordingProbe>,
                         measure: bool,
                         target: u64|
     -> Result<u64, ProtocolError> {
        let mut insts = 0u64;
        while insts < target {
            batch.clear();
            insts += gen.next_batch(&mut batch);
            for a in &batch {
                let n = a.node.index();
                let now = clocks[n] as u64;
                let r =
                    sys.access_probed(a, now, probe.as_deref_mut().map(|p| p as &mut dyn Probe))?;
                let is_i = a.kind.is_ifetch();
                if is_i {
                    clocks[n] += insts_per_fetch / ipc;
                }
                if !r.l1_hit || r.late {
                    let beyond = (r.latency as f64 - l1_lat).max(0.0);
                    let blocking = if is_i {
                        cfg.core.ifetch_blocking
                    } else {
                        cfg.core.data_blocking
                    };
                    clocks[n] += beyond * blocking;
                }
                if measure && !r.l1_hit {
                    tally.record(is_i, r.serviced_by, r.latency);
                }
            }
        }
        Ok(insts)
    };
    let proto_err = |error: ProtocolError| RunError::Protocol {
        system: kind.name(),
        workload: spec.name.clone(),
        error,
    };

    // Warmup, then snapshot.
    if let Some(p) = probe.as_deref_mut() {
        p.phase("warmup");
    }
    run_insts(
        &mut sys,
        &mut gen,
        &mut clocks,
        &mut tally,
        probe.as_deref_mut(),
        false,
        rc.warmup_instructions,
    )
    .map_err(proto_err)?;
    let warm_counters = sys.counters();
    let warm_cycles = clocks.iter().cloned().fold(0f64, f64::max);
    let warm_dyn_std = sys.energy().dynamic_std_pj();
    let warm_dyn_d2m = sys.energy().dynamic_d2m_pj();
    tally = ServeTally::default();

    // Measurement window.
    if let Some(p) = probe.as_deref_mut() {
        p.phase("measured");
    }
    let instructions = run_insts(
        &mut sys,
        &mut gen,
        &mut clocks,
        &mut tally,
        probe,
        true,
        rc.instructions,
    )
    .map_err(proto_err)?;
    let end_cycles = clocks.iter().cloned().fold(0f64, f64::max);
    let cycles = (end_cycles - warm_cycles).max(1.0) as u64;

    if sys.coherence_errors() != 0 {
        return Err(RunError::Coherence {
            system: kind.name(),
            workload: spec.name.clone(),
            violations: sys.coherence_errors(),
        });
    }

    let delta = counters_delta(&sys.counters(), &warm_counters);

    // ---- energy finalization over the measurement window ----
    let model = *sys.energy().model();
    let mut dynamic_std = sys.energy().dynamic_std_pj() - warm_dyn_std;
    let dynamic_d2m = sys.energy().dynamic_d2m_pj() - warm_dyn_d2m;
    for class in MsgClass::ALL {
        let count = delta.get(&format!("noc.msg.{}", class.name()));
        if count == 0 {
            continue;
        }
        if class.is_offchip() {
            dynamic_std += count as f64 * model.event_pj(EnergyEvent::Mem);
        } else {
            dynamic_std += count as f64 * model.event_pj(EnergyEvent::NocHeader);
            let payload = class.payload_bytes() as f64 / 64.0;
            dynamic_std += count as f64 * payload * model.event_pj(EnergyEvent::NocData);
        }
    }
    let leakage = model.leak_pj_per_kb_cycle * sys.sram_kb() * cycles as f64;
    let energy_pj = dynamic_std + dynamic_d2m + leakage;
    let edp = energy_pj * cycles as f64;

    // ---- metric extraction ----
    let ki = instructions as f64 / 1000.0;
    let pct = instructions as f64 / 100.0;
    let msgs = delta.get("noc.msg_total") as f64;
    let d2m_msgs = delta.get("noc.msg_d2m") as f64;
    let miss_latency_sum = delta.get("miss_latency_sum") as f64;
    let miss_count = delta.get("miss_count").max(1) as f64;
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    let (ns_i, ns_d) = match kind {
        SystemKind::Base3L => (
            ratio(tally.l2_i, tally.miss_i),
            ratio(tally.l2_d, tally.miss_d),
        ),
        _ => (
            ratio(tally.ns_local_i, tally.miss_i),
            ratio(tally.ns_local_d, tally.miss_d),
        ),
    };
    let private_misses = delta.get("private.misses");
    let classified = delta.get("private.classified");
    let dir_or_md3 = if kind.is_d2m() {
        delta.get("md3.accesses")
    } else {
        delta.get("dir.accesses")
    };
    let md2_or_l2tag = if kind.is_d2m() {
        delta.get("md2.accesses")
    } else {
        // Base-3L searches its L2 tags on every L1 miss.
        delta.get("l1i.misses") + delta.get("l1d.misses")
    };

    let metrics = RunMetrics {
        system: kind.name().to_string(),
        workload: spec.name.clone(),
        category: spec.category.name().to_string(),
        instructions,
        cycles,
        ipc: instructions as f64 / cycles as f64,
        msgs_per_kilo_inst: msgs / ki,
        d2m_msgs_per_kilo_inst: d2m_msgs / ki,
        data_bytes_per_kilo_inst: delta.get("noc.bytes_data") as f64 / ki,
        l1i_miss_pct: delta.get("l1i.misses") as f64 / pct,
        l1d_miss_pct: delta.get("l1d.misses") as f64 / pct,
        late_i_pct: delta.get("late_hits.i") as f64 / pct,
        late_d_pct: delta.get("late_hits.d") as f64 / pct,
        ns_hit_ratio_i: ns_i,
        ns_hit_ratio_d: ns_d,
        avg_miss_latency: miss_latency_sum / miss_count,
        p50_miss_latency: tally.miss_hist.quantile(0.5),
        p95_miss_latency: tally.miss_hist.quantile(0.95),
        mem_service_frac: ratio(tally.mem_serviced, tally.misses),
        energy_pj,
        edp,
        d2m_energy_frac: dynamic_d2m / energy_pj.max(f64::MIN_POSITIVE),
        invalidations: delta.get("inv.received"),
        private_miss_frac: ratio(private_misses, classified),
        dir_or_md3_accesses: dir_or_md3,
        md2_or_l2tag_accesses: md2_or_l2tag,
        counters: delta,
    };
    Ok((metrics, warm_counters, sys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2m_workloads::catalog;

    fn quick() -> RunConfig {
        RunConfig {
            instructions: 60_000,
            warmup_instructions: 20_000,
            seed: 7,
        }
    }

    #[test]
    fn run_produces_sane_metrics() {
        let cfg = MachineConfig::default();
        let spec = catalog::by_name("swaptions").unwrap();
        let m = run_one(SystemKind::Base2L, &cfg, &spec, &quick());
        assert!(m.instructions >= 60_000);
        assert!(m.cycles > 0 && m.ipc > 0.1 && m.ipc <= cfg.core.base_ipc * cfg.nodes as f64);
        assert!(m.energy_pj > 0.0 && m.edp > 0.0);
        assert!(m.msgs_per_kilo_inst >= 0.0);
    }

    #[test]
    fn d2m_reduces_traffic_on_a_private_workload() {
        let mut cfg = MachineConfig::default();
        cfg.check_coherence = true;
        // A cache-warm multiprogrammed workload: private regions make D2M's
        // misses directory-free and NS hits local.
        let mut spec =
            d2m_workloads::WorkloadSpec::base(d2m_workloads::Category::Server, "tiny-private");
        spec.private_lines = 1 << 12;
        spec.warm_regions = 60;
        let rc = RunConfig {
            instructions: 500_000,
            warmup_instructions: 400_000,
            seed: 7,
        };
        let base = run_one(SystemKind::Base2L, &cfg, &spec, &rc);
        let d2m = run_one(SystemKind::D2mNsR, &cfg, &spec, &rc);
        assert!(
            d2m.msgs_per_kilo_inst < base.msgs_per_kilo_inst,
            "D2M {} vs base {}",
            d2m.msgs_per_kilo_inst,
            base.msgs_per_kilo_inst
        );
        // Server mixes are fully private (Table V).
        assert!(d2m.private_miss_frac > 0.99);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = MachineConfig::default();
        let spec = catalog::by_name("google").unwrap();
        let a = run_one(SystemKind::D2mNs, &cfg, &spec, &quick());
        let b = run_one(SystemKind::D2mNs, &cfg, &spec, &quick());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.invalidations, b.invalidations);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn warmup_is_excluded() {
        let cfg = MachineConfig::default();
        let spec = catalog::by_name("swaptions").unwrap();
        let long_warm = run_one(
            SystemKind::Base2L,
            &cfg,
            &spec,
            &RunConfig {
                instructions: 50_000,
                warmup_instructions: 100_000,
                seed: 1,
            },
        );
        // After a long warmup the small code footprint is resident: the
        // measured L1-I miss ratio must be far below the cold one.
        assert!(long_warm.l1i_miss_pct < 1.0, "{}", long_warm.l1i_miss_pct);
    }
}
