//! Parallel experiment driver: the (system × workload) matrix behind every
//! table and figure, built on the [`crate::sweep`] engine.

use d2m_common::config::MachineConfig;
use d2m_common::stats::gmean;
use d2m_workloads::WorkloadSpec;

use crate::metrics::RunMetrics;
use crate::runner::RunConfig;
use crate::sweep::{run_sweep, SweepSpec};
use crate::systems::SystemKind;

/// The completed matrix of runs.
#[derive(Debug)]
pub struct MatrixResult {
    runs: Vec<RunMetrics>,
}

impl MatrixResult {
    /// Reconstructs a result set from previously computed runs (e.g. a
    /// cache file written by the benchmark harness).
    pub fn from_runs(runs: Vec<RunMetrics>) -> Self {
        Self { runs }
    }

    /// All runs, in completion-independent (system-major, then workload)
    /// order.
    pub fn runs(&self) -> &[RunMetrics] {
        &self.runs
    }

    /// The run for `(system, workload)`.
    pub fn get(&self, system: SystemKind, workload: &str) -> Option<&RunMetrics> {
        self.runs
            .iter()
            .find(|r| r.system == system.name() && r.workload == workload)
    }

    /// Per-workload speedups of `system` over `base`, in workload order.
    pub fn speedups(&self, system: SystemKind, base: SystemKind) -> Vec<(String, f64)> {
        self.runs
            .iter()
            .filter(|r| r.system == base.name())
            .filter_map(|b| {
                self.get(system, &b.workload)
                    .map(|s| (b.workload.clone(), s.speedup_vs(b)))
            })
            .collect()
    }

    /// Geometric mean of a per-workload relative metric over all workloads
    /// (optionally restricted to one category).
    pub fn gmean_relative<F>(
        &self,
        system: SystemKind,
        base: SystemKind,
        category: Option<&str>,
        f: F,
    ) -> f64
    where
        F: Fn(&RunMetrics, &RunMetrics) -> f64,
    {
        let vals: Vec<f64> = self
            .runs
            .iter()
            .filter(|r| r.system == base.name())
            .filter(|r| category.is_none_or(|c| r.category == c))
            .filter_map(|b| self.get(system, &b.workload).map(|s| f(s, b)))
            .collect();
        gmean(&vals)
    }

    /// Mean of an absolute per-run metric over one system (optionally one
    /// category).
    pub fn mean_absolute<F>(&self, system: SystemKind, category: Option<&str>, f: F) -> f64
    where
        F: Fn(&RunMetrics) -> f64,
    {
        let vals: Vec<f64> = self
            .runs
            .iter()
            .filter(|r| r.system == system.name())
            .filter(|r| category.is_none_or(|c| r.category == c))
            .map(f)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

/// Runs every `(system, workload)` pair in parallel across the machine's
/// cores via the sweep engine. Deterministic: results are bit-identical to a
/// serial run regardless of thread count (see [`crate::sweep`]).
///
/// Each workload's trace seed is derived from `rc.seed` with
/// [`d2m_common::rng::derive_stream_seed`], and shared by all systems so
/// paired comparisons stay meaningful. Runs are returned in system-major,
/// then workload, order.
pub fn run_matrix(
    cfg: &MachineConfig,
    systems: &[SystemKind],
    workloads: &[WorkloadSpec],
    rc: &RunConfig,
) -> MatrixResult {
    let spec = SweepSpec::single("matrix", cfg, systems, workloads, rc);
    let res = run_sweep(&spec);
    // Sweep cells are workload-major within the single config; reorder into
    // the system-major convention MatrixResult documents.
    let s = systems.len();
    let mut runs = Vec::with_capacity(res.cells.len());
    for si in 0..s {
        for wi in 0..workloads.len() {
            runs.push(res.cells[wi * s + si].metrics.clone());
        }
    }
    MatrixResult { runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2m_workloads::catalog;

    #[test]
    fn matrix_runs_all_pairs_in_order() {
        let cfg = MachineConfig::default();
        let specs = vec![
            catalog::by_name("swaptions").unwrap(),
            catalog::by_name("mix2").unwrap(),
        ];
        let rc = RunConfig {
            instructions: 30_000,
            warmup_instructions: 10_000,
            seed: 1,
        };
        let m = run_matrix(&cfg, &[SystemKind::Base2L, SystemKind::D2mFs], &specs, &rc);
        assert_eq!(m.runs().len(), 4);
        assert!(m.get(SystemKind::Base2L, "swaptions").is_some());
        assert!(m.get(SystemKind::D2mFs, "mix2").is_some());
        let sp = m.speedups(SystemKind::D2mFs, SystemKind::Base2L);
        assert_eq!(sp.len(), 2);
        for (_, s) in sp {
            assert!(s > 0.2 && s < 5.0);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let cfg = MachineConfig::default();
        let specs = vec![catalog::by_name("google").unwrap()];
        let rc = RunConfig {
            instructions: 30_000,
            warmup_instructions: 5_000,
            seed: 3,
        };
        let par = run_matrix(&cfg, &[SystemKind::D2mNsR], &specs, &rc);
        // The matrix derives a per-workload seed from rc.seed; reproduce the
        // single cell serially with the same derivation.
        let sweep = SweepSpec::single("matrix", &cfg, &[SystemKind::D2mNsR], &specs, &rc);
        let ser = crate::runner::run_one(
            SystemKind::D2mNsR,
            &cfg,
            &specs[0],
            &sweep.cell_run_config(0),
        );
        let p = &par.runs()[0];
        assert_eq!(p.cycles, ser.cycles);
        assert_eq!(p.invalidations, ser.invalidations);
        assert_eq!(p.counters, ser.counters);
    }
}
