//! Command-line front end: run any (system, workload) pair on any machine
//! configuration and print the metrics as a table or JSON.
//!
//! ```text
//! d2m-simulate --system d2m-ns-r --workload tpc-c --instructions 2000000
//! d2m-simulate --system base-2l --workload canneal --json
//! d2m-simulate --list
//! ```

use d2m_common::config::MachineConfig;
use d2m_sim::{run_one, RunConfig, SystemKind};
use d2m_workloads::catalog;

fn usage() -> ! {
    eprintln!(
        "usage: d2m-simulate [--system NAME] [--workload NAME] \
         [--instructions N] [--warmup N] [--seed N] [--md-scale 1|2|4] \
         [--json] [--list]\n\
         systems: base-2l base-3l d2m-fs d2m-ns d2m-ns-r"
    );
    std::process::exit(2)
}

fn parse_system(s: &str) -> Option<SystemKind> {
    match s.to_ascii_lowercase().as_str() {
        "base-2l" | "base2l" => Some(SystemKind::Base2L),
        "base-3l" | "base3l" => Some(SystemKind::Base3L),
        "d2m-fs" | "fs" => Some(SystemKind::D2mFs),
        "d2m-ns" | "ns" => Some(SystemKind::D2mNs),
        "d2m-ns-r" | "ns-r" | "nsr" => Some(SystemKind::D2mNsR),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut system = SystemKind::D2mNsR;
    let mut workload = "tpc-c".to_string();
    let mut rc = RunConfig::quick();
    let mut json = false;
    let mut md_scale = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                for s in catalog::all() {
                    println!("{:<16} ({})", s.name, s.category.name());
                }
                return;
            }
            "--json" => json = true,
            "--system" => match it.next().and_then(|v| parse_system(v)) {
                Some(k) => system = k,
                None => usage(),
            },
            "--workload" => workload = it.next().cloned().unwrap_or_else(|| usage()),
            "--instructions" => {
                rc.instructions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--warmup" => {
                rc.warmup_instructions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                rc.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--md-scale" => {
                md_scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(spec) = catalog::by_name(&workload) else {
        eprintln!("unknown workload {workload:?}; try --list");
        std::process::exit(2);
    };
    let cfg = MachineConfig::default().scale_metadata(md_scale);
    let m = run_one(system, &cfg, &spec, &rc);
    if json {
        use d2m_common::ToJson;
        println!("{}", m.to_json().to_string_pretty());
    } else {
        println!("system        {}", m.system);
        println!("workload      {} ({})", m.workload, m.category);
        println!("instructions  {}", m.instructions);
        println!("cycles        {}  (ipc {:.2})", m.cycles, m.ipc);
        println!(
            "msgs/KI       {:.1}  (d2m-specific {:.1})",
            m.msgs_per_kilo_inst, m.d2m_msgs_per_kilo_inst
        );
        println!("L1I miss      {:.2} / 100 inst", m.l1i_miss_pct);
        println!("L1D miss      {:.2} / 100 inst", m.l1d_miss_pct);
        println!("miss latency  {:.1} cycles", m.avg_miss_latency);
        println!(
            "NS local      I {:.0}%  D {:.0}%",
            m.ns_hit_ratio_i * 100.0,
            m.ns_hit_ratio_d * 100.0
        );
        println!("private miss  {:.0}%", m.private_miss_frac * 100.0);
        println!("energy        {:.3e} pJ   EDP {:.3e}", m.energy_pj, m.edp);
    }
}
