//! Command-line front end: run any (system, workload) pair on any machine
//! configuration and print the metrics as a table or JSON — or run a whole
//! fault-tolerant sweep grid with checkpoint/resume.
//!
//! ```text
//! d2m-simulate --system d2m-ns-r --workload tpc-c --instructions 2000000
//! d2m-simulate --system base-2l --workload canneal --json
//! d2m-simulate --system d2m-ns --workload tpc-c --histograms
//! d2m-simulate --system d2m-ns --workload tpc-c --trace-out obs.json
//! d2m-simulate --sweep nightly --out sweep.json --checkpoint sweep.ckpt
//! d2m-simulate --sweep nightly --out sweep.json --checkpoint sweep.ckpt --resume
//! d2m-simulate --list
//! ```
//!
//! In sweep mode a failing cell (panic, corrupted metadata, coherence
//! violation) is reported in the JSON and on stderr but never aborts the
//! grid, and `--checkpoint`/`--resume` make the run killable at any point:
//! the resumed output is byte-identical to an uninterrupted run.

use d2m_common::config::MachineConfig;
use d2m_sim::{
    default_jobs, run_one_checked, run_one_observed, run_sweep_checkpointed, run_sweep_with_jobs,
    ConfigPoint, RunConfig, SweepResult, SweepSpec, SystemKind,
};
use d2m_workloads::catalog;
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: d2m-simulate [--system NAME] [--workload NAME] \
         [--instructions N] [--warmup N] [--seed N] [--md-scale 1|2|4] \
         [--json] [--trace-out PATH] [--histograms] [--list]\n\
         or:    d2m-simulate --sweep NAME [--workloads A,B,..] [--systems X,Y,..] \
         [--md-scales 1,2,..] [--instructions N] [--warmup N] [--seed N] \
         [--jobs N] [--out PATH] [--checkpoint PATH] [--resume]\n\
         systems: base-2l base-3l d2m-fs d2m-ns d2m-ns-r\n\
         --trace-out PATH  write the full observation (metrics, per-phase\n\
                           counters, probe histograms, traffic matrix,\n\
                           energy breakdown) as deterministic JSON to PATH\n\
         --histograms      print the probe report (per-level/per-endpoint\n\
                           counts, latency and hop histograms) to stdout\n\
         --sweep NAME      run a (config x workload x system) grid; failing\n\
                           cells are isolated, never fatal. Defaults: every\n\
                           catalog workload, all five systems, --md-scales 1\n\
         --out PATH        write the sweep result JSON to PATH (default:\n\
                           stdout)\n\
         --checkpoint PATH journal each completed cell to PATH (fsync'd);\n\
                           with --resume, skip cells already journaled there.\n\
                           The resumed result is byte-identical to an\n\
                           uninterrupted run"
    );
    std::process::exit(2)
}

fn parse_system(s: &str) -> Option<SystemKind> {
    match s.to_ascii_lowercase().as_str() {
        "base-2l" | "base2l" => Some(SystemKind::Base2L),
        "base-3l" | "base3l" => Some(SystemKind::Base3L),
        "d2m-fs" | "fs" => Some(SystemKind::D2mFs),
        "d2m-ns" | "ns" => Some(SystemKind::D2mNs),
        "d2m-ns-r" | "ns-r" | "nsr" => Some(SystemKind::D2mNsR),
        _ => None,
    }
}

/// Parsed sweep-mode flags (`--sweep` and friends).
struct SweepArgs {
    name: String,
    workloads: Option<String>,
    systems: Option<String>,
    md_scales: Option<String>,
    jobs: Option<usize>,
    out: Option<String>,
    checkpoint: Option<String>,
    resume: bool,
}

/// Builds the [`SweepSpec`] a sweep invocation describes. Comma lists keep
/// their order; unknown names are usage errors naming the culprit.
fn sweep_spec(sa: &SweepArgs, rc: &RunConfig) -> SweepSpec {
    let systems = match &sa.systems {
        None => SystemKind::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(|s| {
                parse_system(s).unwrap_or_else(|| {
                    eprintln!("error: unknown system {s:?}");
                    usage()
                })
            })
            .collect(),
    };
    let workloads = match &sa.workloads {
        None => match catalog::all() {
            Ok(specs) => specs,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Some(list) => list
            .split(',')
            .map(|w| match catalog::by_name(w) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("error: {e}; try --list");
                    usage()
                }
            })
            .collect(),
    };
    let configs = match &sa.md_scales {
        None => vec![ConfigPoint {
            label: "default".to_string(),
            config: MachineConfig::default(),
        }],
        Some(list) => list
            .split(',')
            .map(|s| {
                let scale: usize = s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("error: bad --md-scales entry {s:?}");
                    usage()
                });
                ConfigPoint {
                    label: if scale == 1 {
                        "default".to_string()
                    } else {
                        format!("md{scale}x")
                    },
                    config: MachineConfig::default().scale_metadata(scale),
                }
            })
            .collect(),
    };
    SweepSpec {
        name: sa.name.clone(),
        configs,
        systems,
        workloads,
        instructions: rc.instructions,
        warmup_instructions: rc.warmup_instructions,
        master_seed: rc.seed,
    }
}

/// Runs sweep mode. Failed cells are summarized on stderr but leave the
/// exit status at 0 — partial results are results; operational failures
/// (unwritable output, bad journal) exit nonzero.
fn run_sweep_mode(sa: &SweepArgs, rc: &RunConfig) -> ! {
    if sa.resume && sa.checkpoint.is_none() {
        eprintln!("error: --resume requires --checkpoint PATH");
        usage();
    }
    let spec = sweep_spec(sa, rc);
    let jobs = sa.jobs.unwrap_or_else(default_jobs);
    eprintln!(
        "[sweep:{}] {} cells on {} jobs",
        spec.name,
        spec.num_cells(),
        jobs.min(spec.num_cells().max(1))
    );
    let res: SweepResult = match &sa.checkpoint {
        None => run_sweep_with_jobs(&spec, jobs),
        Some(path) => match run_sweep_checkpointed(&spec, jobs, Path::new(path), sa.resume) {
            Ok(res) => res,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
    };
    for c in res.failures() {
        eprintln!(
            "[sweep:{}] cell {} failed ({}/{}/{}): {}",
            res.name,
            c.index,
            c.config,
            c.system.name(),
            c.workload,
            c.error.as_deref().unwrap_or("unknown")
        );
    }
    eprintln!(
        "[sweep:{}] done in {:.1}s: {} cells, {} failed",
        res.name,
        res.wall_secs,
        res.cells.len(),
        res.failures().len()
    );
    let text = res.to_json_string();
    match &sa.out {
        None => println!("{text}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, text + "\n") {
                eprintln!("error: cannot write {path:?}: {e}");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut system = SystemKind::D2mNsR;
    let mut workload = "tpc-c".to_string();
    let mut rc = RunConfig::quick();
    let mut json = false;
    let mut md_scale = 1usize;
    let mut trace_out: Option<String> = None;
    let mut histograms = false;
    let mut sweep_name: Option<String> = None;
    let mut sweep_workloads: Option<String> = None;
    let mut sweep_systems: Option<String> = None;
    let mut sweep_md_scales: Option<String> = None;
    let mut sweep_jobs: Option<usize> = None;
    let mut sweep_out: Option<String> = None;
    let mut sweep_checkpoint: Option<String> = None;
    let mut sweep_resume = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                let specs = match catalog::all() {
                    Ok(specs) => specs,
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                };
                for s in specs {
                    println!("{:<16} ({})", s.name, s.category.name());
                }
                return;
            }
            "--json" => json = true,
            "--histograms" => histograms = true,
            "--trace-out" => trace_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--system" => match it.next().and_then(|v| parse_system(v)) {
                Some(k) => system = k,
                None => usage(),
            },
            "--workload" => workload = it.next().cloned().unwrap_or_else(|| usage()),
            "--instructions" => {
                rc.instructions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--warmup" => {
                rc.warmup_instructions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                rc.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--md-scale" => {
                md_scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--sweep" => sweep_name = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--workloads" => sweep_workloads = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--systems" => sweep_systems = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--md-scales" => sweep_md_scales = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--jobs" => {
                sweep_jobs = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--out" => sweep_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--checkpoint" => {
                sweep_checkpoint = Some(it.next().cloned().unwrap_or_else(|| usage()))
            }
            "--resume" => sweep_resume = true,
            _ => usage(),
        }
    }
    if let Some(name) = sweep_name {
        run_sweep_mode(
            &SweepArgs {
                name,
                workloads: sweep_workloads,
                systems: sweep_systems,
                md_scales: sweep_md_scales,
                jobs: sweep_jobs,
                out: sweep_out,
                checkpoint: sweep_checkpoint,
                resume: sweep_resume,
            },
            &rc,
        );
    }
    if sweep_workloads.is_some()
        || sweep_systems.is_some()
        || sweep_md_scales.is_some()
        || sweep_jobs.is_some()
        || sweep_out.is_some()
        || sweep_checkpoint.is_some()
        || sweep_resume
    {
        eprintln!("error: sweep flags require --sweep NAME");
        usage();
    }
    let spec = match catalog::by_name(&workload) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {e}; try --list");
            std::process::exit(2);
        }
    };
    let cfg = MachineConfig::default().scale_metadata(md_scale);

    let observe = trace_out.is_some() || histograms;
    let (m, obs) = if observe {
        match run_one_observed(system, &cfg, &spec, &rc) {
            Ok(o) => (o.metrics.clone(), Some(o)),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match run_one_checked(system, &cfg, &spec, &rc) {
            Ok(m) => (m, None),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };

    if let Some(o) = &obs {
        if let Some(path) = &trace_out {
            let text = o.to_json().to_string_pretty();
            if let Err(e) = std::fs::write(path, text + "\n") {
                eprintln!("error: cannot write {path:?}: {e}");
                std::process::exit(1);
            }
        }
        if histograms {
            println!("{}", o.probe.report().to_string_pretty());
            if json {
                // --json --histograms: metrics follow the probe report.
                use d2m_common::ToJson;
                println!("{}", m.to_json().to_string_pretty());
            }
            return;
        }
    }
    if json {
        use d2m_common::ToJson;
        println!("{}", m.to_json().to_string_pretty());
    } else {
        println!("system        {}", m.system);
        println!("workload      {} ({})", m.workload, m.category);
        println!("instructions  {}", m.instructions);
        println!("cycles        {}  (ipc {:.2})", m.cycles, m.ipc);
        println!(
            "msgs/KI       {:.1}  (d2m-specific {:.1})",
            m.msgs_per_kilo_inst, m.d2m_msgs_per_kilo_inst
        );
        println!("L1I miss      {:.2} / 100 inst", m.l1i_miss_pct);
        println!("L1D miss      {:.2} / 100 inst", m.l1d_miss_pct);
        println!("miss latency  {:.1} cycles", m.avg_miss_latency);
        println!(
            "NS local      I {:.0}%  D {:.0}%",
            m.ns_hit_ratio_i * 100.0,
            m.ns_hit_ratio_d * 100.0
        );
        println!("private miss  {:.0}%", m.private_miss_frac * 100.0);
        println!("energy        {:.3e} pJ   EDP {:.3e}", m.energy_pj, m.edp);
    }
}
