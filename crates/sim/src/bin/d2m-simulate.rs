//! Command-line front end: run any (system, workload) pair on any machine
//! configuration and print the metrics as a table or JSON.
//!
//! ```text
//! d2m-simulate --system d2m-ns-r --workload tpc-c --instructions 2000000
//! d2m-simulate --system base-2l --workload canneal --json
//! d2m-simulate --system d2m-ns --workload tpc-c --histograms
//! d2m-simulate --system d2m-ns --workload tpc-c --trace-out obs.json
//! d2m-simulate --list
//! ```

use d2m_common::config::MachineConfig;
use d2m_sim::{run_one_checked, run_one_observed, RunConfig, SystemKind};
use d2m_workloads::catalog;

fn usage() -> ! {
    eprintln!(
        "usage: d2m-simulate [--system NAME] [--workload NAME] \
         [--instructions N] [--warmup N] [--seed N] [--md-scale 1|2|4] \
         [--json] [--trace-out PATH] [--histograms] [--list]\n\
         systems: base-2l base-3l d2m-fs d2m-ns d2m-ns-r\n\
         --trace-out PATH  write the full observation (metrics, per-phase\n\
                           counters, probe histograms, traffic matrix,\n\
                           energy breakdown) as deterministic JSON to PATH\n\
         --histograms      print the probe report (per-level/per-endpoint\n\
                           counts, latency and hop histograms) to stdout"
    );
    std::process::exit(2)
}

fn parse_system(s: &str) -> Option<SystemKind> {
    match s.to_ascii_lowercase().as_str() {
        "base-2l" | "base2l" => Some(SystemKind::Base2L),
        "base-3l" | "base3l" => Some(SystemKind::Base3L),
        "d2m-fs" | "fs" => Some(SystemKind::D2mFs),
        "d2m-ns" | "ns" => Some(SystemKind::D2mNs),
        "d2m-ns-r" | "ns-r" | "nsr" => Some(SystemKind::D2mNsR),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut system = SystemKind::D2mNsR;
    let mut workload = "tpc-c".to_string();
    let mut rc = RunConfig::quick();
    let mut json = false;
    let mut md_scale = 1usize;
    let mut trace_out: Option<String> = None;
    let mut histograms = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                let specs = match catalog::all() {
                    Ok(specs) => specs,
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                };
                for s in specs {
                    println!("{:<16} ({})", s.name, s.category.name());
                }
                return;
            }
            "--json" => json = true,
            "--histograms" => histograms = true,
            "--trace-out" => trace_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--system" => match it.next().and_then(|v| parse_system(v)) {
                Some(k) => system = k,
                None => usage(),
            },
            "--workload" => workload = it.next().cloned().unwrap_or_else(|| usage()),
            "--instructions" => {
                rc.instructions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--warmup" => {
                rc.warmup_instructions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                rc.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--md-scale" => {
                md_scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let spec = match catalog::by_name(&workload) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {e}; try --list");
            std::process::exit(2);
        }
    };
    let cfg = MachineConfig::default().scale_metadata(md_scale);

    let observe = trace_out.is_some() || histograms;
    let (m, obs) = if observe {
        match run_one_observed(system, &cfg, &spec, &rc) {
            Ok(o) => (o.metrics.clone(), Some(o)),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match run_one_checked(system, &cfg, &spec, &rc) {
            Ok(m) => (m, None),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };

    if let Some(o) = &obs {
        if let Some(path) = &trace_out {
            let text = o.to_json().to_string_pretty();
            if let Err(e) = std::fs::write(path, text + "\n") {
                eprintln!("error: cannot write {path:?}: {e}");
                std::process::exit(1);
            }
        }
        if histograms {
            println!("{}", o.probe.report().to_string_pretty());
            if json {
                // --json --histograms: metrics follow the probe report.
                use d2m_common::ToJson;
                println!("{}", m.to_json().to_string_pretty());
            }
            return;
        }
    }
    if json {
        use d2m_common::ToJson;
        println!("{}", m.to_json().to_string_pretty());
    } else {
        println!("system        {}", m.system);
        println!("workload      {} ({})", m.workload, m.category);
        println!("instructions  {}", m.instructions);
        println!("cycles        {}  (ipc {:.2})", m.cycles, m.ipc);
        println!(
            "msgs/KI       {:.1}  (d2m-specific {:.1})",
            m.msgs_per_kilo_inst, m.d2m_msgs_per_kilo_inst
        );
        println!("L1I miss      {:.2} / 100 inst", m.l1i_miss_pct);
        println!("L1D miss      {:.2} / 100 inst", m.l1d_miss_pct);
        println!("miss latency  {:.1} cycles", m.avg_miss_latency);
        println!(
            "NS local      I {:.0}%  D {:.0}%",
            m.ns_hit_ratio_i * 100.0,
            m.ns_hit_ratio_d * 100.0
        );
        println!("private miss  {:.0}%", m.private_miss_frac * 100.0);
        println!("energy        {:.3e} pJ   EDP {:.3e}", m.energy_pj, m.edp);
    }
}
