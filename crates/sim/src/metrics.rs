//! Extracted per-run metrics — one field per quantity a paper table or
//! figure reports.

use d2m_common::stats::Counters;

/// All metrics extracted from one (system, workload) run, measured over the
/// post-warmup window.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMetrics {
    /// System display name ("Base-2L", …).
    pub system: String,
    /// Workload name ("canneal", …).
    pub workload: String,
    /// Workload suite ("Parallel", …).
    pub category: String,
    /// Instructions simulated in the measurement window.
    pub instructions: u64,
    /// Execution cycles (max over node clocks).
    pub cycles: u64,
    /// Aggregate (whole-chip) instructions per cycle; the upper bound is
    /// `nodes × base_ipc`.
    pub ipc: f64,
    /// Figure 5: on-chip messages per 1000 instructions.
    pub msgs_per_kilo_inst: f64,
    /// Figure 5 (lighter bars): D2M-specific messages per 1000 instructions.
    pub d2m_msgs_per_kilo_inst: f64,
    /// §V-B: on-chip data bytes per 1000 instructions.
    pub data_bytes_per_kilo_inst: f64,
    /// Table IV: L1-I misses per 100 instructions.
    pub l1i_miss_pct: f64,
    /// Table IV: L1-D misses per 100 instructions.
    pub l1d_miss_pct: f64,
    /// Table IV: late hits per 100 instructions, I side.
    pub late_i_pct: f64,
    /// Table IV: late hits per 100 instructions, D side.
    pub late_d_pct: f64,
    /// Table IV: near-side (local-slice) hit ratio over all LLC-level hits,
    /// instruction side (or L2 hit ratio for Base-3L).
    pub ns_hit_ratio_i: f64,
    /// Same, data side.
    pub ns_hit_ratio_d: f64,
    /// §V-D: average L1-miss latency in cycles.
    pub avg_miss_latency: f64,
    /// Median L1-miss latency (power-of-two bucket upper bound).
    pub p50_miss_latency: u64,
    /// 95th-percentile L1-miss latency (power-of-two bucket upper bound).
    pub p95_miss_latency: u64,
    /// Fraction of misses serviced by main memory.
    pub mem_service_frac: f64,
    /// Total energy (pJ) over the window (dynamic + NoC + memory + leakage).
    pub energy_pj: f64,
    /// Figure 6: energy-delay product (pJ·cycles).
    pub edp: f64,
    /// Energy share of D2M-only structures (Figure 6 lighter bars).
    pub d2m_energy_frac: f64,
    /// Table V: invalidation messages received by nodes.
    pub invalidations: u64,
    /// Table V: fraction of private-cache misses to private regions
    /// (D2M only; 0 for baselines).
    pub private_miss_frac: f64,
    /// §V-B: MD3 transactions (D2M) / directory accesses (baselines).
    pub dir_or_md3_accesses: u64,
    /// §V-B: MD2 lookups (D2M) / L2 tag searches (Base-3L).
    pub md2_or_l2tag_accesses: u64,
    /// Full counter delta for ad-hoc queries.
    pub counters: Counters,
}

d2m_common::impl_json_struct!(RunMetrics {
    system,
    workload,
    category,
    instructions,
    cycles,
    ipc,
    msgs_per_kilo_inst,
    d2m_msgs_per_kilo_inst,
    data_bytes_per_kilo_inst,
    l1i_miss_pct,
    l1d_miss_pct,
    late_i_pct,
    late_d_pct,
    ns_hit_ratio_i,
    ns_hit_ratio_d,
    avg_miss_latency,
    p50_miss_latency,
    p95_miss_latency,
    mem_service_frac,
    energy_pj,
    edp,
    d2m_energy_frac,
    invalidations,
    private_miss_frac,
    dir_or_md3_accesses,
    md2_or_l2tag_accesses,
    counters,
});

impl RunMetrics {
    /// A zeroed placeholder for a cell whose run failed.
    ///
    /// Keeps a sweep's cell grid complete (every index present, JSON shape
    /// unchanged) while [`crate::sweep::CellResult::error`] carries the
    /// cause.
    pub fn failed(system: &str, workload: &str, category: &str) -> Self {
        Self {
            system: system.to_string(),
            workload: workload.to_string(),
            category: category.to_string(),
            instructions: 0,
            cycles: 0,
            ipc: 0.0,
            msgs_per_kilo_inst: 0.0,
            d2m_msgs_per_kilo_inst: 0.0,
            data_bytes_per_kilo_inst: 0.0,
            l1i_miss_pct: 0.0,
            l1d_miss_pct: 0.0,
            late_i_pct: 0.0,
            late_d_pct: 0.0,
            ns_hit_ratio_i: 0.0,
            ns_hit_ratio_d: 0.0,
            avg_miss_latency: 0.0,
            p50_miss_latency: 0,
            p95_miss_latency: 0,
            mem_service_frac: 0.0,
            energy_pj: 0.0,
            edp: 0.0,
            d2m_energy_frac: 0.0,
            invalidations: 0,
            private_miss_frac: 0.0,
            dir_or_md3_accesses: 0,
            md2_or_l2tag_accesses: 0,
            counters: Counters::new(),
        }
    }

    /// Speedup of this run relative to `base` (same workload).
    pub fn speedup_vs(&self, base: &RunMetrics) -> f64 {
        debug_assert_eq!(self.workload, base.workload);
        // Same instruction count by construction; compare cycles.
        base.cycles as f64 / self.cycles.max(1) as f64
    }

    /// EDP normalized to `base` (same workload).
    pub fn edp_vs(&self, base: &RunMetrics) -> f64 {
        self.edp / base.edp.max(f64::MIN_POSITIVE)
    }

    /// Traffic normalized to `base` (same workload).
    pub fn traffic_vs(&self, base: &RunMetrics) -> f64 {
        self.msgs_per_kilo_inst / base.msgs_per_kilo_inst.max(f64::MIN_POSITIVE)
    }
}

/// Renders a set of runs as CSV (header + one row per run), for external
/// plotting of the figures.
pub fn to_csv(runs: &[RunMetrics]) -> String {
    let mut out = String::from(
        "system,workload,category,instructions,cycles,ipc,msgs_per_ki,         d2m_msgs_per_ki,data_bytes_per_ki,l1i_miss_pct,l1d_miss_pct,         late_i_pct,late_d_pct,ns_hit_i,ns_hit_d,avg_miss_latency,         mem_service_frac,energy_pj,edp,d2m_energy_frac,invalidations,         private_miss_frac
",
    );
    for m in runs {
        out.push_str(&format!(
            "{},{},{},{},{},{:.4},{:.3},{:.3},{:.3},{:.4},{:.4},{:.4},{:.4},             {:.4},{:.4},{:.2},{:.4},{:.6e},{:.6e},{:.4},{},{:.4}
",
            m.system,
            m.workload,
            m.category,
            m.instructions,
            m.cycles,
            m.ipc,
            m.msgs_per_kilo_inst,
            m.d2m_msgs_per_kilo_inst,
            m.data_bytes_per_kilo_inst,
            m.l1i_miss_pct,
            m.l1d_miss_pct,
            m.late_i_pct,
            m.late_d_pct,
            m.ns_hit_ratio_i,
            m.ns_hit_ratio_d,
            m.avg_miss_latency,
            m.mem_service_frac,
            m.energy_pj,
            m.edp,
            m.d2m_energy_frac,
            m.invalidations,
            m.private_miss_frac,
        ));
    }
    out
}

/// Subtracts two counter snapshots (`after - before`), saturating at zero.
pub fn counters_delta(after: &Counters, before: &Counters) -> Counters {
    after
        .iter()
        .map(|(k, v)| (k.to_string(), v.saturating_sub(before.get(k))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(cycles: u64, edp: f64, msgs: f64) -> RunMetrics {
        RunMetrics {
            system: "x".into(),
            workload: "w".into(),
            category: "c".into(),
            instructions: 1000,
            cycles,
            ipc: 1.0,
            msgs_per_kilo_inst: msgs,
            d2m_msgs_per_kilo_inst: 0.0,
            data_bytes_per_kilo_inst: 0.0,
            l1i_miss_pct: 0.0,
            l1d_miss_pct: 0.0,
            late_i_pct: 0.0,
            late_d_pct: 0.0,
            ns_hit_ratio_i: 0.0,
            ns_hit_ratio_d: 0.0,
            avg_miss_latency: 0.0,
            p50_miss_latency: 0,
            p95_miss_latency: 0,
            mem_service_frac: 0.0,
            energy_pj: 1.0,
            edp,
            d2m_energy_frac: 0.0,
            invalidations: 0,
            private_miss_frac: 0.0,
            dir_or_md3_accesses: 0,
            md2_or_l2tag_accesses: 0,
            counters: Counters::new(),
        }
    }

    #[test]
    fn relative_metrics() {
        let base = m(1000, 10.0, 100.0);
        let fast = m(800, 5.0, 30.0);
        assert!((fast.speedup_vs(&base) - 1.25).abs() < 1e-12);
        assert!((fast.edp_vs(&base) - 0.5).abs() < 1e-12);
        assert!((fast.traffic_vs(&base) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn csv_has_one_row_per_run_plus_header() {
        let runs = vec![m(10, 1.0, 2.0), m(20, 2.0, 3.0)];
        let csv = to_csv(&runs);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("system,workload"));
        assert!(csv.lines().nth(1).unwrap().starts_with("x,w,c,1000,10,"));
    }

    #[test]
    fn delta_saturates() {
        let mut a = Counters::new();
        a.set("x", 10).set("y", 5);
        let mut b = Counters::new();
        b.set("x", 3).set("y", 9);
        let d = counters_delta(&a, &b);
        assert_eq!(d.get("x"), 7);
        assert_eq!(d.get("y"), 0);
    }
}
