//! Parallel deterministic sweep engine.
//!
//! A [`SweepSpec`] declares a grid of *cells* — the cartesian product of
//! machine configurations, systems and workloads — plus the run length and a
//! single master seed. [`run_sweep`] fans the cells over a work-stealing
//! worker pool (one `std::thread` per job slot; the pool size defaults to the
//! machine's parallelism and can be overridden with the `D2M_JOBS`
//! environment variable) and aggregates the per-cell [`RunMetrics`] into a
//! [`SweepResult`] whose cells appear in **cell-index order**, independent of
//! which worker finished first.
//!
//! # Determinism
//!
//! The engine's contract is *bit-identical results regardless of thread
//! count or scheduling*:
//!
//! * Every cell derives its own RNG seed with
//!   [`derive_stream_seed`]`(master_seed, stream_index)` — a pure function of
//!   the spec, never of execution order. The stream index covers the
//!   `(config, workload)` axes only: all systems simulating one workload see
//!   the **same trace**, which is what makes paired metrics such as
//!   [`RunMetrics::speedup_vs`] meaningful.
//! * Cells never share mutable state; each worker builds its own system and
//!   generator from the cell seed.
//! * [`SweepResult::to_json`] is rendered with the workspace's deterministic
//!   JSON ([`d2m_common::json`]) and deliberately **excludes** wall-clock
//!   time and the job count, so a 1-thread run and an N-thread run of the
//!   same spec serialize to byte-identical text. The root-level
//!   `tests/sweep_determinism.rs` test pins this property.
//!
//! # Fault tolerance
//!
//! A grid of 45 workloads × 5 systems × several configs is hours of
//! wall-clock; one bad cell must never cost the other N−1:
//!
//! * **Panic isolation** — every cell attempt runs under
//!   [`std::panic::catch_unwind`]. A panicking worker (an invalid machine
//!   config, a simulator bug, an injected fault) yields a failed
//!   [`CellResult`] with the panic message in [`CellResult::error`]; the
//!   pool, and every other cell, keeps running.
//! * **Bounded retry** — a cell failing with a *retryable* [`RunError`]
//!   (see [`RunError::is_retryable`]) is retried up to [`MAX_ATTEMPTS`]
//!   times with deterministic exponential backoff. The attempt count is
//!   carried in [`CellResult::attempts`] and surfaced by
//!   [`ObservedSweep::histograms_json`].
//! * **Checkpoint / resume** — [`crate::checkpoint`] journals each
//!   completed cell to an append-only fsync'd file, so a killed sweep
//!   resumes without recomputing finished cells and still produces
//!   byte-identical JSON.
//! * **Fault injection** — the recovery paths are provoked on demand via
//!   [`d2m_common::faultpoint`] (`D2M_FAULT=cell:17:panic`, …); the `cell`
//!   fault point fires once per attempt with the cell index as its key and
//!   the sweep name as its scope.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use d2m_common::config::MachineConfig;
use d2m_common::json::{FromJson, Json, JsonError, ToJson};
use d2m_common::probe::RecordingProbe;
use d2m_common::rng::derive_stream_seed;
use d2m_workloads::WorkloadSpec;

use crate::metrics::RunMetrics;
use crate::runner::{run_one_checked, run_one_observed, RunConfig, RunError, RunObservation};
use crate::systems::SystemKind;

/// Maximum execution attempts per cell: the first run plus up to two
/// retries for failures that are [`RunError::is_retryable`].
pub const MAX_ATTEMPTS: u32 = 3;

/// One named machine configuration in a sweep grid.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigPoint {
    /// Label used in cell results and JSON (e.g. `"default"`, `"md2x"`).
    pub label: String,
    /// The machine configuration for this grid point.
    pub config: MachineConfig,
}

d2m_common::impl_json_struct!(ConfigPoint { label, config });

/// A declarative sweep grid: every `(config, workload, system)` triple
/// becomes one cell.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (carried into the result and its JSON).
    pub name: String,
    /// Machine configurations (outermost axis).
    pub configs: Vec<ConfigPoint>,
    /// Systems to simulate (innermost axis).
    pub systems: Vec<SystemKind>,
    /// Workloads to drive (middle axis).
    pub workloads: Vec<WorkloadSpec>,
    /// Instructions to measure per cell (after warmup).
    pub instructions: u64,
    /// Warmup instructions per cell (excluded from metrics).
    pub warmup_instructions: u64,
    /// Master seed; per-cell seeds are derived from it.
    pub master_seed: u64,
}

d2m_common::impl_json_struct!(SweepSpec {
    name,
    configs,
    systems,
    workloads,
    instructions,
    warmup_instructions,
    master_seed,
});

impl SweepSpec {
    /// A single-configuration sweep (the common case behind
    /// [`crate::experiments::run_matrix`] and the figure benchmarks).
    pub fn single(
        name: &str,
        cfg: &MachineConfig,
        systems: &[SystemKind],
        workloads: &[WorkloadSpec],
        rc: &RunConfig,
    ) -> Self {
        Self {
            name: name.to_string(),
            configs: vec![ConfigPoint {
                label: "default".to_string(),
                config: cfg.clone(),
            }],
            systems: systems.to_vec(),
            workloads: workloads.to_vec(),
            instructions: rc.instructions,
            warmup_instructions: rc.warmup_instructions,
            master_seed: rc.seed,
        }
    }

    /// Total number of cells in the grid.
    pub fn num_cells(&self) -> usize {
        self.configs.len() * self.workloads.len() * self.systems.len()
    }

    /// Decomposes a cell index into `(config_idx, workload_idx, system_idx)`.
    ///
    /// Cell order is config-major, then workload, then system:
    /// `index = (config_idx * W + workload_idx) * S + system_idx`.
    pub fn cell_coords(&self, index: usize) -> (usize, usize, usize) {
        let s = self.systems.len();
        let w = self.workloads.len();
        let system_idx = index % s;
        let workload_idx = (index / s) % w;
        let config_idx = index / (s * w);
        (config_idx, workload_idx, system_idx)
    }

    /// The RNG seed for a cell. Pure function of the spec and the cell's
    /// `(config, workload)` coordinates — the system axis is deliberately
    /// excluded so every system replays the identical trace for a workload.
    pub fn cell_seed(&self, index: usize) -> u64 {
        let (config_idx, workload_idx, _) = self.cell_coords(index);
        let stream_index = (config_idx * self.workloads.len() + workload_idx) as u64;
        derive_stream_seed(self.master_seed, stream_index)
    }

    /// The [`RunConfig`] that reproduces cell `index` through
    /// [`run_one`] on its own, outside the pool.
    pub fn cell_run_config(&self, index: usize) -> RunConfig {
        RunConfig {
            instructions: self.instructions,
            warmup_instructions: self.warmup_instructions,
            seed: self.cell_seed(index),
        }
    }
}

/// One completed cell of a sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// Cell index in the spec's grid order.
    pub index: u64,
    /// Config label of the cell's [`ConfigPoint`].
    pub config: String,
    /// Simulated system.
    pub system: SystemKind,
    /// Workload name.
    pub workload: String,
    /// Derived RNG seed the cell ran with.
    pub seed: u64,
    /// Extracted metrics ([`RunMetrics::failed`] placeholder if `error` is
    /// set).
    pub metrics: RunMetrics,
    /// Execution attempts the cell took (1 = first try, up to
    /// [`MAX_ATTEMPTS`]). Greater than 1 only when a retryable failure was
    /// retried; serialized only in that case, so clean sweeps keep the
    /// pre-existing byte format.
    pub attempts: u32,
    /// Why the cell failed, if it did. A corrupted-metadata or coherence
    /// failure — or a worker panic — marks its own cell and leaves the rest
    /// of the sweep intact.
    pub error: Option<String>,
}

impl CellResult {
    /// True when the cell completed and `metrics` are real.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

// Hand-written instead of `impl_json_struct!` so the `attempts` and `error`
// keys appear only on retried/failed cells: sweeps without failures keep the
// exact pre-existing byte format (the golden-output and determinism tests
// pin it). The checkpoint journal depends on this encoding round-tripping
// byte-identically — see `failed_and_clean_cells_roundtrip_byte_identically`.
impl ToJson for CellResult {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("index".to_string(), self.index.to_json()),
            ("config".to_string(), self.config.to_json()),
            ("system".to_string(), self.system.to_json()),
            ("workload".to_string(), self.workload.to_json()),
            ("seed".to_string(), self.seed.to_json()),
            ("metrics".to_string(), self.metrics.to_json()),
        ];
        if self.attempts > 1 {
            fields.push(("attempts".to_string(), Json::U64(u64::from(self.attempts))));
        }
        if let Some(e) = &self.error {
            fields.push(("error".to_string(), Json::Str(e.clone())));
        }
        Json::Obj(fields)
    }
}

impl FromJson for CellResult {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            index: j.field("index")?,
            config: j.field("config")?,
            system: j.field("system")?,
            workload: j.field("workload")?,
            seed: j.field("seed")?,
            metrics: j.field("metrics")?,
            attempts: match j.get("attempts") {
                None => 1,
                Some(_) => j.field("attempts")?,
            },
            error: match j.get("error") {
                None => None,
                Some(e) => Some(
                    e.as_str()
                        .ok_or_else(|| JsonError("cell error must be a string".into()))?
                        .to_string(),
                ),
            },
        })
    }
}

/// The aggregated, deterministic result of a sweep.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Sweep name from the spec.
    pub name: String,
    /// Master seed from the spec.
    pub master_seed: u64,
    /// Completed cells, in cell-index order.
    pub cells: Vec<CellResult>,
    /// Worker threads the sweep actually used (not serialized: execution
    /// detail, not a result).
    pub jobs_used: usize,
    /// Wall-clock seconds the sweep took (not serialized).
    pub wall_secs: f64,
}

// `jobs_used`/`wall_secs` are execution details; serializing them would
// break the byte-identity guarantee across thread counts.
d2m_common::impl_json_struct!(SweepResult {
    name,
    master_seed,
    cells,
} skip { jobs_used, wall_secs });

impl SweepResult {
    /// Renders the result as pretty-printed deterministic JSON — the shared
    /// emission path for every bench binary. Byte-identical across thread
    /// counts for the same spec.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parses a result previously written by [`Self::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns an error when `text` is not valid JSON or does not match the
    /// [`SweepResult`] shape.
    pub fn from_json_string(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// The cell for `(config label, system, workload)`, if present.
    pub fn get(&self, config: &str, system: SystemKind, workload: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.config == config && c.system == system && c.workload == workload)
    }

    /// Clones the run metrics of every cell under one config label, in cell
    /// order (workload-major, system-minor).
    pub fn runs_for_config(&self, config: &str) -> Vec<RunMetrics> {
        self.cells
            .iter()
            .filter(|c| c.config == config)
            .map(|c| c.metrics.clone())
            .collect()
    }

    /// The cells that failed (corrupted metadata or coherence violations),
    /// in cell-index order.
    pub fn failures(&self) -> Vec<&CellResult> {
        self.cells.iter().filter(|c| !c.ok()).collect()
    }
}

/// The worker-pool size: `D2M_JOBS` if set to an integer ≥ 1, else the
/// machine's available parallelism.
///
/// Accepted `D2M_JOBS` values are decimal integers ≥ 1 (surrounding
/// whitespace ignored). Anything else — `0`, a negative number, garbage —
/// is rejected with a one-time warning on stderr naming the value, and the
/// default is used instead of silently falling through.
pub fn default_jobs() -> usize {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    if let Ok(v) = std::env::var("D2M_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        WARN_ONCE.call_once(|| {
            eprintln!(
                "warning: ignoring D2M_JOBS={v:?} (expected an integer >= 1); \
                 using available parallelism"
            );
        });
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs a sweep on the default pool size (see [`default_jobs`]).
///
/// Worker panics and run failures never abort the sweep; see
/// [`run_sweep_with_jobs`] for the per-cell failure semantics.
pub fn run_sweep(spec: &SweepSpec) -> SweepResult {
    run_sweep_with_jobs(spec, default_jobs())
}

/// The work-stealing pool shared by the plain, observed and checkpointed
/// sweeps: workers pull the next unclaimed cell index from an atomic
/// counter, run it in isolation, and deposit the result into its
/// preassigned slot — so the output order never depends on scheduling.
///
/// `run_cell` closures are expected to be panic-free (cell execution wraps
/// every attempt in `catch_unwind`); should one panic anyway, the slot stays
/// `None` — the caller substitutes a failed placeholder — and lock poisoning
/// is shrugged off rather than cascading into an abort of the whole pool.
pub(crate) fn pool_run<T: Send>(
    n: usize,
    jobs: usize,
    run_cell: impl Fn(usize) -> T + Sync,
) -> Vec<Option<T>> {
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(n).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let result = run_cell(index);
                slots.lock().unwrap_or_else(PoisonError::into_inner)[index] = Some(result);
            });
        }
    });
    slots.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// The cell's static identity plus the run config that reproduces it.
fn cell_identity(spec: &SweepSpec, index: usize) -> (&ConfigPoint, SystemKind, &WorkloadSpec) {
    let (ci, wi, si) = spec.cell_coords(index);
    (&spec.configs[ci], spec.systems[si], &spec.workloads[wi])
}

/// Renders a panic payload as the cell error string. Deterministic for the
/// common `&str`/`String` payloads (including injected-fault panics), so a
/// sweep containing a panicked cell still serializes reproducibly.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministic exponential backoff before retry `attempt` (1-based): a
/// pure function of the attempt number — never randomized — so retried
/// sweeps remain reproducible in everything but wall-clock time.
fn retry_backoff(attempt: u32) -> Duration {
    Duration::from_millis(2u64 << attempt.min(6))
}

/// Runs one cell body under panic isolation with bounded retry.
///
/// Each attempt is wrapped in `catch_unwind`; a panic becomes an `Err` with
/// the panic message and is **not** retried (a deterministic panic would
/// recur, and a nondeterministic one left unknown state behind). A
/// [`RunError::is_retryable`] failure is retried after [`retry_backoff`]
/// until [`MAX_ATTEMPTS`] is exhausted. Returns the outcome plus the number
/// of attempts consumed.
fn run_attempts<T>(run: impl Fn() -> Result<T, RunError>) -> (Result<T, String>, u32) {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(&run)) {
            Ok(Ok(v)) => return (Ok(v), attempts),
            Ok(Err(e)) if e.is_retryable() && attempts < MAX_ATTEMPTS => {
                std::thread::sleep(retry_backoff(attempts));
            }
            Ok(Err(e)) => return (Err(e.to_string()), attempts),
            Err(p) => {
                return (
                    Err(format!("worker panicked: {}", panic_message(p.as_ref()))),
                    attempts,
                )
            }
        }
    }
}

/// Assembles a [`CellResult`] from an outcome produced by [`run_attempts`].
fn finish_cell(
    spec: &SweepSpec,
    index: usize,
    outcome: Result<RunMetrics, String>,
    attempts: u32,
) -> CellResult {
    let (point, system, workload) = cell_identity(spec, index);
    let (metrics, error) = match outcome {
        Ok(m) => (m, None),
        Err(e) => (
            RunMetrics::failed(system.name(), &workload.name, workload.category.name()),
            Some(e),
        ),
    };
    CellResult {
        index: index as u64,
        config: point.label.clone(),
        system,
        workload: workload.name.clone(),
        seed: spec.cell_seed(index),
        metrics,
        attempts,
        error,
    }
}

/// The `cell` fault point: one chance per attempt for an armed rule to
/// panic, exit, or request an injected transient failure.
fn injected_fault(spec: &SweepSpec, index: usize) -> Option<RunError> {
    if d2m_common::faultpoint::fire("cell", &spec.name, index as u64) {
        let (_, system, workload) = cell_identity(spec, index);
        Some(RunError::Injected {
            system: system.name(),
            workload: workload.name.clone(),
        })
    } else {
        None
    }
}

pub(crate) fn run_cell(spec: &SweepSpec, index: usize) -> CellResult {
    let (point, system, workload) = cell_identity(spec, index);
    let rc = spec.cell_run_config(index);
    let (outcome, attempts) = run_attempts(|| {
        if let Some(e) = injected_fault(spec, index) {
            return Err(e);
        }
        run_one_checked(system, &point.config, workload, &rc)
    });
    finish_cell(spec, index, outcome, attempts)
}

/// The placeholder for a slot the pool never filled — only reachable if a
/// worker died outside the per-attempt isolation, which the engine treats
/// as a failed cell rather than a reason to lose the sweep.
pub(crate) fn missing_cell(spec: &SweepSpec, index: usize) -> CellResult {
    finish_cell(
        spec,
        index,
        Err("cell never completed (worker lost)".to_string()),
        1,
    )
}

/// Runs a sweep on exactly `jobs` worker threads.
///
/// # Failure semantics
///
/// A cell never takes the sweep down with it. Every attempt runs under
/// `catch_unwind`, so a run failure (corrupted metadata, coherence
/// violation) *or a worker panic* is reported through [`CellResult::error`]
/// — with placeholder metrics — while every other cell completes normally;
/// [`SweepResult::failures`] lists the casualties in cell-index order.
/// Retryable failures (see [`RunError::is_retryable`]) are retried up to
/// [`MAX_ATTEMPTS`] times with deterministic backoff, and the attempt count
/// lands in [`CellResult::attempts`].
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn run_sweep_with_jobs(spec: &SweepSpec, jobs: usize) -> SweepResult {
    assert!(jobs >= 1, "sweep needs at least one worker");
    let started = Instant::now();
    let n = spec.num_cells();
    let jobs_used = jobs.min(n.max(1));
    let cells = pool_run(n, jobs_used, |index| run_cell(spec, index))
        .into_iter()
        .enumerate()
        .map(|(i, c)| c.unwrap_or_else(|| missing_cell(spec, i)))
        .collect();
    SweepResult {
        name: spec.name.clone(),
        master_seed: spec.master_seed,
        cells,
        jobs_used,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// An observed sweep: the ordinary [`SweepResult`] plus the per-cell
/// transaction recordings and their aggregate.
#[derive(Clone, Debug)]
pub struct ObservedSweep {
    /// The scalar results, identical to [`run_sweep_with_jobs`]'s for the
    /// same spec.
    pub result: SweepResult,
    /// Per-cell observations in cell-index order; `None` for failed cells.
    pub observations: Vec<Option<RunObservation>>,
    /// Every successful cell's probe merged in cell-index order.
    pub aggregate: RecordingProbe,
}

impl ObservedSweep {
    /// Deterministic histogram JSON: the aggregate probe report plus one
    /// entry per cell (its probe report, or its error). Byte-identical
    /// across worker-thread counts for the same spec.
    pub fn histograms_json(&self) -> Json {
        let cells = self
            .result
            .cells
            .iter()
            .zip(&self.observations)
            .map(|(c, o)| {
                let mut fields = vec![
                    ("index".to_string(), Json::U64(c.index)),
                    ("config".to_string(), Json::Str(c.config.clone())),
                    ("system".to_string(), Json::Str(c.system.name().to_string())),
                    ("workload".to_string(), Json::Str(c.workload.clone())),
                ];
                // Omit-when-default: `attempts` appears only when a retry
                // actually happened, mirroring the scalar cell encoding.
                if c.attempts > 1 {
                    fields.push(("attempts".to_string(), Json::U64(u64::from(c.attempts))));
                }
                match o {
                    Some(o) => fields.push(("probe".to_string(), o.probe.report())),
                    // Omit-when-absent: a cell with no observation and no
                    // recorded error gets neither field.
                    None => {
                        if let Some(e) = &c.error {
                            fields.push(("error".to_string(), Json::Str(e.clone())));
                        }
                    }
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("name".to_string(), Json::Str(self.result.name.clone())),
            ("aggregate".to_string(), self.aggregate.report()),
            ("cells".to_string(), Json::Arr(cells)),
        ])
    }
}

/// Runs an observed sweep on the default pool size (see [`default_jobs`]).
///
/// Worker panics and run failures never abort the sweep; see
/// [`run_sweep_with_jobs`] for the per-cell failure semantics.
pub fn run_sweep_observed(spec: &SweepSpec) -> ObservedSweep {
    run_sweep_observed_with_jobs(spec, default_jobs())
}

/// Runs a sweep with the full observability layer on every cell (see
/// [`run_one_observed`]), on exactly `jobs` worker threads.
///
/// Per-cell probes are merged into [`ObservedSweep::aggregate`] in
/// cell-index order after the pool drains, so the aggregate — like
/// [`ObservedSweep::histograms_json`] — is byte-identical across thread
/// counts.
///
/// Cells fail in isolation exactly as in [`run_sweep_with_jobs`] (panic
/// capture, bounded retry); a failed cell contributes no observation and
/// nothing to the aggregate.
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn run_sweep_observed_with_jobs(spec: &SweepSpec, jobs: usize) -> ObservedSweep {
    assert!(jobs >= 1, "sweep needs at least one worker");
    let started = Instant::now();
    let n = spec.num_cells();
    let jobs_used = jobs.min(n.max(1));
    let pairs = pool_run(n, jobs_used, |index| {
        let (point, system, workload) = cell_identity(spec, index);
        let rc = spec.cell_run_config(index);
        let (outcome, attempts) = run_attempts(|| {
            if let Some(e) = injected_fault(spec, index) {
                return Err(e);
            }
            run_one_observed(system, &point.config, workload, &rc)
        });
        let (obs, scalar) = match outcome {
            Ok(o) => {
                let metrics = o.metrics.clone();
                (Some(o), Ok(metrics))
            }
            Err(e) => (None, Err(e)),
        };
        (finish_cell(spec, index, scalar, attempts), obs)
    });
    let (cells, observations): (Vec<_>, Vec<_>) = pairs
        .into_iter()
        .enumerate()
        .map(|(i, pair)| pair.unwrap_or_else(|| (missing_cell(spec, i), None)))
        .unzip();
    let mut aggregate = RecordingProbe::new();
    for o in observations.iter().flatten() {
        aggregate.merge(&o.probe);
    }
    ObservedSweep {
        result: SweepResult {
            name: spec.name.clone(),
            master_seed: spec.master_seed,
            cells,
            jobs_used,
            wall_secs: started.elapsed().as_secs_f64(),
        },
        observations,
        aggregate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_one;
    use d2m_workloads::catalog;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny".into(),
            configs: vec![
                ConfigPoint {
                    label: "default".into(),
                    config: MachineConfig::default(),
                },
                ConfigPoint {
                    label: "md2x".into(),
                    config: MachineConfig::default().scale_metadata(2),
                },
            ],
            systems: vec![SystemKind::Base2L, SystemKind::D2mNsR],
            workloads: vec![
                catalog::by_name("swaptions").unwrap(),
                catalog::by_name("mix2").unwrap(),
            ],
            instructions: 20_000,
            warmup_instructions: 5_000,
            master_seed: 42,
        }
    }

    #[test]
    fn cell_indexing_is_config_major_then_workload_then_system() {
        let spec = tiny_spec();
        assert_eq!(spec.num_cells(), 8);
        assert_eq!(spec.cell_coords(0), (0, 0, 0));
        assert_eq!(spec.cell_coords(1), (0, 0, 1));
        assert_eq!(spec.cell_coords(2), (0, 1, 0));
        assert_eq!(spec.cell_coords(4), (1, 0, 0));
        assert_eq!(spec.cell_coords(7), (1, 1, 1));
    }

    #[test]
    fn systems_share_the_workload_seed() {
        let spec = tiny_spec();
        // Cells 0 and 1 differ only in the system axis.
        assert_eq!(spec.cell_seed(0), spec.cell_seed(1));
        // Different workloads and configs get distinct streams.
        assert_ne!(spec.cell_seed(0), spec.cell_seed(2));
        assert_ne!(spec.cell_seed(0), spec.cell_seed(4));
    }

    #[test]
    fn sweep_fills_every_cell_in_order() {
        let spec = tiny_spec();
        let res = run_sweep_with_jobs(&spec, 3);
        assert_eq!(res.cells.len(), 8);
        for (i, c) in res.cells.iter().enumerate() {
            assert_eq!(c.index, i as u64);
        }
        assert!(res.get("md2x", SystemKind::D2mNsR, "mix2").is_some());
        assert_eq!(res.runs_for_config("default").len(), 4);
        assert_eq!(res.jobs_used, 3);
    }

    #[test]
    fn single_cell_reproducible_via_run_one() {
        let spec = tiny_spec();
        let res = run_sweep_with_jobs(&spec, 2);
        let idx = 5;
        let (ci, wi, si) = spec.cell_coords(idx);
        let m = run_one(
            spec.systems[si],
            &spec.configs[ci].config,
            &spec.workloads[wi],
            &spec.cell_run_config(idx),
        );
        assert_eq!(res.cells[idx].metrics, m);
    }

    #[test]
    fn json_roundtrip_preserves_cells() {
        let mut spec = tiny_spec();
        spec.configs.truncate(1);
        spec.workloads.truncate(1);
        let res = run_sweep_with_jobs(&spec, 1);
        let text = res.to_json_string();
        let back = SweepResult::from_json_string(&text).unwrap();
        assert_eq!(back.name, res.name);
        assert_eq!(back.master_seed, res.master_seed);
        assert_eq!(back.cells, res.cells);
        // Execution details are not serialized.
        assert_eq!(back.jobs_used, 0);
        assert_eq!(back.wall_secs, 0.0);
    }

    #[test]
    fn d2m_jobs_env_is_ignored_by_explicit_jobs() {
        let spec = tiny_spec();
        let res = run_sweep_with_jobs(&spec, 1);
        assert_eq!(res.jobs_used, 1);
    }

    #[test]
    fn default_jobs_accepts_integers_and_rejects_garbage() {
        // No other test reads D2M_JOBS (sweeps under test pass explicit job
        // counts), so mutating the process environment here is safe.
        std::env::set_var("D2M_JOBS", " 3 ");
        assert_eq!(default_jobs(), 3);
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        for bad in ["0", "-2", "many", ""] {
            std::env::set_var("D2M_JOBS", bad);
            assert_eq!(default_jobs(), fallback, "D2M_JOBS={bad:?}");
        }
        std::env::remove_var("D2M_JOBS");
        assert_eq!(default_jobs(), fallback);
    }

    #[test]
    fn successful_cells_have_no_error_and_no_error_key() {
        let mut spec = tiny_spec();
        spec.configs.truncate(1);
        spec.workloads.truncate(1);
        let res = run_sweep_with_jobs(&spec, 2);
        assert!(res.failures().is_empty());
        assert!(res.cells.iter().all(CellResult::ok));
        // The `error` key must be absent, not `null`: byte format is pinned.
        assert!(!res.to_json_string().contains("\"error\""));
    }

    #[test]
    fn failed_cell_roundtrips_through_json() {
        let mut spec = tiny_spec();
        spec.configs.truncate(1);
        spec.workloads.truncate(1);
        let mut res = run_sweep_with_jobs(&spec, 1);
        res.cells[0].error = Some("synthetic failure".into());
        res.cells[0].metrics = RunMetrics::failed("Base-2L", "swaptions", "Parallel");
        let back = SweepResult::from_json_string(&res.to_json_string()).unwrap();
        assert_eq!(back.cells, res.cells);
        assert_eq!(back.failures().len(), 1);
    }

    #[test]
    fn failed_and_clean_cells_roundtrip_byte_identically() {
        // PR 3 made `histograms_json` (and the scalar encoding) omit keys
        // on clean cells; resume rebuilds `SweepResult`s from re-parsed
        // cells, so serialize → parse → serialize must be a byte-level
        // fixed point even when failed and clean cells are mixed.
        let mut spec = tiny_spec();
        spec.workloads.truncate(1);
        let mut res = run_sweep_with_jobs(&spec, 2);
        assert!(res.cells.len() >= 4);
        res.cells[1].error = Some("synthetic: corrupted LI".into());
        res.cells[1].metrics = RunMetrics::failed("D2M-NS-R", "swaptions", "Parallel");
        res.cells[2].attempts = 3;
        res.cells[3].attempts = 2;
        res.cells[3].error = Some("injected transient fault on Base-2L/swaptions".into());
        let first = res.to_json_string();
        let back = SweepResult::from_json_string(&first).unwrap();
        assert_eq!(back.cells, res.cells);
        assert_eq!(back.failures().len(), 2);
        let second = back.to_json_string();
        assert!(
            first.as_bytes() == second.as_bytes(),
            "serialize → parse → serialize must be byte-identical"
        );
    }

    #[test]
    fn attempts_key_is_omitted_until_a_retry_happens() {
        let mut spec = tiny_spec();
        spec.configs.truncate(1);
        spec.workloads.truncate(1);
        let mut res = run_sweep_with_jobs(&spec, 1);
        assert!(res.cells.iter().all(|c| c.attempts == 1));
        assert!(!res.to_json_string().contains("\"attempts\""));
        res.cells[0].attempts = MAX_ATTEMPTS;
        let text = res.to_json_string();
        assert!(text.contains("\"attempts\": 3"), "{text}");
        let back = SweepResult::from_json_string(&text).unwrap();
        assert_eq!(back.cells[0].attempts, MAX_ATTEMPTS);
        assert_eq!(back.cells[1].attempts, 1, "absent key decodes as 1");
    }

    #[test]
    fn injected_panic_is_isolated_to_its_cell() {
        let mut spec = tiny_spec();
        spec.name = "unit-panic".into();
        let _g = d2m_common::faultpoint::arm("cell@unit-panic:3:panic").unwrap();
        let res = run_sweep_with_jobs(&spec, 2);
        assert_eq!(res.cells.len(), 8, "no cell may be lost");
        let failures = res.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 3);
        let err = failures[0].error.as_deref().unwrap();
        assert!(
            err.contains("worker panicked") && err.contains("injected fault at cell:3"),
            "{err}"
        );
        // Panics are not retried.
        assert_eq!(failures[0].attempts, 1);
        for c in res.cells.iter().filter(|c| c.index != 3) {
            assert!(c.ok(), "cell {} must be unaffected", c.index);
        }
    }

    #[test]
    fn retryable_injected_error_retries_and_succeeds() {
        let mut spec = tiny_spec();
        spec.name = "unit-retry".into();
        spec.configs.truncate(1);
        spec.workloads.truncate(1);
        // Fail the first two attempts of cell 1; the third succeeds.
        let _g = d2m_common::faultpoint::arm("cell@unit-retry:1:error:2").unwrap();
        let res = run_sweep_with_jobs(&spec, 1);
        assert!(res.failures().is_empty());
        assert_eq!(res.cells[1].attempts, 3);
        assert_eq!(res.cells[0].attempts, 1);
        // The recovered cell's metrics are the ordinary deterministic ones.
        let clean = run_sweep_with_jobs(&spec, 1);
        assert_eq!(res.cells[1].metrics, clean.cells[1].metrics);
    }

    #[test]
    fn persistent_injected_error_fails_after_max_attempts() {
        let mut spec = tiny_spec();
        spec.name = "unit-exhaust".into();
        spec.configs.truncate(1);
        spec.workloads.truncate(1);
        let _g = d2m_common::faultpoint::arm("cell@unit-exhaust:0:error").unwrap();
        let res = run_sweep_with_jobs(&spec, 1);
        let failures = res.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].attempts, MAX_ATTEMPTS);
        assert!(
            failures[0]
                .error
                .as_deref()
                .unwrap()
                .contains("injected transient fault"),
            "{:?}",
            failures[0].error
        );
    }

    #[test]
    fn observed_sweep_is_thread_count_invariant() {
        let mut spec = tiny_spec();
        spec.workloads.truncate(1);
        spec.instructions = 10_000;
        spec.warmup_instructions = 2_000;
        let a = run_sweep_observed_with_jobs(&spec, 1);
        let b = run_sweep_observed_with_jobs(&spec, 4);
        assert_eq!(
            a.result.to_json_string(),
            b.result.to_json_string(),
            "scalar results must not depend on the worker count"
        );
        assert_eq!(
            a.histograms_json().to_string_pretty(),
            b.histograms_json().to_string_pretty(),
            "histogram aggregation must not depend on the worker count"
        );
        assert!(a.aggregate.events > 0);
    }

    #[test]
    fn histograms_json_omits_error_for_skipped_cells() {
        let mut spec = tiny_spec();
        spec.configs.truncate(1);
        spec.workloads.truncate(1);
        spec.instructions = 10_000;
        spec.warmup_instructions = 2_000;
        let mut obs = run_sweep_observed_with_jobs(&spec, 1);
        // A skipped cell: no observation, but also no recorded error. The
        // omit-when-absent convention forbids an empty `"error": ""` here.
        obs.observations[0] = None;
        obs.result.cells[0].error = None;
        let text = obs.histograms_json().to_string_pretty();
        assert!(
            !text.contains("\"error\""),
            "skipped cell must omit the error field entirely:\n{text}"
        );
        // A genuinely failed cell still reports its error string.
        obs.result.cells[0].error = Some("synthetic failure".into());
        let text = obs.histograms_json().to_string_pretty();
        assert!(text.contains("\"error\": \"synthetic failure\""), "{text}");
    }

    #[test]
    fn observed_sweep_matches_plain_sweep_metrics() {
        let mut spec = tiny_spec();
        spec.configs.truncate(1);
        spec.workloads.truncate(1);
        spec.instructions = 10_000;
        spec.warmup_instructions = 2_000;
        let plain = run_sweep_with_jobs(&spec, 2);
        let observed = run_sweep_observed_with_jobs(&spec, 2);
        assert_eq!(
            plain.to_json_string(),
            observed.result.to_json_string(),
            "observation must never perturb the simulation"
        );
    }
}
