//! Trace-driven simulation runner and experiment presets.
//!
//! Ties the workload generator to the five simulated systems (Base-2L,
//! Base-3L, D2M-FS, D2M-NS, D2M-NS-R), applies the analytic core timing
//! model (paper §V-D: infinite bandwidth, I-misses stall the core, D-misses
//! are mostly hidden), finalizes energy (structure accesses + NoC + memory +
//! leakage) and extracts every metric the paper's tables and figures report.
//! The [`sweep`] module fans declarative (config × workload × system) grids
//! over a deterministic work-stealing thread pool, with per-cell panic
//! isolation and bounded retry; the [`checkpoint`] module adds an
//! append-only journal so a killed sweep resumes without losing completed
//! cells.
//!
//! # Example
//!
//! ```no_run
//! use d2m_sim::{run_one, RunConfig, SystemKind};
//! use d2m_common::MachineConfig;
//! use d2m_workloads::catalog;
//!
//! let cfg = MachineConfig::default();
//! let spec = catalog::by_name("tpc-c").unwrap();
//! let m = run_one(SystemKind::D2mNsR, &cfg, &spec, &RunConfig::quick());
//! println!("{}: {:.1} msgs/KI", m.system, m.msgs_per_kilo_inst);
//! ```

pub mod checkpoint;
pub mod experiments;
pub mod metrics;
pub mod runner;
pub mod sweep;
pub mod systems;

pub use checkpoint::{run_sweep_checkpointed, CheckpointError};
pub use experiments::{run_matrix, MatrixResult};
pub use metrics::RunMetrics;
pub use runner::{run_one, run_one_checked, run_one_observed, RunConfig, RunError, RunObservation};
pub use sweep::{
    default_jobs, run_sweep, run_sweep_observed, run_sweep_observed_with_jobs, run_sweep_with_jobs,
    CellResult, ConfigPoint, ObservedSweep, SweepResult, SweepSpec,
};
pub use systems::{AnySystem, SystemKind};
