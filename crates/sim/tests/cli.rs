//! End-to-end tests of the `d2m-simulate` command-line front end.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_d2m-simulate"));
    // Isolate every invocation from fault rules leaking in from the
    // caller's environment; tests that want faults set D2M_FAULT themselves.
    c.env_remove("D2M_FAULT").env_remove("D2M_JOBS");
    c
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("d2m-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The sweep grid shared by the sweep-mode tests: small enough to finish in
/// seconds, wide enough to exercise both a baseline and a D2M system.
const SWEEP_ARGS: [&str; 10] = [
    "--workloads",
    "swaptions,mix2",
    "--systems",
    "base-2l,d2m-ns-r",
    "--instructions",
    "20000",
    "--warmup",
    "5000",
    "--jobs",
    "2",
];

#[test]
fn cli_runs_a_quick_simulation() {
    let out = bin()
        .args([
            "--system",
            "d2m-ns-r",
            "--workload",
            "swaptions",
            "--instructions",
            "40000",
            "--warmup",
            "10000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("D2M-NS-R"));
    assert!(stdout.contains("msgs/KI"));
}

#[test]
fn cli_emits_json() {
    let out = bin()
        .args([
            "--system",
            "base-2l",
            "--workload",
            "google",
            "--instructions",
            "30000",
            "--warmup",
            "5000",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8");
    let v = d2m_common::Json::parse(&text).expect("valid JSON metrics");
    assert_eq!(v.get("system").and_then(|s| s.as_str()), Some("Base-2L"));
    assert!(v.get("cycles").and_then(|c| c.as_u64()).unwrap() > 0);
}

#[test]
fn cli_lists_workloads() {
    let out = bin().arg("--list").output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 45);
    assert!(stdout.contains("canneal"));
}

#[test]
fn cli_rejects_unknown_workload() {
    let out = bin()
        .args(["--workload", "not-a-workload"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn cli_sweep_writes_result_json_and_exits_zero() {
    let path = tmp("sweep-basic.json");
    let out = bin()
        .args(["--sweep", "cli-basic"])
        .args(SWEEP_ARGS)
        .args(["--out", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let res = d2m_sim::SweepResult::from_json_string(&text).expect("valid sweep JSON");
    assert_eq!(res.name, "cli-basic");
    assert_eq!(res.cells.len(), 4);
    assert!(res.failures().is_empty());
}

#[test]
fn cli_sweep_survives_an_injected_panic_and_exits_zero() {
    let path = tmp("sweep-panic.json");
    let out = bin()
        .args(["--sweep", "cli-panic"])
        .args(SWEEP_ARGS)
        .args(["--out", path.to_str().unwrap()])
        .env("D2M_FAULT", "cell@cli-panic:1:panic")
        .output()
        .expect("binary runs");
    // A failing cell is a result, not an operational error.
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cell 1 failed"), "{stderr}");
    let text = std::fs::read_to_string(&path).unwrap();
    let res = d2m_sim::SweepResult::from_json_string(&text).unwrap();
    assert_eq!(res.cells.len(), 4, "no cell may be lost");
    let failures = res.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].index, 1);
    assert!(failures[0].error.as_deref().unwrap().contains("panicked"));
}

#[test]
fn cli_sweep_kill_and_resume_is_byte_identical() {
    let clean = tmp("sweep-clean.json");
    let resumed = tmp("sweep-resumed.json");
    let ckpt = tmp("sweep-kill.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    let out = bin()
        .args(["--sweep", "cli-kill"])
        .args(SWEEP_ARGS)
        .args(["--out", clean.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    // A real process death: the checkpoint fault point exits hard after the
    // second journaled cell, past any in-process cleanup.
    let out = bin()
        .args(["--sweep", "cli-kill"])
        .args(SWEEP_ARGS)
        .args(["--checkpoint", ckpt.to_str().unwrap()])
        .env("D2M_FAULT", "checkpoint@cli-kill:2:exit")
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(d2m_common::faultpoint::EXIT_CODE),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // At least header + the two cells that fired the exit are durable; the
    // other worker may have appended (or been killed mid-append) after the
    // second append but before the exit took effect.
    let journaled = std::fs::read_to_string(&ckpt).unwrap().lines().count();
    assert!((3..=4).contains(&journaled), "{journaled} journal lines");

    let out = bin()
        .args(["--sweep", "cli-kill"])
        .args(SWEEP_ARGS)
        .args(["--checkpoint", ckpt.to_str().unwrap()])
        .args(["--out", resumed.to_str().unwrap(), "--resume"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&clean).unwrap(),
        std::fs::read(&resumed).unwrap(),
        "kill + resume must reproduce the uninterrupted output byte for byte"
    );
}

#[test]
fn cli_sweep_resume_without_checkpoint_is_a_usage_error() {
    let out = bin()
        .args(["--sweep", "x", "--resume"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--resume requires --checkpoint"),
        "{stderr}"
    );
}

#[test]
fn cli_sweep_flags_without_sweep_are_a_usage_error() {
    let out = bin().args(["--jobs", "2"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("require --sweep"), "{stderr}");
}

#[test]
fn cli_sweep_rejects_unknown_system_in_list() {
    let out = bin()
        .args(["--sweep", "x", "--systems", "base-2l,warp-drive"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warp-drive"), "{stderr}");
}
