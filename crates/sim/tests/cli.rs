//! End-to-end tests of the `d2m-simulate` command-line front end.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_d2m-simulate"))
}

#[test]
fn cli_runs_a_quick_simulation() {
    let out = bin()
        .args([
            "--system",
            "d2m-ns-r",
            "--workload",
            "swaptions",
            "--instructions",
            "40000",
            "--warmup",
            "10000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("D2M-NS-R"));
    assert!(stdout.contains("msgs/KI"));
}

#[test]
fn cli_emits_json() {
    let out = bin()
        .args([
            "--system",
            "base-2l",
            "--workload",
            "google",
            "--instructions",
            "30000",
            "--warmup",
            "5000",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8");
    let v = d2m_common::Json::parse(&text).expect("valid JSON metrics");
    assert_eq!(v.get("system").and_then(|s| s.as_str()), Some("Base-2L"));
    assert!(v.get("cycles").and_then(|c| c.as_u64()).unwrap() > 0);
}

#[test]
fn cli_lists_workloads() {
    let out = bin().arg("--list").output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 45);
    assert!(stdout.contains("canneal"));
}

#[test]
fn cli_rejects_unknown_workload() {
    let out = bin()
        .args(["--workload", "not-a-workload"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}
