//! End-to-end throughput benchmarks: simulated instructions per second for
//! each system on representative workloads. These gate the practicality of
//! the experiment harness (the full Figure 5–7 sweep is 225 such runs).
//! Runs on the in-tree wall-clock harness ([`d2m_bench::timing`]).

use std::hint::black_box;

use d2m_bench::timing::bench;
use d2m_common::MachineConfig;
use d2m_sim::{AnySystem, SystemKind};
use d2m_workloads::{catalog, TraceGen};

fn main() {
    let cfg = MachineConfig::default();
    for wl in ["swaptions", "tpc-c"] {
        let spec = catalog::by_name(wl).unwrap();
        for kind in [SystemKind::Base2L, SystemKind::D2mNsR] {
            // One persistent system per benchmark: steady-state throughput,
            // not cold-start costs.
            let mut sys = AnySystem::build(kind, &cfg, 1);
            let mut gen = TraceGen::new(&spec, cfg.nodes, 1);
            let mut batch = Vec::new();
            // Warm the hierarchy.
            let mut warm = 0;
            while warm < 200_000 {
                batch.clear();
                warm += gen.next_batch(&mut batch);
                for a in &batch {
                    sys.access(a, 0).unwrap();
                }
            }
            // One iteration simulates one generator batch (~48 insts).
            bench(&format!("simulate/{wl}/{}", kind.name()), || {
                batch.clear();
                black_box(gen.next_batch(&mut batch));
                for a in &batch {
                    black_box(sys.access(a, 0).unwrap());
                }
            });
        }
    }
}
