//! End-to-end throughput benchmarks: simulated instructions per second for
//! each system on representative workloads. These gate the practicality of
//! the experiment harness (the full Figure 5–7 sweep is 225 such runs).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use d2m_common::MachineConfig;
use d2m_sim::{AnySystem, SystemKind};
use d2m_workloads::{catalog, TraceGen};

fn bench_end_to_end(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    let mut group = c.benchmark_group("simulate");
    for wl in ["swaptions", "tpc-c"] {
        let spec = catalog::by_name(wl).unwrap();
        for kind in [SystemKind::Base2L, SystemKind::D2mNsR] {
            // One persistent system per benchmark: steady-state throughput,
            // not cold-start costs.
            let mut sys = AnySystem::build(kind, &cfg, 1);
            let mut gen = TraceGen::new(&spec, cfg.nodes, 1);
            let mut batch = Vec::new();
            // Warm the hierarchy.
            let mut warm = 0;
            while warm < 200_000 {
                batch.clear();
                warm += gen.next_batch(&mut batch);
                for a in &batch {
                    sys.access(a, 0);
                }
            }
            group.throughput(Throughput::Elements(48)); // ~insts per batch
            group.bench_function(format!("{wl}/{}", kind.name()), |b| {
                b.iter(|| {
                    batch.clear();
                    let insts = gen.next_batch(&mut batch);
                    for a in &batch {
                        black_box(sys.access(a, 0));
                    }
                    insts
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_end_to_end
}
criterion_main!(benches);
