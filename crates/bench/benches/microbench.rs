//! Micro-benchmarks of the simulator's hot paths: set-associative lookup,
//! LI pack/unpack, workload generation, and single-access protocol latencies
//! for each system. Runs on the in-tree wall-clock harness
//! ([`d2m_bench::timing`]); `harness = false` in `Cargo.toml`.

use std::hint::black_box;

use d2m_bench::timing::bench;
use d2m_cache::SetAssoc;
use d2m_common::addr::{Asid, NodeId, VAddr};
use d2m_common::MachineConfig;
use d2m_core::{Li, LiEncoding};
use d2m_sim::{AnySystem, SystemKind};
use d2m_workloads::{catalog, Access, AccessKind, TraceGen};

fn bench_set_assoc() {
    let mut arr: SetAssoc<u64> = SetAssoc::new(512, 8);
    for k in 0..4096u64 {
        let set = arr.set_index(k);
        let way = arr.victim_way(set);
        arr.insert_at(set, way, k, k);
    }
    let mut k = 0u64;
    bench("set_assoc/keyed_lookup_hit", || {
        k = (k + 1) & 4095;
        let set = arr.set_index(k);
        black_box(arr.peek(set, k));
    });
    let mut s = 0usize;
    bench("set_assoc/victim_way", || {
        s = (s + 1) & 511;
        black_box(arr.victim_way(s));
    });
}

fn bench_li() {
    let mut i = 0u8;
    bench("li/pack_unpack_roundtrip", || {
        i = (i + 1) & 63;
        let li = Li::unpack(i, LiEncoding::NearSide);
        black_box(li.pack(LiEncoding::NearSide).ok());
    });
}

fn bench_tracegen() {
    let spec = catalog::by_name("tpc-c").unwrap();
    let mut gen = TraceGen::new(&spec, 8, 1);
    let mut batch = Vec::new();
    bench("workloads/next_batch_tpcc", || {
        batch.clear();
        black_box(gen.next_batch(&mut batch));
    });
}

fn bench_single_access() {
    let cfg = MachineConfig::default();
    for kind in [SystemKind::Base2L, SystemKind::D2mFs, SystemKind::D2mNsR] {
        let mut sys = AnySystem::build(kind, &cfg, 1);
        // Warm one line so the benchmark measures the L1-hit fast path.
        let a = Access {
            node: NodeId::new(0),
            asid: Asid(0),
            kind: AccessKind::Load,
            vaddr: VAddr::new(0x100_0000),
        };
        sys.access(&a, 0).unwrap();
        let mut now = 1u64;
        bench(&format!("access/l1_hit/{}", kind.name()), || {
            now += 1;
            black_box(sys.access(&a, now).unwrap());
        });
    }
}

fn main() {
    bench_set_assoc();
    bench_li();
    bench_tracegen();
    bench_single_access();
}
