//! Criterion micro-benchmarks of the simulator's hot paths: set-associative
//! lookup, LI pack/unpack, workload generation, and single-access protocol
//! latencies for each system.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use d2m_cache::SetAssoc;
use d2m_common::addr::{Asid, NodeId, VAddr};
use d2m_common::MachineConfig;
use d2m_core::{Li, LiEncoding};
use d2m_sim::{AnySystem, SystemKind};
use d2m_workloads::{catalog, Access, AccessKind, TraceGen};

fn bench_set_assoc(c: &mut Criterion) {
    let mut arr: SetAssoc<u64> = SetAssoc::new(512, 8);
    for k in 0..4096u64 {
        let set = arr.set_index(k);
        let way = arr.victim_way(set);
        arr.insert_at(set, way, k, k);
    }
    c.bench_function("set_assoc/keyed_lookup_hit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) & 4095;
            let set = arr.set_index(k);
            black_box(arr.peek(set, k));
        })
    });
    c.bench_function("set_assoc/victim_way", |b| {
        let mut s = 0usize;
        b.iter(|| {
            s = (s + 1) & 511;
            black_box(arr.victim_way(s));
        })
    });
}

fn bench_li(c: &mut Criterion) {
    c.bench_function("li/pack_unpack_roundtrip", |b| {
        let mut i = 0u8;
        b.iter(|| {
            i = (i + 1) & 63;
            let li = Li::unpack(i, LiEncoding::NearSide);
            black_box(li.pack(LiEncoding::NearSide).ok());
        })
    });
}

fn bench_tracegen(c: &mut Criterion) {
    let spec = catalog::by_name("tpc-c").unwrap();
    let mut gen = TraceGen::new(&spec, 8, 1);
    let mut batch = Vec::new();
    c.bench_function("workloads/next_batch_tpcc", |b| {
        b.iter(|| {
            batch.clear();
            black_box(gen.next_batch(&mut batch));
        })
    });
}

fn bench_single_access(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    for kind in [SystemKind::Base2L, SystemKind::D2mFs, SystemKind::D2mNsR] {
        let mut sys = AnySystem::build(kind, &cfg, 1);
        // Warm one line so the benchmark measures the L1-hit fast path.
        let a = Access {
            node: NodeId::new(0),
            asid: Asid(0),
            kind: AccessKind::Load,
            vaddr: VAddr::new(0x100_0000),
        };
        sys.access(&a, 0);
        c.bench_function(&format!("access/l1_hit/{}", kind.name()), |b| {
            let mut now = 1u64;
            b.iter(|| {
                now += 1;
                black_box(sys.access(&a, now));
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_set_assoc, bench_li, bench_tracegen, bench_single_access
}
criterion_main!(benches);
