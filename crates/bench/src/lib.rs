//! Experiment harness reproducing every table and figure of the D2M paper.
//!
//! Each binary in `src/bin/` regenerates one paper artifact and prints
//! paper-vs-measured columns:
//!
//! | binary | artifact |
//! |---|---|
//! | `table4` | Table IV — L1 miss / late-hit ratios, NS-LLC hit ratios |
//! | `table5` | Table V — received invalidations, % misses to private regions |
//! | `fig5_traffic` | Figure 5 — network messages / kilo-instruction |
//! | `fig6_edp` | Figure 6 — cache-hierarchy EDP normalized to Base-2L |
//! | `fig7_speedup` | Figure 7 — speedup over Base-2L |
//! | `pkmo` | Appendix — protocol events per kilo memory operation |
//! | `structure_pressure` | §V-B — MD3 vs directory, MD2 vs L2-tag pressure |
//! | `ablation_mdscale` | footnote 5 — MD capacity 1×/2×/4× sweep |
//! | `ablation_scramble` | §IV-D — dynamic indexing on strided workloads |
//! | `lockbits` | appendix — MD3 lock-bit collision rates |
//! | `ablation_bypass` | §I — region-predictor cache bypassing |
//! | `ablation_private_l2` | Figure 2 — optional private L2 level |
//! | `ablation_traditional` | §III-A — traditional front end |
//! | `energy_breakdown` | Figure 6 — per-structure energy composition |
//! | `workload_stats` | catalog parameter listing |
//! | `calibrate`, `traffic_debug` | calibration utilities (kept for reproducibility) |
//!
//! All binaries accept `--quick` for a fast, reduced-length run.

use d2m_common::config::MachineConfig;
use d2m_common::ToJson;
use d2m_sim::{run_sweep, MatrixResult, RunConfig, SweepResult, SweepSpec, SystemKind};
use d2m_workloads::catalog;

/// Harness-wide run parameters derived from the command line.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Simulation length per (system, workload) pair.
    pub rc: RunConfig,
    /// True when `--quick` was passed.
    pub quick: bool,
}

/// Parses harness flags (`--quick`) from `std::env::args`.
pub fn parse_args() -> HarnessConfig {
    let quick = std::env::args().any(|a| a == "--quick");
    let rc = if quick {
        RunConfig {
            instructions: 150_000,
            warmup_instructions: 80_000,
            seed: 42,
        }
    } else {
        RunConfig::full()
    };
    HarnessConfig { rc, quick }
}

/// The evaluation machine configuration (Table III analogue).
pub fn machine() -> MachineConfig {
    MachineConfig::default()
}

/// Prints a rule line matching `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:5.1}", x * 100.0)
}

/// FNV-1a hash of a deterministic-JSON rendering, used to key sweep caches.
fn json_hash<T: ToJson>(value: &T) -> u64 {
    d2m_common::fnv1a_64(value.to_json().to_string_compact().as_bytes())
}

/// Runs a sweep, with its deterministic JSON cached on disk under `target/`.
///
/// The cache file is keyed by a hash of the whole [`SweepSpec`] (grid,
/// run length, master seed), so any parameter change invalidates stale
/// results, and every bench binary shares the same emission path
/// ([`SweepResult::to_json_string`]).
pub fn cached_sweep(spec: &SweepSpec) -> SweepResult {
    let cache = format!(
        "target/d2m-sweep-{}-{:016x}.json",
        spec.name,
        json_hash(spec)
    );
    if let Ok(text) = std::fs::read_to_string(&cache) {
        if let Ok(res) = SweepResult::from_json_string(&text) {
            if res.cells.len() == spec.num_cells() {
                eprintln!("[sweep:{}] loaded cache {cache}", spec.name);
                return res;
            }
        }
    }
    eprintln!(
        "[sweep:{}] running {} cells on {} jobs (cache: {cache}) ...",
        spec.name,
        spec.num_cells(),
        d2m_sim::default_jobs()
    );
    let res = run_sweep(spec);
    eprintln!(
        "[sweep:{}] done in {:.1}s on {} jobs",
        spec.name, res.wall_secs, res.jobs_used
    );
    let _ = std::fs::write(&cache, res.to_json_string());
    res
}

/// Runs (or loads from the on-disk cache) the full 45-workload × 5-system
/// matrix behind Tables IV/V and Figures 5/6/7, on the parallel sweep
/// engine.
pub fn full_matrix(hc: &HarnessConfig) -> MatrixResult {
    let spec = SweepSpec::single(
        "full-matrix",
        &machine(),
        &SystemKind::ALL,
        &catalog::all().expect("catalog specs are valid"),
        &hc.rc,
    );
    let res = cached_sweep(&spec);
    let m = MatrixResult::from_runs(res.runs_for_config("default"));
    let csv = format!(
        "target/d2m-sweep-{}-{:016x}.csv",
        spec.name,
        json_hash(&spec)
    );
    let _ = std::fs::write(&csv, d2m_sim::metrics::to_csv(m.runs()));
    eprintln!("[sweep:{}] CSV for external plotting: {csv}", spec.name);
    m
}

/// Prints the standard harness header.
pub fn header(title: &str, hc: &HarnessConfig) {
    println!("== {title} ==");
    println!(
        "   {} instructions / workload ({} warmup){}",
        hc.rc.instructions,
        hc.rc.warmup_instructions,
        if hc.quick { "  [--quick]" } else { "" }
    );
}

/// Minimal wall-clock micro-benchmark harness used by the `benches/`
/// binaries (`harness = false`; the workspace carries no external benchmark
/// framework).
pub mod timing {
    use std::time::{Duration, Instant};

    /// Times `f` and prints its mean cost per iteration.
    ///
    /// A short warmup sizes the batch so one measurement pass lasts roughly
    /// `measure`; results are indicative (wall-clock, no statistics) — the
    /// goal is spotting order-of-magnitude regressions in the hot paths.
    pub fn bench<F: FnMut()>(name: &str, mut f: F) {
        let warmup = Duration::from_millis(200);
        let measure = Duration::from_millis(600);
        // Warmup while estimating iterations/second.
        let t0 = Instant::now();
        let mut warm_iters = 0u64;
        while t0.elapsed() < warmup {
            f();
            warm_iters += 1;
        }
        let per_iter = t0.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters = ((measure.as_secs_f64() / per_iter) as u64).max(1);
        let t1 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = t1.elapsed().as_secs_f64() * 1e9 / iters as f64;
        println!("{name:<40} {ns:>12.1} ns/iter   ({iters} iters)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_is_valid() {
        machine().validate().unwrap();
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.545).trim(), "54.5");
    }
}
