//! Experiment harness reproducing every table and figure of the D2M paper.
//!
//! Each binary in `src/bin/` regenerates one paper artifact and prints
//! paper-vs-measured columns:
//!
//! | binary | artifact |
//! |---|---|
//! | `table4` | Table IV — L1 miss / late-hit ratios, NS-LLC hit ratios |
//! | `table5` | Table V — received invalidations, % misses to private regions |
//! | `fig5_traffic` | Figure 5 — network messages / kilo-instruction |
//! | `fig6_edp` | Figure 6 — cache-hierarchy EDP normalized to Base-2L |
//! | `fig7_speedup` | Figure 7 — speedup over Base-2L |
//! | `pkmo` | Appendix — protocol events per kilo memory operation |
//! | `structure_pressure` | §V-B — MD3 vs directory, MD2 vs L2-tag pressure |
//! | `ablation_mdscale` | footnote 5 — MD capacity 1×/2×/4× sweep |
//! | `ablation_scramble` | §IV-D — dynamic indexing on strided workloads |
//! | `lockbits` | appendix — MD3 lock-bit collision rates |
//! | `ablation_bypass` | §I — region-predictor cache bypassing |
//! | `ablation_private_l2` | Figure 2 — optional private L2 level |
//! | `ablation_traditional` | §III-A — traditional front end |
//! | `energy_breakdown` | Figure 6 — per-structure energy composition |
//! | `workload_stats` | catalog parameter listing |
//! | `calibrate`, `traffic_debug` | calibration utilities (kept for reproducibility) |
//!
//! All binaries accept `--quick` for a fast, reduced-length run.

use d2m_common::config::MachineConfig;
use d2m_sim::{MatrixResult, RunConfig, SystemKind};
use d2m_workloads::catalog;

/// Harness-wide run parameters derived from the command line.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Simulation length per (system, workload) pair.
    pub rc: RunConfig,
    /// True when `--quick` was passed.
    pub quick: bool,
}

/// Parses harness flags (`--quick`) from `std::env::args`.
pub fn parse_args() -> HarnessConfig {
    let quick = std::env::args().any(|a| a == "--quick");
    let rc = if quick {
        RunConfig {
            instructions: 150_000,
            warmup_instructions: 80_000,
            seed: 42,
        }
    } else {
        RunConfig::full()
    };
    HarnessConfig { rc, quick }
}

/// The evaluation machine configuration (Table III analogue).
pub fn machine() -> MachineConfig {
    MachineConfig::default()
}

/// Prints a rule line matching `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:5.1}", x * 100.0)
}

/// Runs (or loads from the on-disk cache) the full 45-workload × 5-system
/// matrix behind Tables IV/V and Figures 5/6/7.
///
/// The cache lives under `target/` and is keyed by run length and seed, so
/// the five figure binaries share one sweep.
pub fn full_matrix(hc: &HarnessConfig) -> MatrixResult {
    let cfg_hash = {
        // Key the cache by the full machine configuration, so parameter
        // changes invalidate stale sweeps.
        let json = serde_json::to_string(&machine()).expect("serializable config");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    };
    let cache = format!(
        "target/d2m-matrix-{}-{}-{}-{cfg_hash:016x}.json",
        hc.rc.instructions, hc.rc.warmup_instructions, hc.rc.seed
    );
    if let Ok(bytes) = std::fs::read(&cache) {
        if let Ok(runs) = serde_json::from_slice(&bytes) {
            eprintln!("[matrix] loaded cache {cache}");
            return MatrixResult::from_runs(runs);
        }
    }
    eprintln!("[matrix] running 45 workloads x 5 systems (cache: {cache}) ...");
    let t0 = std::time::Instant::now();
    let m = d2m_sim::run_matrix(&machine(), &SystemKind::ALL, &catalog::all(), &hc.rc);
    eprintln!("[matrix] done in {:.0?}", t0.elapsed());
    if let Ok(bytes) = serde_json::to_vec(m.runs()) {
        let _ = std::fs::write(&cache, bytes);
    }
    let csv = cache.replace(".json", ".csv");
    let _ = std::fs::write(&csv, d2m_sim::metrics::to_csv(m.runs()));
    eprintln!("[matrix] CSV for external plotting: {csv}");
    m
}

/// Prints the standard harness header.
pub fn header(title: &str, hc: &HarnessConfig) {
    println!("== {title} ==");
    println!(
        "   {} instructions / workload ({} warmup){}",
        hc.rc.instructions,
        hc.rc.warmup_instructions,
        if hc.quick { "  [--quick]" } else { "" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_is_valid() {
        machine().validate().unwrap();
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.545).trim(), "54.5");
    }
}
