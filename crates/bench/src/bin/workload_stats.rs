//! Prints the full workload catalog with its behavioural parameters — the
//! reproducible definition of what each named benchmark means in this
//! reproduction (see `d2m_workloads::spec` for the model).

use d2m_workloads::catalog;

fn main() {
    println!(
        "{:<16} {:<9} {:>8} {:>7} {:>7} {:>8} {:>7} {:>7} {:>8} {:>7} {:>6} {:>12}",
        "workload",
        "suite",
        "code-KL",
        "hotC%",
        "jump%",
        "hot-ln",
        "pHot%",
        "warm-R",
        "priv-ln",
        "shar%",
        "wr%",
        "sharing"
    );
    println!("{}", "-".repeat(118));
    for s in catalog::all().expect("catalog specs are valid") {
        println!(
            "{:<16} {:<9} {:>8} {:>7.1} {:>7.0} {:>8} {:>7.1} {:>7} {:>8} {:>7.1} {:>6.0} {:>12}",
            s.name,
            s.category.name(),
            s.code_lines / 1000,
            s.p_hot_code * 100.0,
            s.jump_prob * 100.0,
            s.hot_lines,
            s.p_hot * 100.0,
            s.warm_regions,
            s.private_lines,
            s.shared_frac * 100.0,
            s.write_frac * 100.0,
            format!("{:?}", s.sharing),
        );
    }
    println!(
        "\ncode-KL = code footprint in kilo-lines; hotC% = jumps targeting hot code;\n\
         warm-R = LLC-scale warm set in 16-line regions; priv-ln = total private\n\
         footprint in lines; shar% = shared-access fraction. Strided scans and\n\
         migratory epochs are in the catalog source."
    );
}
