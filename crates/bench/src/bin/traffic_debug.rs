//! Message-class breakdown for calibration: which protocol messages make up
//! each system's traffic on a given workload.

use d2m_bench::{machine, parse_args};
use d2m_sim::{run_one, SystemKind};
use d2m_workloads::catalog;

fn main() {
    let hc = parse_args();
    let cfg = machine();
    let names: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let names = if names.is_empty() {
        vec!["mix2".to_string(), "tpc-c".to_string()]
    } else {
        names
    };
    for name in names {
        let spec = catalog::by_name(&name).expect("workload");
        println!("=== {name} ===");
        for kind in [SystemKind::Base2L, SystemKind::D2mFs, SystemKind::D2mNsR] {
            let m = run_one(kind, &cfg, &spec, &hc.rc);
            println!(
                "\n{} — {:.1} msgs/KI, miss I {:.2} D {:.2} /100inst, inv {}, edp {:.3e}, mem_frac {:.2}, ns I/D {:.2}/{:.2}, late I/D {:.2}/{:.2}, misslat {:.0}",
                m.system,
                m.msgs_per_kilo_inst,
                m.l1i_miss_pct,
                m.l1d_miss_pct,
                m.invalidations,
                m.edp,
                m.mem_service_frac,
                m.ns_hit_ratio_i,
                m.ns_hit_ratio_d,
                m.late_i_pct,
                m.late_d_pct,
                m.avg_miss_latency,
            );
            let ki = m.instructions as f64 / 1000.0;
            for (k, v) in m.counters.iter() {
                if k.starts_with("noc.msg.") && v > 0 {
                    println!("  {:<24} {:>10.2}/KI", &k[8..], v as f64 / ki);
                }
            }
            for key in [
                "md2.evictions",
                "md2.prunes",
                "md3.evictions",
                "case.a",
                "case.b",
                "case.c",
                "case.d1",
                "case.d2",
                "case.d3",
                "case.d4",
                "case.silent_upgrade",
                "md1.hits",
                "md1.accesses",
                "md2.hits",
                "md2.accesses",
                "md3.accesses",
                "case.d",
                "case.e",
                "case.f",
                "mem.fills",
            ] {
                let v = m.counters.get(key);
                if v > 0 {
                    println!("  {:<24} {:>10.2}/KI", key, v as f64 / ki);
                }
            }
        }
        println!();
    }
}
