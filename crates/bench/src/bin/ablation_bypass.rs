//! Cache-bypass ablation (paper §I optimization list): streaming regions
//! skip LLC allocation when the region-metadata predictor has seen many
//! fills with no LLC reuse. Compares D2M-NS-R with and without bypassing on
//! streaming-heavy and reuse-heavy workloads.

use d2m_bench::{header, machine, parse_args, rule};
use d2m_core::{D2mFeatures, D2mSystem, D2mVariant};
use d2m_sim::RunConfig;
use d2m_workloads::{catalog, TraceGen};

struct Outcome {
    bypassed: u64,
    llc_evictions_proxy: u64,
    mem_fills: u64,
    ns_local: u64,
}

fn run(spec_name: &str, bypass: bool, rc: &RunConfig) -> Outcome {
    let cfg = machine();
    let spec = catalog::by_name(spec_name).expect("workload");
    let feats = D2mFeatures {
        near_side: true,
        replication: true,
        dynamic_indexing: true,
        bypass,
        private_l2: false,
        traditional_l1: false,
    };
    let mut sys = D2mSystem::with_features(&cfg, D2mVariant::NearSideRepl, feats, rc.seed);
    let mut gen = TraceGen::new(&spec, cfg.nodes, rc.seed);
    let mut batch = Vec::new();
    let mut insts = 0;
    while insts < rc.warmup_instructions + rc.instructions {
        batch.clear();
        insts += gen.next_batch(&mut batch);
        for a in &batch {
            sys.access(a, 0).unwrap();
        }
    }
    let c = sys.raw_counters();
    Outcome {
        bypassed: c.bypassed_fills,
        llc_evictions_proxy: c.ns_alloc_local + c.ns_alloc_remote,
        mem_fills: c.mem_fills,
        ns_local: c.ns_local_d + c.ns_local_i,
    }
}

fn main() {
    let hc = parse_args();
    header("Cache-bypass ablation (D2M-NS-R ± bypass)", &hc);
    println!(
        "\n{:<16} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "workload", "bypass", "bypassed", "LLC allocs", "mem fills", "NS-local"
    );
    rule(78);
    for name in ["streamcluster", "radix", "canneal", "facebook", "swaptions"] {
        for bypass in [false, true] {
            let o = run(name, bypass, &hc.rc);
            println!(
                "{:<16} {:>8} {:>12} {:>12} {:>12} {:>12}",
                name,
                if bypass { "on" } else { "off" },
                o.bypassed,
                o.llc_evictions_proxy,
                o.mem_fills,
                o.ns_local
            );
        }
    }
    rule(78);
    println!(
        "Streaming workloads shed LLC allocations (less slice churn) without\n\
         losing local NS hits; reuse-heavy workloads are unaffected."
    );
}
