//! Figure 7: speedup over Base-2L under infinite bandwidth, plus the §V-D
//! L1-miss latency comparison. Paper headlines: Base-3L ≈ +4%, D2M-FS ≈
//! +5.7%, D2M-NS ≈ +7%, D2M-NS-R ≈ +8.5% (max 28%, Database); D2M-NS-R
//! cuts average L1 miss latency by 30%.

use d2m_bench::{full_matrix, header, parse_args, rule};
use d2m_sim::SystemKind;
use d2m_workloads::catalog;

fn main() {
    let hc = parse_args();
    header("Figure 7 — speedup over Base-2L (infinite bandwidth)", &hc);
    let m = full_matrix(&hc);

    println!(
        "\n{:<16} {:>8} {:>8} {:>8} {:>8}   {:>9}",
        "workload", "Base-3L", "D2M-FS", "D2M-NS", "D2M-NS-R", "misslat-R"
    );
    rule(74);
    let mut cat = String::new();
    for spec in catalog::all().expect("catalog specs are valid") {
        if spec.category.name() != cat {
            cat = spec.category.name().to_string();
            println!("-- {cat} --");
        }
        let base = m.get(SystemKind::Base2L, &spec.name).expect("run");
        let sp = |k| (m.get(k, &spec.name).expect("run").speedup_vs(base) - 1.0) * 100.0;
        let lat_rel = m
            .get(SystemKind::D2mNsR, &spec.name)
            .expect("run")
            .avg_miss_latency
            / base.avg_miss_latency.max(1.0);
        println!(
            "{:<16} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%   {:>8.2}x",
            spec.name,
            sp(SystemKind::Base3L),
            sp(SystemKind::D2mFs),
            sp(SystemKind::D2mNs),
            sp(SystemKind::D2mNsR),
            lat_rel
        );
    }
    rule(74);

    println!("\n-- speedup vs Base-2L (gmean; paper in parentheses) --");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9}",
        "suite", "Base-3L", "D2M-FS", "D2M-NS", "D2M-NS-R"
    );
    for cat in ["Parallel", "HPC", "Mobile", "Server", "Database"] {
        let rel: Vec<f64> = [
            SystemKind::Base3L,
            SystemKind::D2mFs,
            SystemKind::D2mNs,
            SystemKind::D2mNsR,
        ]
        .iter()
        .map(|k| {
            (m.gmean_relative(*k, SystemKind::Base2L, Some(cat), |s, b| s.speedup_vs(b)) - 1.0)
                * 100.0
        })
        .collect();
        println!(
            "{:<10} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            cat, rel[0], rel[1], rel[2], rel[3]
        );
    }
    let overall =
        |k| (m.gmean_relative(k, SystemKind::Base2L, None, |s, b| s.speedup_vs(b)) - 1.0) * 100.0;
    println!(
        "\noverall: Base-3L {:+.1}% (paper +4), D2M-FS {:+.1}% (paper +5.7), D2M-NS {:+.1}% (paper +7), D2M-NS-R {:+.1}% (paper +8.5)",
        overall(SystemKind::Base3L),
        overall(SystemKind::D2mFs),
        overall(SystemKind::D2mNs),
        overall(SystemKind::D2mNsR)
    );
    let lat = m.gmean_relative(SystemKind::D2mNsR, SystemKind::Base2L, None, |s, b| {
        s.avg_miss_latency / b.avg_miss_latency.max(1.0)
    });
    println!(
        "average L1-miss latency, D2M-NS-R: {:.0}% below Base-2L (paper: 30%)",
        (1.0 - lat) * 100.0
    );
}
