//! Simulator throughput baseline: replays a fixed mixed workload on every
//! system and records `BENCH_throughput.json`, so each PR leaves a perf
//! trajectory behind (accesses/sec, heap allocations, the simulator-resident
//! metadata footprint, and a per-system counter checksum proving the replay
//! itself is deterministic).
//!
//! The binary installs a counting global allocator. Two allocation views are
//! recorded per system: `allocs`/`alloc_bytes` cover the system's whole
//! lifetime (build + warmup + measure) — this is where the packed-metadata
//! layout shows up as fewer resident bytes — while `steady_allocs`/
//! `steady_alloc_bytes` cover only the measured window, the hot-path
//! allocation budget that must stay flat with the access count.
//!
//! `--smoke` shrinks the replay for CI and writes
//! `BENCH_throughput.smoke.json` instead, so the committed smoke snapshot
//! and the full snapshot never overwrite each other.
//!
//! `throughput compare <before.json> <after.json>` diffs two snapshots:
//! throughput and allocation deltas are informational (they move with the
//! machine), but any per-system `counter_checksum` or `accesses` mismatch —
//! simulation behavior changing — fails with a nonzero exit.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use d2m_common::json::Json;
use d2m_common::ToJson;
use d2m_sim::{AnySystem, SystemKind};
use d2m_workloads::{catalog, TraceGen};

/// System allocator wrapper counting every allocation on every thread.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One workload per suite: a fixed mix exercising private, shared, scan and
/// multiprogrammed behavior on every hierarchy.
const MIX: [&str; 5] = ["swaptions", "ocean_cp", "google", "mix2", "tpc-c"];

const SEED: u64 = 42;
const OUT_FULL: &str = "BENCH_throughput.json";
const OUT_SMOKE: &str = "BENCH_throughput.smoke.json";

/// FNV-1a over the deterministic counter JSON: a compact fingerprint that
/// changes iff any simulation counter changes.
fn checksum(json: &Json) -> String {
    let text = json.to_string_compact();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

struct SystemRun {
    system: &'static str,
    accesses: u64,
    allocs: u64,
    alloc_bytes: u64,
    steady_allocs: u64,
    steady_alloc_bytes: u64,
    md_bytes: [u64; 3],
    counter_checksum: String,
    wall_secs: f64,
}

/// Replays the whole mix on one system; the measured window starts after a
/// short warmup so steady-state hot-path allocation is what gets counted,
/// while the lifetime counters also include build + warmup (resident
/// structures, dominated by the metadata arrays).
fn run_system(kind: SystemKind, warmup_batches: u64, batches: u64) -> SystemRun {
    let cfg = d2m_bench::machine();
    let life_allocs0 = ALLOCS.load(Ordering::Relaxed);
    let life_bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let mut sys = AnySystem::build(kind, &cfg, SEED);
    let mut batch = Vec::new();
    let mut accesses = 0u64;
    let mut gens: Vec<TraceGen> = MIX
        .iter()
        .map(|name| {
            let spec = catalog::by_name(name).expect("mix workload exists");
            TraceGen::new(&spec, cfg.nodes, SEED)
        })
        .collect();

    let mut replay = |sys: &mut AnySystem, gens: &mut [TraceGen], n: u64, count: &mut u64| {
        for i in 0..n {
            for g in gens.iter_mut() {
                batch.clear();
                g.next_batch(&mut batch);
                let now = i * 40;
                for a in &batch {
                    sys.access(a, now).expect("protocol error during replay");
                }
                *count += batch.len() as u64;
            }
        }
    };

    let mut sink = 0u64;
    replay(&mut sys, &mut gens, warmup_batches, &mut sink);

    let allocs0 = ALLOCS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let t0 = Instant::now();
    replay(&mut sys, &mut gens, batches, &mut accesses);
    let wall_secs = t0.elapsed().as_secs_f64();
    let steady_allocs = ALLOCS.load(Ordering::Relaxed) - allocs0;
    let steady_alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes0;
    let allocs = ALLOCS.load(Ordering::Relaxed) - life_allocs0;
    let alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - life_bytes0;
    let fp = sys.metadata_footprint();

    SystemRun {
        system: kind.name(),
        accesses,
        allocs,
        alloc_bytes,
        steady_allocs,
        steady_alloc_bytes,
        md_bytes: [fp.md1_bytes, fp.md2_bytes, fp.md3_bytes],
        counter_checksum: checksum(&sys.counters().to_json()),
        wall_secs,
    }
}

fn run_bench(smoke: bool) {
    let (warmup_batches, batches) = if smoke { (50, 200) } else { (2_000, 30_000) };
    let out = if smoke { OUT_SMOKE } else { OUT_FULL };
    println!(
        "== throughput — {} batches/workload ({} warmup) × {} workloads × {} systems{} ==",
        batches,
        warmup_batches,
        MIX.len(),
        SystemKind::ALL.len(),
        if smoke { "  [--smoke]" } else { "" }
    );

    let runs: Vec<SystemRun> = SystemKind::ALL
        .iter()
        .map(|k| {
            let r = run_system(*k, warmup_batches, batches);
            println!(
                "{:<10} {:>10} accesses  {:>12.0} acc/s  {:>9} allocs  checksum {}",
                r.system,
                r.accesses,
                r.accesses as f64 / r.wall_secs.max(1e-9),
                r.allocs,
                r.counter_checksum
            );
            r
        })
        .collect();

    let total_accesses: u64 = runs.iter().map(|r| r.accesses).sum();
    let total_allocs: u64 = runs.iter().map(|r| r.allocs).sum();
    let total_wall: f64 = runs.iter().map(|r| r.wall_secs).sum();

    let systems = runs
        .iter()
        .map(|r| {
            let [md1, md2, md3] = r.md_bytes;
            Json::Obj(vec![
                ("system".to_string(), Json::Str(r.system.to_string())),
                ("accesses".to_string(), Json::U64(r.accesses)),
                ("allocs".to_string(), Json::U64(r.allocs)),
                ("alloc_bytes".to_string(), Json::U64(r.alloc_bytes)),
                ("steady_allocs".to_string(), Json::U64(r.steady_allocs)),
                (
                    "steady_alloc_bytes".to_string(),
                    Json::U64(r.steady_alloc_bytes),
                ),
                (
                    "metadata_footprint".to_string(),
                    Json::Obj(vec![
                        ("md1_bytes".to_string(), Json::U64(md1)),
                        ("md2_bytes".to_string(), Json::U64(md2)),
                        ("md3_bytes".to_string(), Json::U64(md3)),
                        ("total_bytes".to_string(), Json::U64(md1 + md2 + md3)),
                    ]),
                ),
                (
                    "counter_checksum".to_string(),
                    Json::Str(r.counter_checksum.clone()),
                ),
                ("wall_secs".to_string(), Json::F64(r.wall_secs)),
                (
                    "accesses_per_sec".to_string(),
                    Json::F64(r.accesses as f64 / r.wall_secs.max(1e-9)),
                ),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("name".to_string(), Json::Str("throughput".to_string())),
        (
            "mode".to_string(),
            Json::Str(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("seed".to_string(), Json::U64(SEED)),
        ("warmup_batches".to_string(), Json::U64(warmup_batches)),
        ("batches_per_workload".to_string(), Json::U64(batches)),
        (
            "workloads".to_string(),
            Json::Arr(MIX.iter().map(|w| Json::Str(w.to_string())).collect()),
        ),
        ("systems".to_string(), Json::Arr(systems)),
        (
            "total".to_string(),
            Json::Obj(vec![
                ("accesses".to_string(), Json::U64(total_accesses)),
                ("allocs".to_string(), Json::U64(total_allocs)),
                ("wall_secs".to_string(), Json::F64(total_wall)),
                (
                    "accesses_per_sec".to_string(),
                    Json::F64(total_accesses as f64 / total_wall.max(1e-9)),
                ),
            ]),
        ),
    ]);

    let text = doc.to_string_pretty();
    std::fs::write(out, &text).unwrap_or_else(|e| panic!("write {out}: {e}"));

    // Self-validate: the emitted file must parse and carry the schema keys
    // CI (and cross-PR comparisons) rely on.
    let back = Json::parse(&text).expect("emitted JSON reparses");
    for key in [
        "name",
        "mode",
        "seed",
        "warmup_batches",
        "batches_per_workload",
        "workloads",
        "systems",
        "total",
    ] {
        assert!(back.get(key).is_some(), "missing key {key:?} in {out}");
    }
    let systems = back.get("systems").and_then(Json::as_array).expect("array");
    assert_eq!(systems.len(), SystemKind::ALL.len());
    for s in systems {
        for key in [
            "system",
            "accesses",
            "allocs",
            "alloc_bytes",
            "steady_allocs",
            "steady_alloc_bytes",
            "metadata_footprint",
            "counter_checksum",
            "wall_secs",
            "accesses_per_sec",
        ] {
            assert!(s.get(key).is_some(), "missing per-system key {key:?}");
        }
    }

    println!(
        "\ntotal: {} accesses in {:.2}s  ({:.0} accesses/sec, {} allocs)  -> {out}",
        total_accesses,
        total_wall,
        total_accesses as f64 / total_wall.max(1e-9),
        total_allocs
    );
}

/// Loads a snapshot and flattens its per-system records to
/// `(name, accesses, checksum, acc/s, alloc_bytes)` rows.
fn load_snapshot(path: &str) -> Result<(Json, Vec<SnapshotRow>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let systems = doc
        .get("systems")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: missing \"systems\" array"))?;
    let mut rows = Vec::new();
    for s in systems {
        let field = |key: &str| {
            s.get(key)
                .ok_or_else(|| format!("{path}: system record missing {key:?}"))
        };
        rows.push(SnapshotRow {
            system: field("system")?.as_str().unwrap_or_default().to_string(),
            accesses: field("accesses")?.as_u64().unwrap_or_default(),
            checksum: field("counter_checksum")?
                .as_str()
                .unwrap_or_default()
                .to_string(),
            acc_per_sec: field("accesses_per_sec")?.as_f64().unwrap_or_default(),
            alloc_bytes: field("alloc_bytes")?.as_u64().unwrap_or_default(),
        });
    }
    Ok((doc, rows))
}

struct SnapshotRow {
    system: String,
    accesses: u64,
    checksum: String,
    acc_per_sec: f64,
    alloc_bytes: u64,
}

/// `throughput compare <before.json> <after.json>`: throughput/allocation
/// deltas are informational; checksum or access-count drift is an error.
fn run_compare(before_path: &str, after_path: &str) -> ExitCode {
    let (before_doc, before) = match load_snapshot(before_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("compare: {e}");
            return ExitCode::from(2);
        }
    };
    let (after_doc, after) = match load_snapshot(after_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("compare: {e}");
            return ExitCode::from(2);
        }
    };

    let mode = |d: &Json| {
        d.get("mode")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let (mode_b, mode_a) = (mode(&before_doc), mode(&after_doc));
    println!("== compare {before_path} ({mode_b}) -> {after_path} ({mode_a}) ==");
    if mode_b != mode_a {
        println!("warning: comparing different modes ({mode_b} vs {mode_a})");
    }

    let mut mismatches = 0usize;
    println!(
        "{:<10} {:>14} {:>14} {:>8}   {:>13} {:>8}   checksum",
        "system", "acc/s before", "acc/s after", "Δ", "alloc_bytes", "Δ"
    );
    for b in &before {
        let Some(a) = after.iter().find(|a| a.system == b.system) else {
            println!("{:<10} missing from {after_path}", b.system);
            mismatches += 1;
            continue;
        };
        let dv = (a.acc_per_sec / b.acc_per_sec.max(1e-9) - 1.0) * 100.0;
        let db = a.alloc_bytes as i128 - b.alloc_bytes as i128;
        let ck = if a.checksum == b.checksum && a.accesses == b.accesses {
            "identical"
        } else {
            mismatches += 1;
            "MISMATCH"
        };
        println!(
            "{:<10} {:>14.0} {:>14.0} {:>+7.1}%   {:>13} {:>+8}   {}",
            b.system, b.acc_per_sec, a.acc_per_sec, dv, a.alloc_bytes, db, ck
        );
    }
    for a in &after {
        if !before.iter().any(|b| b.system == a.system) {
            println!("{:<10} missing from {before_path}", a.system);
            mismatches += 1;
        }
    }

    if mismatches > 0 {
        println!(
            "\n{mismatches} system(s) diverged: counters or access streams changed, \
             not just machine speed"
        );
        ExitCode::FAILURE
    } else {
        println!("\nall {} system checksums identical", before.len());
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        let [_, before, after] = args.as_slice() else {
            eprintln!("usage: throughput compare <before.json> <after.json>");
            return ExitCode::from(2);
        };
        return run_compare(before, after);
    }
    run_bench(args.iter().any(|a| a == "--smoke"));
    ExitCode::SUCCESS
}
