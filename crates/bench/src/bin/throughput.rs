//! Simulator throughput baseline: replays a fixed mixed workload on every
//! system and records `BENCH_throughput.json`, so each PR leaves a perf
//! trajectory behind (accesses/sec, heap allocations on the hot path, and a
//! per-system counter checksum proving the replay itself is deterministic).
//!
//! The binary installs a counting global allocator; the measured window's
//! allocation count is the hot-path allocation budget — after the arena
//! refactor it must stay flat with the access count, not grow with it.
//!
//! `--smoke` shrinks the replay for CI; the schema is identical.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use d2m_common::json::Json;
use d2m_common::ToJson;
use d2m_sim::{AnySystem, SystemKind};
use d2m_workloads::{catalog, TraceGen};

/// System allocator wrapper counting every allocation on every thread.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One workload per suite: a fixed mix exercising private, shared, scan and
/// multiprogrammed behavior on every hierarchy.
const MIX: [&str; 5] = ["swaptions", "ocean_cp", "google", "mix2", "tpc-c"];

const SEED: u64 = 42;
const OUT: &str = "BENCH_throughput.json";

/// FNV-1a over the deterministic counter JSON: a compact fingerprint that
/// changes iff any simulation counter changes.
fn checksum(json: &Json) -> String {
    let text = json.to_string_compact();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

struct SystemRun {
    system: &'static str,
    accesses: u64,
    allocs: u64,
    alloc_bytes: u64,
    counter_checksum: String,
    wall_secs: f64,
}

/// Replays the whole mix on one system; the measured window starts after a
/// short warmup so steady-state hot-path allocation is what gets counted.
fn run_system(kind: SystemKind, warmup_batches: u64, batches: u64) -> SystemRun {
    let cfg = d2m_bench::machine();
    let mut sys = AnySystem::build(kind, &cfg, SEED);
    let mut batch = Vec::new();
    let mut accesses = 0u64;
    let mut gens: Vec<TraceGen> = MIX
        .iter()
        .map(|name| {
            let spec = catalog::by_name(name).expect("mix workload exists");
            TraceGen::new(&spec, cfg.nodes, SEED)
        })
        .collect();

    let mut replay = |sys: &mut AnySystem, gens: &mut [TraceGen], n: u64, count: &mut u64| {
        for i in 0..n {
            for g in gens.iter_mut() {
                batch.clear();
                g.next_batch(&mut batch);
                let now = i * 40;
                for a in &batch {
                    sys.access(a, now).expect("protocol error during replay");
                }
                *count += batch.len() as u64;
            }
        }
    };

    let mut sink = 0u64;
    replay(&mut sys, &mut gens, warmup_batches, &mut sink);

    let allocs0 = ALLOCS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let t0 = Instant::now();
    replay(&mut sys, &mut gens, batches, &mut accesses);
    let wall_secs = t0.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs0;
    let alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes0;

    SystemRun {
        system: kind.name(),
        accesses,
        allocs,
        alloc_bytes,
        counter_checksum: checksum(&sys.counters().to_json()),
        wall_secs,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (warmup_batches, batches) = if smoke { (50, 200) } else { (2_000, 30_000) };
    println!(
        "== throughput — {} batches/workload ({} warmup) × {} workloads × {} systems{} ==",
        batches,
        warmup_batches,
        MIX.len(),
        SystemKind::ALL.len(),
        if smoke { "  [--smoke]" } else { "" }
    );

    let runs: Vec<SystemRun> = SystemKind::ALL
        .iter()
        .map(|k| {
            let r = run_system(*k, warmup_batches, batches);
            println!(
                "{:<10} {:>10} accesses  {:>12.0} acc/s  {:>9} allocs  checksum {}",
                r.system,
                r.accesses,
                r.accesses as f64 / r.wall_secs.max(1e-9),
                r.allocs,
                r.counter_checksum
            );
            r
        })
        .collect();

    let total_accesses: u64 = runs.iter().map(|r| r.accesses).sum();
    let total_allocs: u64 = runs.iter().map(|r| r.allocs).sum();
    let total_wall: f64 = runs.iter().map(|r| r.wall_secs).sum();

    let systems = runs
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("system".to_string(), Json::Str(r.system.to_string())),
                ("accesses".to_string(), Json::U64(r.accesses)),
                ("allocs".to_string(), Json::U64(r.allocs)),
                ("alloc_bytes".to_string(), Json::U64(r.alloc_bytes)),
                (
                    "counter_checksum".to_string(),
                    Json::Str(r.counter_checksum.clone()),
                ),
                ("wall_secs".to_string(), Json::F64(r.wall_secs)),
                (
                    "accesses_per_sec".to_string(),
                    Json::F64(r.accesses as f64 / r.wall_secs.max(1e-9)),
                ),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("name".to_string(), Json::Str("throughput".to_string())),
        (
            "mode".to_string(),
            Json::Str(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("seed".to_string(), Json::U64(SEED)),
        ("warmup_batches".to_string(), Json::U64(warmup_batches)),
        ("batches_per_workload".to_string(), Json::U64(batches)),
        (
            "workloads".to_string(),
            Json::Arr(MIX.iter().map(|w| Json::Str(w.to_string())).collect()),
        ),
        ("systems".to_string(), Json::Arr(systems)),
        (
            "total".to_string(),
            Json::Obj(vec![
                ("accesses".to_string(), Json::U64(total_accesses)),
                ("allocs".to_string(), Json::U64(total_allocs)),
                ("wall_secs".to_string(), Json::F64(total_wall)),
                (
                    "accesses_per_sec".to_string(),
                    Json::F64(total_accesses as f64 / total_wall.max(1e-9)),
                ),
            ]),
        ),
    ]);

    let text = doc.to_string_pretty();
    std::fs::write(OUT, &text).expect("write BENCH_throughput.json");

    // Self-validate: the emitted file must parse and carry the schema keys
    // CI (and cross-PR comparisons) rely on.
    let back = Json::parse(&text).expect("emitted JSON reparses");
    for key in [
        "name",
        "mode",
        "seed",
        "warmup_batches",
        "batches_per_workload",
        "workloads",
        "systems",
        "total",
    ] {
        assert!(back.get(key).is_some(), "missing key {key:?} in {OUT}");
    }
    let systems = back.get("systems").and_then(Json::as_array).expect("array");
    assert_eq!(systems.len(), SystemKind::ALL.len());
    for s in systems {
        for key in [
            "system",
            "accesses",
            "allocs",
            "alloc_bytes",
            "counter_checksum",
            "wall_secs",
            "accesses_per_sec",
        ] {
            assert!(s.get(key).is_some(), "missing per-system key {key:?}");
        }
    }

    println!(
        "\ntotal: {} accesses in {:.2}s  ({:.0} accesses/sec, {} allocs)  -> {OUT}",
        total_accesses,
        total_wall,
        total_accesses as f64 / total_wall.max(1e-9),
        total_allocs
    );
}
