//! Footnote-5 ablation: scale the MD1/MD2/MD3 capacities 1×/2×/4× and
//! measure D2M-NS-R speedup over Base-2L plus the fraction of LLC-level
//! reads serviced by a direct local-slice access. Paper: speedup 8.5% (1×)
//! → 9.5% (2×); direct NS accesses 78% → 86%.

use d2m_bench::{cached_sweep, header, machine, parse_args, rule};
use d2m_sim::{ConfigPoint, MatrixResult, SweepSpec, SystemKind};
use d2m_workloads::catalog;

fn main() {
    let hc = parse_args();
    header("Footnote 5 — metadata capacity ablation (1x/2x/4x)", &hc);
    // A representative cross-suite sample keeps the sweep tractable.
    let names = [
        "blackscholes",
        "canneal",
        "barnes",
        "fft",
        "facebook",
        "google",
        "mix1",
        "mix2",
        "tpc-c",
    ];
    let specs: Vec<_> = names
        .iter()
        .map(|n| catalog::by_name(n).expect("workload"))
        .collect();

    // One multi-config sweep covers all three scales: the config axis is
    // part of the grid, so every cell runs in the same worker pool.
    let spec = SweepSpec {
        name: "mdscale".into(),
        configs: [1usize, 2, 4]
            .iter()
            .map(|&scale| ConfigPoint {
                label: format!("{scale}x"),
                config: machine().scale_metadata(scale),
            })
            .collect(),
        systems: vec![SystemKind::Base2L, SystemKind::D2mNsR],
        workloads: specs,
        instructions: hc.rc.instructions,
        warmup_instructions: hc.rc.warmup_instructions,
        master_seed: hc.rc.seed,
    };
    let res = cached_sweep(&spec);

    println!(
        "\n{:>6} {:>10} {:>12} {:>12} {:>12}",
        "scale", "speedup", "ns-local I", "ns-local D", "md2-miss/KI"
    );
    rule(58);
    for scale in [1usize, 2, 4] {
        let m = MatrixResult::from_runs(res.runs_for_config(&format!("{scale}x")));
        let sp = (m.gmean_relative(SystemKind::D2mNsR, SystemKind::Base2L, None, |s, b| {
            s.speedup_vs(b)
        }) - 1.0)
            * 100.0;
        let ns_i = m.mean_absolute(SystemKind::D2mNsR, None, |r| r.ns_hit_ratio_i);
        let ns_d = m.mean_absolute(SystemKind::D2mNsR, None, |r| r.ns_hit_ratio_d);
        let d_rate = m.mean_absolute(SystemKind::D2mNsR, None, |r| {
            r.counters.get("case.d") as f64 / (r.instructions as f64 / 1000.0)
        });
        println!(
            "{:>5}x {:>9.1}% {:>11.0}% {:>11.0}% {:>12.2}",
            scale,
            sp,
            ns_i * 100.0,
            ns_d * 100.0,
            d_rate
        );
    }
    rule(58);
    println!("paper: 1x → +8.5% speedup / 78% direct NS; 2x → +9.5% / 86%");
}
