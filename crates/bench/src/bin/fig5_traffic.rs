//! Figure 5: network traffic in messages per 1000 instructions, per
//! workload, for all five systems; D2M-specific traffic shown separately
//! (the paper's lighter bars). Prints per-suite and overall reductions
//! against the paper's headline (−70% for D2M-NS-R).

use d2m_bench::{full_matrix, header, parse_args, rule};
use d2m_sim::SystemKind;
use d2m_workloads::catalog;

fn main() {
    let hc = parse_args();
    header(
        "Figure 5 — network traffic (messages / 1000 instructions)",
        &hc,
    );
    let m = full_matrix(&hc);

    println!(
        "\n{:<16} {:>9} {:>9} {:>9} {:>9} {:>9}   {:>8}",
        "workload", "Base-2L", "Base-3L", "D2M-FS", "D2M-NS", "D2M-NS-R", "(d2m-msg)"
    );
    rule(86);
    let mut cat = String::new();
    for spec in catalog::all().expect("catalog specs are valid") {
        if spec.category.name() != cat {
            cat = spec.category.name().to_string();
            println!("-- {cat} --");
        }
        let row: Vec<f64> = SystemKind::ALL
            .iter()
            .map(|k| m.get(*k, &spec.name).expect("run").msgs_per_kilo_inst)
            .collect();
        let d2m_part = m
            .get(SystemKind::D2mNsR, &spec.name)
            .expect("run")
            .d2m_msgs_per_kilo_inst;
        println!(
            "{:<16} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}   {:>8.1}",
            spec.name, row[0], row[1], row[2], row[3], row[4], d2m_part
        );
    }
    rule(86);

    println!("\n-- relative traffic vs Base-2L (gmean; paper: D2M-NS-R ≈ 0.30 overall) --");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9}",
        "suite", "Base-3L", "D2M-FS", "D2M-NS", "D2M-NS-R"
    );
    for cat in ["Parallel", "HPC", "Mobile", "Server", "Database"] {
        let rel: Vec<f64> = [
            SystemKind::Base3L,
            SystemKind::D2mFs,
            SystemKind::D2mNs,
            SystemKind::D2mNsR,
        ]
        .iter()
        .map(|k| m.gmean_relative(*k, SystemKind::Base2L, Some(cat), |s, b| s.traffic_vs(b)))
        .collect();
        println!(
            "{:<10} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            cat, rel[0], rel[1], rel[2], rel[3]
        );
    }
    let overall = m.gmean_relative(SystemKind::D2mNsR, SystemKind::Base2L, None, |s, b| {
        s.traffic_vs(b)
    });
    println!(
        "\noverall D2M-NS-R traffic: {:.2}x Base-2L (measured {:.0}% reduction; paper: 70%)",
        overall,
        (1.0 - overall) * 100.0
    );
    let bytes = m.gmean_relative(SystemKind::D2mNsR, SystemKind::Base2L, None, |s, b| {
        s.data_bytes_per_kilo_inst / b.data_bytes_per_kilo_inst.max(1e-9)
    });
    println!(
        "overall D2M-NS-R data-byte traffic: {:.2}x Base-2L (paper: 65% reduction)",
        bytes
    );
}
