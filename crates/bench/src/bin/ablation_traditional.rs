//! §III-A ablation: D2M with a *traditional* front end (unmodified core,
//! TLB + tagged L1) versus the full tag-less design. The paper claims such
//! a system still "achieves most of the reported D2M advantages" — here we
//! quantify what survives (traffic, miss latency) and what is lost (the
//! per-access TLB/tag energy the MD1 eliminates).

use d2m_bench::{header, machine, parse_args, rule};
use d2m_core::{D2mFeatures, D2mSystem, D2mVariant};
use d2m_energy::EnergyEvent;
use d2m_sim::RunConfig;
use d2m_workloads::{catalog, TraceGen};

struct Outcome {
    msgs_per_ki: f64,
    frontend_pj_per_ki: f64,
    avg_miss_latency: f64,
}

fn run(spec_name: &str, traditional: bool, rc: &RunConfig) -> Outcome {
    let cfg = machine();
    let spec = catalog::by_name(spec_name).expect("workload");
    let feats = D2mFeatures {
        near_side: true,
        replication: true,
        dynamic_indexing: !traditional,
        bypass: false,
        private_l2: false,
        traditional_l1: traditional,
    };
    let mut sys = D2mSystem::with_features(&cfg, D2mVariant::NearSideRepl, feats, rc.seed);
    let mut gen = TraceGen::new(&spec, cfg.nodes, rc.seed);
    let mut batch = Vec::new();
    let mut insts = 0u64;
    let mut lat_sum = 0f64;
    let mut lat_n = 0u64;
    while insts < rc.warmup_instructions + rc.instructions {
        batch.clear();
        insts += gen.next_batch(&mut batch);
        for a in &batch {
            let r = sys.access(a, 0).unwrap();
            if !r.l1_hit {
                lat_sum += r.latency as f64;
                lat_n += 1;
            }
        }
    }
    let ki = insts as f64 / 1000.0;
    // The front-end energy the two designs differ in: TLB + L1 tags vs MD1.
    let frontend = sys.energy().event_pj_total(EnergyEvent::Tlb)
        + sys.energy().event_pj_total(EnergyEvent::L1TagWay)
        + sys.energy().event_pj_total(EnergyEvent::Md1);
    Outcome {
        msgs_per_ki: sys.noc().messages() as f64 / ki,
        frontend_pj_per_ki: frontend / ki,
        avg_miss_latency: lat_sum / lat_n.max(1) as f64,
    }
}

fn main() {
    let hc = parse_args();
    header(
        "§III-A ablation: traditional front end vs tag-less D2M",
        &hc,
    );
    println!(
        "\n{:<14} {:>12} {:>10} {:>14} {:>10}",
        "workload", "front end", "msgs/KI", "frontend pJ/KI", "miss-lat"
    );
    rule(66);
    for name in ["mix2", "facebook", "tpc-c"] {
        for traditional in [false, true] {
            let o = run(name, traditional, &hc.rc);
            println!(
                "{:<14} {:>12} {:>10.1} {:>14.0} {:>10.1}",
                name,
                if traditional {
                    "TLB+tags"
                } else {
                    "MD1 (tag-less)"
                },
                o.msgs_per_ki,
                o.frontend_pj_per_ki,
                o.avg_miss_latency
            );
        }
    }
    rule(66);
    println!(
        "Traffic and miss latency — the coherence-side advantages — survive the\n\
         traditional interface; the per-access front-end energy saving (MD1\n\
         replacing TLB + tag comparisons) is what the tag-less L1 adds."
    );
}
