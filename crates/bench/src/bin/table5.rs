//! Table V: received invalidations (including region-grain false
//! invalidations) normalized to Base-2L, and the percentage of private-cache
//! misses that hit regions classified private. Paper headline: 68% of
//! misses are to private regions on average; Server mixes are 100% private.

use d2m_bench::{full_matrix, header, parse_args, rule};
use d2m_sim::SystemKind;
use d2m_workloads::catalog;

fn main() {
    let hc = parse_args();
    header(
        "Table V — invalidations vs Base-2L, private-region misses",
        &hc,
    );
    let m = full_matrix(&hc);

    println!(
        "\n{:<16} {:>12} {:>12} {:>12}",
        "workload", "inv(B2L)/KI", "inv(NSR)rel%", "priv-miss%"
    );
    rule(58);
    let mut cat = String::new();
    let mut priv_all = Vec::new();
    for spec in catalog::all().expect("catalog specs are valid") {
        if spec.category.name() != cat {
            cat = spec.category.name().to_string();
            println!("-- {cat} --");
        }
        let base = m.get(SystemKind::Base2L, &spec.name).expect("run");
        let nsr = m.get(SystemKind::D2mNsR, &spec.name).expect("run");
        let ki = base.instructions as f64 / 1000.0;
        let rel = if base.invalidations == 0 {
            if nsr.invalidations == 0 {
                100.0
            } else {
                f64::INFINITY
            }
        } else {
            nsr.invalidations as f64 / base.invalidations as f64 * 100.0
        };
        priv_all.push(nsr.private_miss_frac);
        println!(
            "{:<16} {:>12.2} {:>12.0} {:>12.0}",
            spec.name,
            base.invalidations as f64 / ki,
            rel,
            nsr.private_miss_frac * 100.0
        );
    }
    rule(58);
    for cat in ["Parallel", "HPC", "Mobile", "Server", "Database"] {
        let p = m.mean_absolute(SystemKind::D2mNsR, Some(cat), |r| r.private_miss_frac);
        println!("{:<10} private-miss fraction: {:>5.0}%", cat, p * 100.0);
    }
    let avg = priv_all.iter().sum::<f64>() / priv_all.len() as f64;
    println!(
        "\naverage: {:.0}% of misses to private regions (paper: 68%; Server: 100%)",
        avg * 100.0
    );
    let server = m.mean_absolute(SystemKind::D2mNsR, Some("Server"), |r| r.private_miss_frac);
    assert!(
        server > 0.999,
        "Server mixes must be fully private, got {server}"
    );
}
