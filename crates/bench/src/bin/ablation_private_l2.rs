//! Generic-architecture ablation: D2M-FS with and without the optional
//! private L2 of Figure 2 (a unified per-node victim cache between the L1s
//! and the far-side LLC). The evaluated paper variants are L2-less
//! (Figure 4); this measures what the generic level buys.

use d2m_bench::{header, machine, parse_args, rule};
use d2m_core::{D2mFeatures, D2mSystem, D2mVariant};
use d2m_sim::RunConfig;
use d2m_workloads::{catalog, TraceGen};

struct Outcome {
    l2_hits: u64,
    llc_or_mem: u64,
    avg_miss_latency: f64,
}

fn run(spec_name: &str, private_l2: bool, rc: &RunConfig) -> Outcome {
    let cfg = machine();
    let spec = catalog::by_name(spec_name).expect("workload");
    let feats = D2mFeatures {
        near_side: false,
        replication: false,
        dynamic_indexing: false,
        bypass: false,
        private_l2,
        traditional_l1: false,
    };
    let mut sys = D2mSystem::with_features(&cfg, D2mVariant::FarSide, feats, rc.seed);
    let mut gen = TraceGen::new(&spec, cfg.nodes, rc.seed);
    let mut batch = Vec::new();
    let mut insts = 0;
    let mut l2_hits = 0u64;
    let mut other = 0u64;
    let mut measuring = false;
    let mut lat_sum = 0f64;
    let mut lat_n = 0u64;
    while insts < rc.warmup_instructions + rc.instructions {
        batch.clear();
        insts += gen.next_batch(&mut batch);
        if insts >= rc.warmup_instructions {
            measuring = true;
        }
        for a in &batch {
            let r = sys.access(a, 0).unwrap();
            if measuring && !r.l1_hit {
                lat_sum += r.latency as f64;
                lat_n += 1;
                if r.serviced_by == d2m_common::outcome::ServicedBy::L2 {
                    l2_hits += 1;
                } else {
                    other += 1;
                }
            }
        }
    }
    Outcome {
        l2_hits,
        llc_or_mem: other,
        avg_miss_latency: lat_sum / lat_n.max(1) as f64,
    }
}

fn main() {
    let hc = parse_args();
    header("Generic-architecture ablation: D2M-FS ± private L2", &hc);
    println!(
        "\n{:<14} {:>6} {:>12} {:>12} {:>10}",
        "workload", "L2", "L2 hits", "LLC/mem", "miss-lat"
    );
    rule(60);
    for name in ["mix2", "facebook", "tpc-c", "barnes"] {
        for l2 in [false, true] {
            let o = run(name, l2, &hc.rc);
            println!(
                "{:<14} {:>6} {:>12} {:>12} {:>10.1}",
                name,
                if l2 { "on" } else { "off" },
                o.l2_hits,
                o.llc_or_mem,
                o.avg_miss_latency
            );
        }
    }
    rule(60);
    println!("The L2 victim cache intercepts L1 evictions, trading SRAM for");
    println!("shorter miss paths — the Figure 2 generic level the evaluated");
    println!("variants replace with the near-side LLC slice.");
}
