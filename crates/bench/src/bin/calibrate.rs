//! Calibration scratchpad: one representative workload per suite, all five
//! systems, headline comparators vs the paper's targets. Not a paper
//! artifact itself — used to tune workload/energy/latency parameters, and
//! kept in-tree so the calibration is reproducible.

use d2m_bench::{header, machine, parse_args};
use d2m_sim::{run_matrix, SystemKind};
use d2m_workloads::catalog;

fn main() {
    let hc = parse_args();
    header("calibration sweep", &hc);
    let cfg = machine();
    let names = [
        "blackscholes",
        "canneal",
        "streamcluster",
        "barnes",
        "lu_cb",
        "facebook",
        "cnn",
        "mix1",
        "mix2",
        "tpc-c",
    ];
    let specs: Vec<_> = names
        .iter()
        .map(|n| catalog::by_name(n).expect("known workload"))
        .collect();
    let m = run_matrix(&cfg, &SystemKind::ALL, &specs, &hc.rc);

    println!(
        "\n{:<14} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>7} {:>7} {:>6} {:>6}",
        "workload",
        "system",
        "msgs/KI",
        "EDPrel",
        "speedup",
        "L1I%",
        "L1D%",
        "misslat",
        "NS-I",
        "NS-D",
        "priv",
        "mem%"
    );
    for spec in &specs {
        let base = m.get(SystemKind::Base2L, &spec.name).unwrap();
        for kind in SystemKind::ALL {
            let r = m.get(kind, &spec.name).unwrap();
            println!(
                "{:<14} {:>9} {:>7.1} {:>7.2} {:>7.3} {:>7.2} {:>7.2} {:>8.1} {:>7.2} {:>7.2} {:>6.2} {:>6.2}",
                spec.name,
                r.system,
                r.msgs_per_kilo_inst,
                r.edp_vs(base),
                r.speedup_vs(base),
                r.l1i_miss_pct,
                r.l1d_miss_pct,
                r.avg_miss_latency,
                r.ns_hit_ratio_i,
                r.ns_hit_ratio_d,
                r.private_miss_frac,
                r.mem_service_frac,
            );
        }
        println!();
    }

    println!("--- aggregates (gmean over the sampled workloads) ---");
    for kind in [
        SystemKind::Base3L,
        SystemKind::D2mFs,
        SystemKind::D2mNs,
        SystemKind::D2mNsR,
    ] {
        let sp = m.gmean_relative(kind, SystemKind::Base2L, None, |s, b| s.speedup_vs(b));
        let edp = m.gmean_relative(kind, SystemKind::Base2L, None, |s, b| s.edp_vs(b));
        let tr = m.gmean_relative(kind, SystemKind::Base2L, None, |s, b| s.traffic_vs(b));
        let lat = m.gmean_relative(kind, SystemKind::Base2L, None, |s, b| {
            s.avg_miss_latency / b.avg_miss_latency.max(1.0)
        });
        println!(
            "{:>9}: speedup {:5.3} (paper B3L 1.04 FS 1.057 NS 1.07 NSR 1.085)  edp {:5.2} (NSR 0.46)  traffic {:5.2} (NSR 0.30)  misslat {:5.2} (NSR 0.70)",
            kind.name(), sp, edp, tr, lat
        );
    }
    let priv_frac = m.mean_absolute(SystemKind::D2mFs, None, |r| r.private_miss_frac);
    println!("private-miss fraction (D2M-FS mean): {priv_frac:.2} (paper 0.68)");
}
