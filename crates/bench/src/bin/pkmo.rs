//! Appendix protocol-event mix: events per kilo memory operation (PKMO)
//! for the basic D2M-FS architecture, averaged across all suites — the
//! paper's case-by-case cost accounting (A 12.5, B 1.7, C 0.72, D 0.82
//! with D1 0.32 / D2 0.02 / D3 0.14 / D4 0.34), and the "~90% of misses are
//! directory-free" headline.

use d2m_bench::{header, machine, parse_args, rule};
use d2m_sim::{run_one, SystemKind};
use d2m_workloads::catalog;

fn main() {
    let hc = parse_args();
    header(
        "Appendix — protocol events per kilo memory operation (D2M-FS)",
        &hc,
    );
    let cfg = machine();

    let keys = [
        ("case.a", "A: read miss, MD hit", 12.5),
        ("case.a_llc", "   A → master in LLC", 8.9),
        ("case.a_mem", "   A → master in MEM", 2.7),
        ("case.a_remote", "   A → master remote node", 0.8),
        ("case.b", "B: write miss, private", 1.7),
        ("case.c", "C: write, shared", 0.72),
        ("case.d", "D: MD2 miss (ReadMM)", 0.82),
        ("case.d1", "   D1 untracked→private", 0.32),
        ("case.d2", "   D2 private→shared", 0.02),
        ("case.d3", "   D3 shared→shared", 0.14),
        ("case.d4", "   D4 uncached→private", 0.34),
        ("case.e", "E: evict master, private", f64::NAN),
        ("case.f", "F: evict master, shared", f64::NAN),
    ];
    let mut sums = vec![0f64; keys.len()];
    let mut memops = 0f64;
    let mut free_n = 0f64;
    let mut free_d = 0f64;
    for spec in catalog::all().expect("catalog specs are valid") {
        let m = run_one(SystemKind::D2mFs, &cfg, &spec, &hc.rc);
        let ops = (m.counters.get("loads") + m.counters.get("stores")) as f64;
        memops += ops;
        for (i, (k, _, _)) in keys.iter().enumerate() {
            sums[i] += m.counters.get(k) as f64;
        }
        let a = m.counters.get("case.a") as f64;
        let b = m.counters.get("case.b") as f64;
        let c = m.counters.get("case.c") as f64;
        let d = m.counters.get("case.d") as f64;
        free_n += a + b;
        free_d += a + b + c + d;
    }

    println!("\n{:<30} {:>10} {:>10}", "event", "measured", "paper");
    rule(54);
    for (i, (_, label, paper)) in keys.iter().enumerate() {
        let v = sums[i] / memops * 1000.0;
        if paper.is_nan() {
            println!("{label:<30} {v:>10.2} {:>10}", "-");
        } else {
            println!("{label:<30} {v:>10.2} {paper:>10.2}");
        }
    }
    rule(54);
    println!(
        "directory-free misses (A+B)/(A+B+C+D): {:.0}%  (paper: ~90%)",
        free_n / free_d * 100.0
    );
}
