//! Per-structure energy breakdown (the composition behind Figure 6's
//! stacked bars): where each system spends its dynamic energy on one
//! workload. The paper's claim: "most energy is spent searching levels and
//! moving data over the interconnect and between cache levels", which D2M
//! eliminates.

use d2m_bench::{header, machine, parse_args, rule};
use d2m_energy::EnergyEvent;
use d2m_sim::{AnySystem, SystemKind};
use d2m_workloads::{catalog, TraceGen};

fn main() {
    let hc = parse_args();
    header(
        "Energy breakdown by structure (dynamic pJ per kilo-instruction)",
        &hc,
    );
    let cfg = machine();
    let name = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "facebook".to_string());
    let spec = catalog::by_name(&name).expect("workload");
    println!("workload: {name}\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "structure", "Base-2L", "Base-3L", "D2M-FS", "D2M-NS", "D2M-NS-R"
    );
    rule(68);
    let mut columns = Vec::new();
    for kind in SystemKind::ALL {
        let mut sys = AnySystem::build(kind, &cfg, hc.rc.seed);
        let mut gen = TraceGen::new(&spec, cfg.nodes, hc.rc.seed);
        let mut batch = Vec::new();
        let mut insts = 0;
        while insts < hc.rc.instructions {
            batch.clear();
            insts += gen.next_batch(&mut batch);
            for a in &batch {
                sys.access(a, 0).unwrap();
            }
        }
        let ki = insts as f64 / 1000.0;
        let per_event: Vec<f64> = EnergyEvent::ALL
            .iter()
            .map(|e| sys.energy().event_pj_total(*e) / ki)
            .collect();
        columns.push(per_event);
    }
    for (i, e) in EnergyEvent::ALL.iter().enumerate() {
        if columns.iter().all(|c| c[i] < 0.005) {
            continue;
        }
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            e.name(),
            columns[0][i],
            columns[1][i],
            columns[2][i],
            columns[3][i],
            columns[4][i]
        );
    }
    rule(68);
    let totals: Vec<f64> = columns.iter().map(|c| c.iter().sum()).collect();
    println!(
        "{:<12} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
        "total", totals[0], totals[1], totals[2], totals[3], totals[4]
    );
    println!(
        "\n(Structure accesses only; NoC/memory message energy is charged by the\n\
         runner from the interconnect counters and leakage over cycles.)"
    );
}
