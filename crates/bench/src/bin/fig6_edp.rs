//! Figure 6: cache-hierarchy EDP (static + dynamic) normalized to Base-2L,
//! with the D2M-only (location tracker) energy share reported separately
//! (the paper's lighter bars). Paper headline: D2M-NS-R reduces EDP by 54%
//! vs Base-2L and 40% vs Base-3L.

use d2m_bench::{full_matrix, header, parse_args, rule};
use d2m_sim::SystemKind;
use d2m_workloads::catalog;

fn main() {
    let hc = parse_args();
    header("Figure 6 — cache-hierarchy EDP normalized to Base-2L", &hc);
    let m = full_matrix(&hc);

    println!(
        "\n{:<16} {:>8} {:>8} {:>8} {:>8} {:>8}   {:>9}",
        "workload", "Base-2L", "Base-3L", "D2M-FS", "D2M-NS", "D2M-NS-R", "(md-en %)"
    );
    rule(84);
    let mut cat = String::new();
    for spec in catalog::all().expect("catalog specs are valid") {
        if spec.category.name() != cat {
            cat = spec.category.name().to_string();
            println!("-- {cat} --");
        }
        let base = m.get(SystemKind::Base2L, &spec.name).expect("run");
        let row: Vec<f64> = SystemKind::ALL
            .iter()
            .map(|k| m.get(*k, &spec.name).expect("run").edp_vs(base))
            .collect();
        let md_en = m
            .get(SystemKind::D2mNsR, &spec.name)
            .expect("run")
            .d2m_energy_frac;
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}   {:>9.1}",
            spec.name,
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            md_en * 100.0
        );
    }
    rule(84);

    println!("\n-- EDP vs Base-2L (gmean) --");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9}",
        "suite", "Base-3L", "D2M-FS", "D2M-NS", "D2M-NS-R"
    );
    for cat in ["Parallel", "HPC", "Mobile", "Server", "Database"] {
        let rel: Vec<f64> = [
            SystemKind::Base3L,
            SystemKind::D2mFs,
            SystemKind::D2mNs,
            SystemKind::D2mNsR,
        ]
        .iter()
        .map(|k| m.gmean_relative(*k, SystemKind::Base2L, Some(cat), |s, b| s.edp_vs(b)))
        .collect();
        println!(
            "{:<10} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            cat, rel[0], rel[1], rel[2], rel[3]
        );
    }
    let vs2l = m.gmean_relative(SystemKind::D2mNsR, SystemKind::Base2L, None, |s, b| {
        s.edp_vs(b)
    });
    let vs3l = m.gmean_relative(SystemKind::D2mNsR, SystemKind::Base3L, None, |s, b| {
        s.edp_vs(b)
    });
    println!(
        "\nD2M-NS-R EDP: {:.0}% below Base-2L (paper: 54%), {:.0}% below Base-3L (paper: 40%)",
        (1.0 - vs2l) * 100.0,
        (1.0 - vs3l) * 100.0
    );
    // The cnn outlier check (paper §V-C): NS placement hurts cnn, replication recovers.
    let cnn2l = m.get(SystemKind::Base2L, "cnn").expect("run");
    let cnn_ns = m.get(SystemKind::D2mNs, "cnn").expect("run").edp_vs(cnn2l);
    let cnn_nsr = m.get(SystemKind::D2mNsR, "cnn").expect("run").edp_vs(cnn2l);
    println!("cnn outlier: D2M-NS {cnn_ns:.2} vs D2M-NS-R {cnn_nsr:.2} (replication should help)");
}
