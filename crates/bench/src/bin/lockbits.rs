//! Appendix lock-bit study: collision rates of the MD3 blocking mechanism
//! for different lock-array sizes. Paper: 1 K lock bits give a negligible
//! collision rate.

use d2m_bench::{header, machine, parse_args, rule};
use d2m_core::{D2mSystem, D2mVariant};
use d2m_workloads::{catalog, TraceGen};

fn main() {
    let hc = parse_args();
    header("Appendix — MD3 lock-bit collision rates", &hc);
    println!(
        "\n{:<12} {:>10} {:>14} {:>14} {:>12}",
        "lock bits", "workload", "transactions", "collisions", "rate"
    );
    rule(68);
    for bits in [64usize, 256, 1024, 4096] {
        for name in ["barnes", "tpc-c"] {
            let mut cfg = machine();
            cfg.md3_lock_bits = bits;
            let spec = catalog::by_name(name).expect("workload");
            let mut sys = D2mSystem::new(&cfg, D2mVariant::FarSide);
            let mut gen = TraceGen::new(&spec, cfg.nodes, hc.rc.seed);
            let mut batch = Vec::new();
            let mut insts = 0;
            while insts < hc.rc.instructions {
                batch.clear();
                insts += gen.next_batch(&mut batch);
                for a in &batch {
                    sys.access(a, 0).unwrap();
                }
            }
            let lb = sys.lockbits();
            println!(
                "{:<12} {:>10} {:>14} {:>14} {:>11.3}%",
                bits,
                name,
                lb.acquisitions(),
                lb.collisions(),
                lb.collision_rate() * 100.0
            );
        }
    }
    rule(68);
    println!("paper: 1 K lock bits ⇒ negligible collision rate");
}
