//! Table IV: per-suite L1 miss ratios and late hits, and the near-side
//! (local-slice) hit ratios for the D2M variants (L2 hit ratio for
//! Base-3L). Paper reference rows are printed alongside.

use d2m_bench::{full_matrix, header, parse_args, pct, rule};
use d2m_sim::SystemKind;

/// Paper Table IV reference values:
/// (suite, L1I miss, L1D miss, late I, late D, B3L hit, NS-I, NS-D, NSR-I, NSR-D)
/// Miss/late columns are percentages of that cache's accesses.
#[allow(clippy::type_complexity)]
const PAPER: [(&str, f64, f64, f64, f64, f64, f64, f64, f64, f64); 6] = [
    (
        "Parallel",
        0.2,
        1.9,
        0.1,
        2.9,
        f64::NAN,
        0.28,
        0.51,
        0.82,
        0.71,
    ),
    ("HPC", 0.0, 2.2, 0.0, 4.6, f64::NAN, 0.17, 0.54, 0.44, 0.79),
    (
        "Server",
        0.4,
        3.6,
        0.3,
        9.5,
        f64::NAN,
        0.82,
        0.83,
        0.95,
        0.83,
    ),
    (
        "Mobile",
        2.2,
        1.3,
        1.8,
        3.0,
        f64::NAN,
        0.56,
        0.66,
        0.96,
        0.73,
    ),
    ("Database", 8.8, 3.3, 6.2, 4.2, 0.59, 0.26, 0.34, 0.97, 0.72),
    (
        "Average",
        2.3,
        2.5,
        1.7,
        4.8,
        f64::NAN,
        0.42,
        0.57,
        0.83,
        0.76,
    ),
];

fn main() {
    let hc = parse_args();
    header(
        "Table IV — L1 miss ratios, late hits, near-side hit ratios",
        &hc,
    );
    let m = full_matrix(&hc);

    println!(
        "\n{:<10} | {:>6} {:>6} {:>6} {:>6} | {:>6} | {:>6} {:>6} | {:>6} {:>6}",
        "suite", "L1I%", "L1D%", "lateI", "lateD", "B3L", "NS-I", "NS-D", "NSR-I", "NSR-D"
    );
    rule(88);
    let mut avgs = vec![Vec::new(); 9];
    for cat in ["Parallel", "HPC", "Mobile", "Server", "Database"] {
        // Miss ratios are workload properties; report them from Base-2L,
        // converting misses/100-instructions into per-access percentages.
        let i_miss = m.mean_absolute(SystemKind::Base2L, Some(cat), |r| {
            let fetches_per_100 = 100.0 / 6.0; // fetch events per 100 insts
            r.l1i_miss_pct / fetches_per_100 * 100.0
        });
        let d_miss = m.mean_absolute(SystemKind::Base2L, Some(cat), |r| {
            let data_per_100 = 35.0; // ~ mem-op fraction × 100
            r.l1d_miss_pct / data_per_100 * 100.0
        });
        let late_i = m.mean_absolute(SystemKind::Base2L, Some(cat), |r| {
            r.late_i_pct / (100.0 / 6.0) * 100.0
        });
        let late_d = m.mean_absolute(SystemKind::Base2L, Some(cat), |r| {
            r.late_d_pct / 35.0 * 100.0
        });
        let b3l = m.mean_absolute(SystemKind::Base3L, Some(cat), |r| {
            (r.ns_hit_ratio_i + r.ns_hit_ratio_d) / 2.0
        });
        let ns_i = m.mean_absolute(SystemKind::D2mNs, Some(cat), |r| r.ns_hit_ratio_i);
        let ns_d = m.mean_absolute(SystemKind::D2mNs, Some(cat), |r| r.ns_hit_ratio_d);
        let nsr_i = m.mean_absolute(SystemKind::D2mNsR, Some(cat), |r| r.ns_hit_ratio_i);
        let nsr_d = m.mean_absolute(SystemKind::D2mNsR, Some(cat), |r| r.ns_hit_ratio_d);
        let vals = [
            i_miss, d_miss, late_i, late_d, b3l, ns_i, ns_d, nsr_i, nsr_d,
        ];
        for (store, v) in avgs.iter_mut().zip(vals) {
            store.push(v);
        }
        println!(
            "{:<10} | {:>6.1} {:>6.1} {:>6.1} {:>6.1} | {:>6} | {:>6} {:>6} | {:>6} {:>6}",
            cat,
            i_miss,
            d_miss,
            late_i,
            late_d,
            pct(b3l),
            pct(ns_i),
            pct(ns_d),
            pct(nsr_i),
            pct(nsr_d)
        );
        let p = PAPER.iter().find(|p| p.0 == cat).expect("suite");
        println!(
            "{:<10} | {:>6.1} {:>6.1} {:>6.1} {:>6.1} | {:>6} | {:>6} {:>6} | {:>6} {:>6}",
            "  (paper)",
            p.1,
            p.2,
            p.3,
            p.4,
            if p.5.is_nan() {
                "  -".to_string()
            } else {
                pct(p.5)
            },
            pct(p.6),
            pct(p.7),
            pct(p.8),
            pct(p.9)
        );
    }
    rule(88);
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "{:<10} | {:>6.1} {:>6.1} {:>6.1} {:>6.1} | {:>6} | {:>6} {:>6} | {:>6} {:>6}",
        "Average",
        mean(&avgs[0]),
        mean(&avgs[1]),
        mean(&avgs[2]),
        mean(&avgs[3]),
        pct(mean(&avgs[4])),
        pct(mean(&avgs[5])),
        pct(mean(&avgs[6])),
        pct(mean(&avgs[7])),
        pct(mean(&avgs[8]))
    );
    let p = &PAPER[5];
    println!(
        "{:<10} | {:>6.1} {:>6.1} {:>6.1} {:>6.1} | {:>6} | {:>6} {:>6} | {:>6} {:>6}",
        "  (paper)",
        p.1,
        p.2,
        p.3,
        p.4,
        "  -",
        pct(p.6),
        pct(p.7),
        pct(p.8),
        pct(p.9)
    );
    println!(
        "\nNS hit ratios here = local-slice hits / all L1 misses of that side\n(B3L column = L2 hits / all L1 misses). Paper §IV claims: NS data 58% → 76%\nwith replication; Database NS-R services 97% of L1-I misses locally."
    );
}
