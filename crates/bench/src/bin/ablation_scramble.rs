//! §IV-D ablation: dynamic indexing on the power-of-two-stride LU
//! workloads. Compares D2M-NS (no scrambling) with a scramble-only variant
//! (NS + dynamic indexing, replication off) so the effect is isolated.
//! Paper: scrambling dramatically reduces energy for malicious patterns
//! such as LU by eliminating conflict misses.

use d2m_bench::{header, machine, parse_args, rule};
use d2m_core::{D2mFeatures, D2mSystem, D2mVariant};
use d2m_sim::RunConfig;
use d2m_workloads::{catalog, TraceGen};

fn run(spec_name: &str, dynamic_indexing: bool, rc: &RunConfig) -> (f64, f64) {
    let cfg = machine();
    let spec = catalog::by_name(spec_name).expect("workload");
    let feats = D2mFeatures {
        near_side: true,
        replication: false,
        dynamic_indexing,
        bypass: false,
        private_l2: false,
        traditional_l1: false,
    };
    let mut sys = D2mSystem::with_features(&cfg, D2mVariant::NearSide, feats, rc.seed);
    let mut gen = TraceGen::new(&spec, cfg.nodes, rc.seed);
    let mut batch = Vec::new();
    let mut insts = 0;
    while insts < rc.warmup_instructions {
        batch.clear();
        insts += gen.next_batch(&mut batch);
        for a in &batch {
            sys.access(a, 0).unwrap();
        }
    }
    let warm_fills = sys.raw_counters().mem_fills;
    let warm_misses = sys.raw_counters().l1d_misses;
    insts = 0;
    while insts < rc.instructions {
        batch.clear();
        insts += gen.next_batch(&mut batch);
        for a in &batch {
            sys.access(a, 0).unwrap();
        }
    }
    let ki = insts as f64 / 1000.0;
    (
        (sys.raw_counters().mem_fills - warm_fills) as f64 / ki,
        (sys.raw_counters().l1d_misses - warm_misses) as f64 / ki,
    )
}

fn main() {
    let hc = parse_args();
    header("§IV-D — dynamic-indexing (scramble) ablation", &hc);
    println!(
        "\n{:<16} {:>14} {:>14} {:>10}",
        "workload", "memfills/KI", "memfills/KI", "reduction"
    );
    println!("{:<16} {:>14} {:>14}", "", "(no scramble)", "(scrambled)");
    rule(58);
    for name in ["lu_cb", "lu_ncb", "fft", "swaptions"] {
        let (off, _) = run(name, false, &hc.rc);
        let (on, _) = run(name, true, &hc.rc);
        println!(
            "{:<16} {:>14.2} {:>14.2} {:>9.0}%",
            name,
            off,
            on,
            (1.0 - on / off.max(1e-9)) * 100.0
        );
    }
    rule(58);
    println!("lu_cb/lu_ncb carry 256 KB power-of-two strides that collapse onto one");
    println!("LLC set without scrambling; fft/swaptions are unaffected controls.");
}
