//! §V-B structure-pressure comparison: how often D2M's MD3 is consulted
//! versus the baselines' directory, and MD2 versus Base-3L's L2 tags.
//! Paper: MD3 accesses are 11% of Base-2L directory accesses and 27% of
//! Base-3L's; MD2 is accessed 58% as often as the Base-3L L2 tags.

use d2m_bench::{full_matrix, header, parse_args, rule};
use d2m_sim::SystemKind;
use d2m_workloads::catalog;

fn main() {
    let hc = parse_args();
    header("§V-B — metadata/directory structure pressure", &hc);
    let m = full_matrix(&hc);

    let mut md3_vs_2l = Vec::new();
    let mut md3_vs_3l = Vec::new();
    let mut md2_vs_l2tag = Vec::new();
    println!(
        "\n{:<16} {:>12} {:>12} {:>12}",
        "workload", "MD3/dir(2L)", "MD3/dir(3L)", "MD2/L2tag"
    );
    rule(56);
    for spec in catalog::all().expect("catalog specs are valid") {
        let b2 = m.get(SystemKind::Base2L, &spec.name).expect("run");
        let b3 = m.get(SystemKind::Base3L, &spec.name).expect("run");
        let fs = m.get(SystemKind::D2mFs, &spec.name).expect("run");
        let r1 = fs.dir_or_md3_accesses as f64 / b2.dir_or_md3_accesses.max(1) as f64;
        let r2 = fs.dir_or_md3_accesses as f64 / b3.dir_or_md3_accesses.max(1) as f64;
        let r3 = fs.md2_or_l2tag_accesses as f64 / b3.md2_or_l2tag_accesses.max(1) as f64;
        md3_vs_2l.push(r1);
        md3_vs_3l.push(r2);
        md2_vs_l2tag.push(r3);
        println!(
            "{:<16} {:>11.0}% {:>11.0}% {:>11.0}%",
            spec.name,
            r1 * 100.0,
            r2 * 100.0,
            r3 * 100.0
        );
    }
    rule(56);
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    println!(
        "average: MD3 = {:.0}% of Base-2L directory accesses (paper: 11%)",
        mean(&md3_vs_2l)
    );
    println!(
        "         MD3 = {:.0}% of Base-3L directory accesses (paper: 27%)",
        mean(&md3_vs_3l)
    );
    println!(
        "         MD2 = {:.0}% of Base-3L L2-tag searches    (paper: 58%)",
        mean(&md2_vs_l2tag)
    );
}
