//! Event counters for the baseline systems.

use d2m_common::stats::Counters;

/// Raw event counts accumulated by a [`crate::Baseline`] run.
///
/// Fields are public plain counters (C-struct spirit); use
/// [`BaselineCounters::to_counters`] for a named snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselineCounters {
    /// Total accesses (fetches + loads + stores).
    pub accesses: u64,
    /// Instruction fetches.
    pub ifetches: u64,
    /// Data loads.
    pub loads: u64,
    /// Data stores.
    pub stores: u64,
    /// L1-I hits / misses.
    pub l1i_hits: u64,
    /// L1-I misses.
    pub l1i_misses: u64,
    /// L1-D hits.
    pub l1d_hits: u64,
    /// L1-D misses.
    pub l1d_misses: u64,
    /// Late hits (fill still in flight) on the I side.
    pub late_hits_i: u64,
    /// Late hits on the D side.
    pub late_hits_d: u64,
    /// L2 hits (Base-3L only).
    pub l2_hits: u64,
    /// L2 misses (Base-3L only).
    pub l2_misses: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// Directory lookups/updates.
    pub dir_accesses: u64,
    /// Invalidation messages *received* by nodes (including false
    /// invalidations to nodes that no longer hold the line) — Table V.
    pub invalidations_received: u64,
    /// Ownership upgrades (store to a Shared line).
    pub upgrades: u64,
    /// Back-invalidations caused by inclusive-LLC evictions.
    pub back_invalidations: u64,
    /// Writebacks of dirty data (any level).
    pub writebacks: u64,
    /// Sum of L1-miss end-to-end latencies (cycles).
    pub miss_latency_sum: u64,
    /// Number of L1 misses contributing to `miss_latency_sum`.
    pub miss_count: u64,
    /// Coherence-oracle violations observed (must be zero).
    pub coherence_errors: u64,
}

impl BaselineCounters {
    /// Named snapshot for the harness.
    pub fn to_counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set("accesses", self.accesses)
            .set("ifetches", self.ifetches)
            .set("loads", self.loads)
            .set("stores", self.stores)
            .set("l1i.hits", self.l1i_hits)
            .set("l1i.misses", self.l1i_misses)
            .set("l1d.hits", self.l1d_hits)
            .set("l1d.misses", self.l1d_misses)
            .set("late_hits.i", self.late_hits_i)
            .set("late_hits.d", self.late_hits_d)
            .set("l2.hits", self.l2_hits)
            .set("l2.misses", self.l2_misses)
            .set("llc.hits", self.llc_hits)
            .set("llc.misses", self.llc_misses)
            .set("dir.accesses", self.dir_accesses)
            .set("inv.received", self.invalidations_received)
            .set("upgrades", self.upgrades)
            .set("back_invalidations", self.back_invalidations)
            .set("writebacks", self.writebacks)
            .set("miss_latency_sum", self.miss_latency_sum)
            .set("miss_count", self.miss_count)
            .set("coherence_errors", self.coherence_errors);
        c
    }

    /// Average L1 miss latency in cycles.
    pub fn avg_miss_latency(&self) -> f64 {
        if self.miss_count == 0 {
            0.0
        } else {
            self.miss_latency_sum as f64 / self.miss_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_contains_key_metrics() {
        let mut b = BaselineCounters::default();
        b.l1d_misses = 10;
        b.miss_latency_sum = 500;
        b.miss_count = 10;
        let c = b.to_counters();
        assert_eq!(c.get("l1d.misses"), 10);
        assert_eq!(b.avg_miss_latency(), 50.0);
    }

    #[test]
    fn avg_latency_handles_zero_misses() {
        assert_eq!(BaselineCounters::default().avg_miss_latency(), 0.0);
    }
}
