//! Base-2L and Base-3L: the paper's traditional-hierarchy baselines (§V-A).
//!
//! * **Base-2L** — per-node TLB + 8-way L1-I/L1-D (with perfect way
//!   prediction, i.e. one tag comparison per access) and a shared, inclusive
//!   32-way far-side LLC with an embedded full-map MESI directory. Modeled on
//!   an ARM A57-class mobile part.
//! * **Base-3L** — Base-2L plus a private, inclusive 256 KB 8-way L2 per
//!   node. Modeled on a server part; note its substantially higher
//!   implementation cost (paper Figure 4).
//!
//! These systems pay all the costs D2M eliminates: level-by-level searches,
//! associative tag comparisons at every level, directory indirections for
//! every miss, and back-invalidations to keep the inclusive LLC consistent.
//! Every such event is counted so the experiment harness can reproduce the
//! paper's traffic (Figure 5), EDP (Figure 6), speedup (Figure 7) and
//! invalidation (Table V) comparisons.
//!
//! # Example
//!
//! ```
//! use d2m_baseline::{Baseline, BaselineKind};
//! use d2m_common::MachineConfig;
//! use d2m_workloads::{catalog, TraceGen};
//!
//! let cfg = MachineConfig::default();
//! let mut sys = Baseline::new(&cfg, BaselineKind::TwoLevel);
//! let mut gen = TraceGen::new(&catalog::by_name("swaptions").unwrap(), 8, 1);
//! let mut batch = Vec::new();
//! gen.next_batch(&mut batch);
//! for a in &batch {
//!     let r = sys.access(a, 0);
//!     assert!(r.latency >= 2);
//! }
//! ```

mod counters;
mod system;

pub use counters::BaselineCounters;
pub use system::{Baseline, BaselineKind};
