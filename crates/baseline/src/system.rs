//! The Base-2L / Base-3L hierarchy with a MESI full-map directory.
//!
//! Protocol summary (per access, executed atomically):
//!
//! 1. TLB1 translate (walk latency on miss).
//! 2. L1 lookup (one tag comparison — perfect way prediction, §V-A).
//! 3. Base-3L only: L2 lookup (full 8-way tag search).
//! 4. Far side: directory + 32-way LLC tag search. Reads may be forwarded to
//!    a remote owner (3-hop miss); writes invalidate sharers through the
//!    directory. LLC misses fetch from memory and may back-invalidate nodes
//!    to preserve inclusion.
//!
//! Directory state per LLC line: `owner` (node holding M/E) and a `sharers`
//! superset (S-state evictions are silent, so invalidations can be "false" —
//! counted, as Table V does). Every load is validated against the
//! [`VersionOracle`] when `check_coherence` is on.

use d2m_cache::{SetAssoc, Tlb};
use d2m_common::addr::{LineAddr, NodeId};
use d2m_common::config::MachineConfig;
use d2m_common::oracle::VersionOracle;
use d2m_common::outcome::{AccessResult, ServicedBy};
use d2m_common::probe::{LookupLevel, Probe, TxnEvent, TxnKind};
use d2m_common::stats::Counters;
use d2m_energy::{EnergyAccount, EnergyEvent, EnergyModel};
use d2m_noc::{Endpoint, MsgClass, Noc};
use d2m_workloads::{Access, AccessKind};

use crate::counters::BaselineCounters;

/// Which baseline to model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaselineKind {
    /// L1 + shared LLC (paper Base-2L, mobile-class).
    TwoLevel,
    /// L1 + private L2 + shared LLC (paper Base-3L, server-class).
    ThreeLevel,
}

impl BaselineKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::TwoLevel => "Base-2L",
            BaselineKind::ThreeLevel => "Base-3L",
        }
    }
}

/// MESI states for private copies (Invalid = absent).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mesi {
    Modified,
    Exclusive,
    Shared,
}

/// One line in a private cache (L1 or L2).
#[derive(Clone, Copy, Debug)]
struct PrivLine {
    state: Mesi,
    version: u64,
    /// Node-local cycle at which the fill completes (late-hit modelling).
    ready_at: u64,
}

/// One line in the shared LLC, with its embedded directory entry.
#[derive(Clone, Copy, Debug)]
struct LlcLine {
    dirty: bool,
    version: u64,
    /// Node holding this line in M or E (may be stale after silent E drops).
    owner: Option<u8>,
    /// Superset of nodes holding this line in S.
    sharers: u8,
}

struct BaseNode {
    tlb: Tlb,
    l1i: SetAssoc<PrivLine>,
    l1d: SetAssoc<PrivLine>,
    l2: Option<SetAssoc<PrivLine>>,
}

/// A Base-2L or Base-3L system (see crate docs).
pub struct Baseline {
    kind: BaselineKind,
    cfg: MachineConfig,
    nodes: Vec<BaseNode>,
    llc: SetAssoc<LlcLine>,
    noc: Noc,
    energy: EnergyAccount,
    oracle: VersionOracle,
    ctr: BaselineCounters,
}

impl Baseline {
    /// Builds a baseline system from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: &MachineConfig, kind: BaselineKind) -> Self {
        cfg.validate().expect("invalid machine config");
        let nodes = (0..cfg.nodes)
            .map(|_| BaseNode {
                tlb: Tlb::new(cfg.tlb.sets, cfg.tlb.ways),
                l1i: SetAssoc::new(cfg.l1i.sets, cfg.l1i.ways),
                l1d: SetAssoc::new(cfg.l1d.sets, cfg.l1d.ways),
                l2: match kind {
                    BaselineKind::TwoLevel => None,
                    BaselineKind::ThreeLevel => Some(SetAssoc::new(cfg.l2.sets, cfg.l2.ways)),
                },
            })
            .collect();
        Self {
            kind,
            cfg: cfg.clone(),
            nodes,
            llc: SetAssoc::new(cfg.llc.sets, cfg.llc.ways),
            noc: Noc::new(cfg.lat.noc),
            energy: EnergyAccount::new(EnergyModel::default()),
            oracle: VersionOracle::new(),
            ctr: BaselineCounters::default(),
        }
    }

    /// The modelled configuration.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// Raw event counters.
    pub fn raw_counters(&self) -> &BaselineCounters {
        &self.ctr
    }

    /// Interconnect accumulator.
    pub fn noc(&self) -> &Noc {
        &self.noc
    }

    /// Mutable interconnect accumulator (e.g. to enable traffic recording).
    pub fn noc_mut(&mut self) -> &mut Noc {
        &mut self.noc
    }

    /// Energy account (structure accesses; NoC/memory energy is derived from
    /// the [`Noc`] counters by the runner).
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    /// Mutable energy account (for the runner's leakage charge).
    pub fn energy_mut(&mut self) -> &mut EnergyAccount {
        &mut self.energy
    }

    /// Total SRAM capacity in KB for leakage accounting (arrays + tags +
    /// TLB + directory).
    pub fn sram_kb(&self) -> f64 {
        let n = self.cfg.nodes as f64;
        let l1 = (self.cfg.l1i.capacity_bytes() + self.cfg.l1d.capacity_bytes()) as f64;
        let l1_tags = ((self.cfg.l1i.entries() + self.cfg.l1d.entries()) * 6) as f64;
        let tlb = (self.cfg.tlb.entries() * 8) as f64;
        let l2 = match self.kind {
            BaselineKind::TwoLevel => 0.0,
            BaselineKind::ThreeLevel => {
                (self.cfg.l2.capacity_bytes() + self.cfg.l2.entries() * 6) as f64
            }
        };
        let llc = self.cfg.llc.capacity_bytes() as f64;
        let llc_tags = (self.cfg.llc.entries() * 6) as f64;
        let dir = (self.cfg.llc.entries() * 2) as f64;
        (n * (l1 + l1_tags + tlb + l2) + llc + llc_tags + dir) / 1024.0
    }

    /// Named counter snapshot (events + messages).
    pub fn counters(&self) -> Counters {
        let mut c = self.ctr.to_counters();
        c.merge_prefixed("noc.", &self.noc.counters());
        c
    }

    /// Coherence-oracle violations seen so far (must stay zero).
    pub fn coherence_errors(&self) -> u64 {
        self.ctr.coherence_errors
    }

    fn node_bit(n: usize) -> u8 {
        1u8 << n
    }

    #[cfg(test)]
    pub(crate) fn cfg_lat_walk(&self) -> u64 {
        self.cfg.lat.tlb_walk
    }

    /// [`Self::access`] with an optional observability probe.
    ///
    /// With `probe = None` this is exactly the unprobed path. With a probe,
    /// each transaction is reported as a [`TxnEvent`]; the lookup level is
    /// the deepest level that serviced the request (L1 hit → L1, L2 serve →
    /// L2, everything beyond the private levels → L3).
    pub fn access_probed(
        &mut self,
        a: &Access,
        now: u64,
        probe: Option<&mut dyn Probe>,
    ) -> AccessResult {
        let Some(p) = probe else {
            return self.access(a, now);
        };
        let msgs0 = self.noc.messages();
        let r = self.access(a, now);
        let level = if r.l1_hit {
            LookupLevel::L1
        } else if r.serviced_by == ServicedBy::L2 {
            LookupLevel::L2
        } else {
            LookupLevel::L3
        };
        p.txn(&TxnEvent {
            node: a.node.index() as u8,
            kind: match a.kind {
                AccessKind::IFetch => TxnKind::IFetch,
                AccessKind::Load => TxnKind::Load,
                AccessKind::Store => TxnKind::Store,
            },
            level,
            l1_hit: r.l1_hit,
            late: r.late,
            private_miss: r.private_miss,
            serviced: r.serviced_by,
            hops: self.noc.messages() - msgs0,
            latency: r.latency,
        });
        r
    }

    /// Simulates one access issued at node-local cycle `now`.
    pub fn access(&mut self, a: &Access, now: u64) -> AccessResult {
        self.ctr.accesses += 1;
        match a.kind {
            AccessKind::IFetch => self.ctr.ifetches += 1,
            AccessKind::Load => self.ctr.loads += 1,
            AccessKind::Store => self.ctr.stores += 1,
        }
        let n = a.node.index();
        let is_i = a.kind.is_ifetch();
        let is_store = a.kind.is_store();

        // 1. TLB
        self.energy.record(EnergyEvent::Tlb, 1);
        let (paddr, tlb_hit) = self.nodes[n].tlb.access(a.asid, a.vaddr);
        let mut latency = self.cfg.lat.l1;
        if !tlb_hit {
            latency += self.cfg.lat.tlb_walk;
        }
        let line = paddr.line();
        let key = line.raw();

        // 2. L1 lookup (perfect way prediction: one tag comparison).
        self.energy.record(EnergyEvent::L1TagWay, 1);
        let l1 = if is_i {
            &mut self.nodes[n].l1i
        } else {
            &mut self.nodes[n].l1d
        };
        let set = l1.set_index(key);
        if let Some(way) = l1.way_of(set, key) {
            let pl = *l1.at(set, way).map(|(_, v)| v).expect("occupied");
            l1.touch(set, way);
            self.energy.record(EnergyEvent::L1Array, 1);
            let mut late = false;
            if now < pl.ready_at {
                late = true;
                latency += pl.ready_at - now;
                if is_i {
                    self.ctr.late_hits_i += 1;
                } else {
                    self.ctr.late_hits_d += 1;
                }
            }
            if is_i {
                self.ctr.l1i_hits += 1;
            } else {
                self.ctr.l1d_hits += 1;
            }
            if is_store {
                match pl.state {
                    Mesi::Modified => {}
                    Mesi::Exclusive => {
                        // Silent E→M upgrade (MESI).
                        let (_, v) = self.nodes[n].l1d.at_mut(set, way).expect("occupied");
                        v.state = Mesi::Modified;
                    }
                    Mesi::Shared => {
                        latency += self.upgrade_shared(n, line);
                        let l1 = &mut self.nodes[n].l1d;
                        let (_, v) = l1.at_mut(set, way).expect("occupied");
                        v.state = Mesi::Modified;
                    }
                }
                let ver = self.oracle.on_store(line);
                let l1 = &mut self.nodes[n].l1d;
                let (_, v) = l1.at_mut(set, way).expect("occupied");
                v.version = ver;
                if let Some(l2) = &mut self.nodes[n].l2 {
                    // Keep the inclusive L2 copy's state in sync (its version
                    // catches up on L1 writeback).
                    let s2 = l2.set_index(key);
                    if let Some(w2) = l2.way_of(s2, key) {
                        let (_, v2) = l2.at_mut(s2, w2).expect("occupied");
                        v2.state = Mesi::Modified;
                    }
                }
            } else if self.cfg.check_coherence {
                if let Err(e) = self.oracle.check_load(line, pl.version) {
                    self.ctr.coherence_errors += 1;
                    debug_assert!(false, "{} {e}", self.kind.name());
                }
            }
            return AccessResult {
                latency,
                l1_hit: true,
                late,
                serviced_by: ServicedBy::L1,
                private_miss: None,
            };
        }

        // --- L1 miss ---
        if is_i {
            self.ctr.l1i_misses += 1;
        } else {
            self.ctr.l1d_misses += 1;
        }

        // 3. Base-3L: private L2 (full tag search).
        let mut serviced = None;
        let mut version = 0;
        let mut state = Mesi::Shared;
        if self.nodes[n].l2.is_some() {
            self.energy
                .record(EnergyEvent::L2TagWay, self.cfg.l2.ways as u64);
            let l2 = self.nodes[n].l2.as_mut().expect("3L");
            let s2 = l2.set_index(key);
            if let Some(w2) = l2.way_of(s2, key) {
                latency += self.cfg.lat.l2;
                self.energy.record(EnergyEvent::L2Array, 1);
                let pl2 = *l2.at(s2, w2).map(|(_, v)| v).expect("occupied");
                l2.touch(s2, w2);
                self.ctr.l2_hits += 1;
                version = pl2.version;
                state = pl2.state;
                if is_store && pl2.state == Mesi::Shared {
                    latency += self.upgrade_shared(n, line);
                    let l2 = self.nodes[n].l2.as_mut().expect("3L");
                    let (_, v2) = l2.at_mut(s2, w2).expect("occupied");
                    v2.state = Mesi::Modified;
                    state = Mesi::Modified;
                } else if is_store {
                    let l2 = self.nodes[n].l2.as_mut().expect("3L");
                    let (_, v2) = l2.at_mut(s2, w2).expect("occupied");
                    v2.state = Mesi::Modified;
                    state = Mesi::Modified;
                }
                serviced = Some(ServicedBy::L2);
            } else {
                self.ctr.l2_misses += 1;
            }
        }

        // 4. Far side.
        if serviced.is_none() {
            let (v, st, lat, sv) = self.far_access(n, line, is_store);
            version = v;
            state = st;
            latency += lat;
            serviced = Some(sv);
            // Fill the inclusive L2 on the way in.
            if self.nodes[n].l2.is_some() {
                self.install_l2(n, line, state, version, now + latency);
            }
        }

        let serviced = serviced.expect("set above");
        if is_store {
            version = self.oracle.on_store(line);
            state = Mesi::Modified;
        } else if self.cfg.check_coherence {
            if let Err(e) = self.oracle.check_load(line, version) {
                self.ctr.coherence_errors += 1;
                debug_assert!(false, "{} {e}", self.kind.name());
            }
        }
        self.install_l1(n, is_i, line, state, version, now + latency);
        self.ctr.miss_latency_sum += latency;
        self.ctr.miss_count += 1;

        AccessResult {
            latency,
            l1_hit: false,
            late: false,
            serviced_by: serviced,
            private_miss: None,
        }
    }

    /// Store hit on a Shared copy: directory-mediated ownership upgrade.
    fn upgrade_shared(&mut self, n: usize, line: LineAddr) -> u64 {
        self.ctr.upgrades += 1;
        let me = Endpoint::Node(NodeId::new(n as u8));
        let mut lat = self.noc.send(MsgClass::UpgradeReq, me, Endpoint::FarSide);
        lat += self.cfg.lat.directory;
        self.ctr.dir_accesses += 1;
        self.energy.record(EnergyEvent::Directory, 1);
        let key = line.raw();
        let set = self.llc.set_index(key);
        // Inclusion guarantees the directory entry exists.
        let entry = *self
            .llc
            .peek(set, key)
            .expect("inclusive LLC lost a cached line");
        let mut targets = entry.sharers & !Self::node_bit(n);
        if let Some(o) = entry.owner {
            if o as usize != n {
                targets |= Self::node_bit(o as usize);
            }
        }
        lat += self.invalidate_nodes(targets, line, Some(n));
        if let Some(e) = self.llc.get_mut(set, key) {
            e.owner = Some(n as u8);
            e.sharers = 0;
        }
        lat
    }

    /// Sends Inv to every node in `targets`, removing their copies.
    /// Dirty victims write back to the LLC entry. Returns added latency
    /// (one Inv + one Ack round; legs in parallel). `acks_to`: requesting
    /// node, or `None` to ack the far side (back-invalidations).
    fn invalidate_nodes(&mut self, targets: u8, line: LineAddr, acks_to: Option<usize>) -> u64 {
        if targets == 0 {
            return 0;
        }
        let mut lat = 0;
        for t in 0..self.cfg.nodes {
            if targets & Self::node_bit(t) == 0 {
                continue;
            }
            lat = lat.max(self.noc.send(
                MsgClass::Inv,
                Endpoint::FarSide,
                Endpoint::Node(NodeId::new(t as u8)),
            ));
            self.ctr.invalidations_received += 1;
            let dirty = self.purge_node_copies(t, line);
            if let Some((ver, was_m)) = dirty {
                if was_m {
                    // Dirty data rides the ack back to the LLC.
                    self.noc.send(
                        MsgClass::WbData,
                        Endpoint::Node(NodeId::new(t as u8)),
                        Endpoint::FarSide,
                    );
                    self.ctr.writebacks += 1;
                    let key = line.raw();
                    let set = self.llc.set_index(key);
                    if let Some(e) = self.llc.get_mut(set, key) {
                        e.version = ver;
                        e.dirty = true;
                    }
                }
            }
            let ack_dst = match acks_to {
                Some(r) => Endpoint::Node(NodeId::new(r as u8)),
                None => Endpoint::FarSide,
            };
            lat = lat.max(self.noc.send(
                MsgClass::Ack,
                Endpoint::Node(NodeId::new(t as u8)),
                ack_dst,
            ));
        }
        lat
    }

    /// Removes all copies of `line` from node `t`'s caches.
    /// Returns `Some((version, was_modified))` of the freshest removed copy.
    fn purge_node_copies(&mut self, t: usize, line: LineAddr) -> Option<(u64, bool)> {
        let key = line.raw();
        let mut best: Option<(u64, bool)> = None;
        let node = &mut self.nodes[t];
        for arr in [&mut node.l1d, &mut node.l1i] {
            let s = arr.set_index(key);
            if let Some(w) = arr.way_of(s, key) {
                if let Some((_, pl)) = arr.remove(s, w) {
                    let m = pl.state == Mesi::Modified;
                    if best.is_none_or(|(v, _)| pl.version > v) {
                        best = Some((pl.version, m));
                    }
                }
            }
        }
        if let Some(l2) = &mut node.l2 {
            let s = l2.set_index(key);
            if let Some(w) = l2.way_of(s, key) {
                if let Some((_, pl)) = l2.remove(s, w) {
                    let m = pl.state == Mesi::Modified;
                    if best.is_none_or(|(v, _)| pl.version > v) {
                        best = Some((pl.version, m));
                    }
                }
            }
        }
        best
    }

    /// The freshest valid copy of `line` in node `t` without removing it;
    /// downgrades all copies to Shared (read-forward path).
    fn downgrade_node_copies(&mut self, t: usize, line: LineAddr) -> Option<(u64, bool)> {
        let key = line.raw();
        let mut best: Option<(u64, bool)> = None;
        let node = &mut self.nodes[t];
        for arr in [&mut node.l1d, &mut node.l1i]
            .into_iter()
            .chain(node.l2.as_mut())
        {
            let s = arr.set_index(key);
            if let Some(w) = arr.way_of(s, key) {
                if let Some((_, pl)) = arr.at_mut(s, w) {
                    let m = pl.state == Mesi::Modified;
                    if best.is_none_or(|(v, _)| pl.version > v) {
                        best = Some((pl.version, m));
                    }
                    pl.state = Mesi::Shared;
                }
            }
        }
        best
    }

    /// The far-side transaction: directory + LLC, possibly forwarded to a
    /// remote owner or to memory. Returns `(version, granted_state, latency,
    /// serviced_by)`.
    fn far_access(
        &mut self,
        n: usize,
        line: LineAddr,
        want_store: bool,
    ) -> (u64, Mesi, u64, ServicedBy) {
        let me = Endpoint::Node(NodeId::new(n as u8));
        let req_class = if want_store {
            MsgClass::ReadExReq
        } else {
            MsgClass::ReadReq
        };
        let mut lat = self.noc.send(req_class, me, Endpoint::FarSide);
        lat += self.cfg.lat.directory;
        self.ctr.dir_accesses += 1;
        self.energy.record(EnergyEvent::Directory, 1);
        self.energy
            .record(EnergyEvent::LlcTagWay, self.cfg.llc.ways as u64);

        let key = line.raw();
        let set = self.llc.set_index(key);
        if let Some(entry) = self.llc.peek(set, key).copied() {
            // --- LLC hit ---
            self.ctr.llc_hits += 1;
            self.llc.get(set, key); // LRU touch
            self.energy.record(EnergyEvent::LlcArray, 1);
            lat += self.cfg.lat.llc;
            if want_store {
                let mut targets = entry.sharers & !Self::node_bit(n);
                if let Some(o) = entry.owner {
                    if o as usize != n {
                        targets |= Self::node_bit(o as usize);
                    }
                }
                // Freshest data: a remote M copy wins over the LLC copy.
                let mut version = entry.version;
                let mut serviced = ServicedBy::Llc;
                if let Some(o) = entry.owner {
                    if o as usize != n {
                        if let Some((v, was_m)) = self.node_peek_version(o as usize, line) {
                            if was_m {
                                version = v;
                                serviced = ServicedBy::RemoteNode;
                                lat += self.noc.send(
                                    MsgClass::Fwd,
                                    Endpoint::FarSide,
                                    Endpoint::Node(NodeId::new(o)),
                                );
                            }
                        }
                    }
                }
                lat += self.invalidate_nodes(targets, line, Some(n));
                lat += self.noc.send(MsgClass::DataReply, Endpoint::FarSide, me);
                if let Some(e) = self.llc.get_mut(set, key) {
                    e.owner = Some(n as u8);
                    e.sharers = 0;
                }
                (version, Mesi::Modified, lat, serviced)
            } else {
                // Read: maybe forward to the owner.
                match entry.owner {
                    Some(o) if o as usize != n => {
                        lat += self.noc.send(
                            MsgClass::Fwd,
                            Endpoint::FarSide,
                            Endpoint::Node(NodeId::new(o)),
                        );
                        // Owner pays an L1 lookup to source the data.
                        self.energy.record(EnergyEvent::L1TagWay, 1);
                        self.energy.record(EnergyEvent::L1Array, 1);
                        lat += self.cfg.lat.l1;
                        if let Some((ver, was_m)) = self.downgrade_node_copies(o as usize, line) {
                            lat += self.noc.send(
                                MsgClass::DataReply,
                                Endpoint::Node(NodeId::new(o)),
                                me,
                            );
                            if was_m {
                                // Owner also cleans the LLC copy.
                                self.noc.send(
                                    MsgClass::WbData,
                                    Endpoint::Node(NodeId::new(o)),
                                    Endpoint::FarSide,
                                );
                                self.ctr.writebacks += 1;
                            }
                            if let Some(e) = self.llc.get_mut(set, key) {
                                e.owner = None;
                                e.sharers |= Self::node_bit(o as usize) | Self::node_bit(n);
                                if was_m {
                                    e.version = ver;
                                    e.dirty = true;
                                }
                            }
                            (ver, Mesi::Shared, lat, ServicedBy::RemoteNode)
                        } else {
                            // Stale owner pointer (silent E drop): LLC data
                            // is current; pay the wasted hop.
                            lat += self.noc.send(
                                MsgClass::Ack,
                                Endpoint::Node(NodeId::new(o)),
                                Endpoint::FarSide,
                            );
                            lat += self.noc.send(MsgClass::DataReply, Endpoint::FarSide, me);
                            if let Some(e) = self.llc.get_mut(set, key) {
                                e.owner = None;
                                e.sharers |= Self::node_bit(n);
                            }
                            (entry.version, Mesi::Shared, lat, ServicedBy::Llc)
                        }
                    }
                    _ => {
                        lat += self.noc.send(MsgClass::DataReply, Endpoint::FarSide, me);
                        let alone = entry.sharers & !Self::node_bit(n) == 0;
                        let state = if alone && entry.owner.is_none() {
                            Mesi::Exclusive
                        } else {
                            Mesi::Shared
                        };
                        if let Some(e) = self.llc.get_mut(set, key) {
                            if state == Mesi::Exclusive {
                                e.owner = Some(n as u8);
                                e.sharers = 0;
                            } else {
                                e.owner = None;
                                e.sharers |= Self::node_bit(n);
                            }
                        }
                        (entry.version, state, lat, ServicedBy::Llc)
                    }
                }
            }
        } else {
            // --- LLC miss: fetch from memory, install (inclusive). ---
            self.ctr.llc_misses += 1;
            self.noc.offchip(MsgClass::MemRead);
            lat += self.cfg.lat.mem;
            let version = self.oracle.memory(line);
            let victim_way = self.llc.victim_way(set);
            if let Some((old_key, old)) = self.llc.at(set, victim_way).map(|(k, v)| (k, *v)) {
                self.evict_llc_entry(LineAddr::new(old_key), old);
                self.llc.remove(set, victim_way);
            }
            let (owner, sharers, state) = if want_store {
                (Some(n as u8), 0, Mesi::Modified)
            } else {
                (Some(n as u8), 0, Mesi::Exclusive)
            };
            self.llc.insert_at(
                set,
                victim_way,
                key,
                LlcLine {
                    dirty: false,
                    version,
                    owner,
                    sharers,
                },
            );
            self.energy.record(EnergyEvent::LlcArray, 1);
            lat += self.noc.send(MsgClass::DataReply, Endpoint::FarSide, me);
            (version, state, lat, ServicedBy::Mem)
        }
    }

    /// Version of the freshest copy in node `t` (no state change).
    fn node_peek_version(&self, t: usize, line: LineAddr) -> Option<(u64, bool)> {
        let key = line.raw();
        let node = &self.nodes[t];
        let mut best: Option<(u64, bool)> = None;
        let mut check = |arr: &SetAssoc<PrivLine>| {
            let s = arr.set_index(key);
            if let Some(pl) = arr.peek(s, key) {
                let m = pl.state == Mesi::Modified;
                if best.is_none_or(|(v, _)| pl.version > v) {
                    best = Some((pl.version, m));
                }
            }
        };
        check(&node.l1d);
        check(&node.l1i);
        if let Some(l2) = &node.l2 {
            check(l2);
        }
        best
    }

    /// Evicts one LLC entry: back-invalidates all private copies
    /// (inclusion), writes dirty data to memory.
    fn evict_llc_entry(&mut self, line: LineAddr, entry: LlcLine) {
        let mut targets = entry.sharers;
        if let Some(o) = entry.owner {
            targets |= Self::node_bit(o as usize);
        }
        let mut best_version = entry.version;
        let mut dirty = entry.dirty;
        for t in 0..self.cfg.nodes {
            if targets & Self::node_bit(t) == 0 {
                continue;
            }
            self.noc.send(
                MsgClass::Inv,
                Endpoint::FarSide,
                Endpoint::Node(NodeId::new(t as u8)),
            );
            self.ctr.invalidations_received += 1;
            self.ctr.back_invalidations += 1;
            if let Some((ver, was_m)) = self.purge_node_copies(t, line) {
                if was_m {
                    self.noc.send(
                        MsgClass::WbData,
                        Endpoint::Node(NodeId::new(t as u8)),
                        Endpoint::FarSide,
                    );
                    self.ctr.writebacks += 1;
                    best_version = best_version.max(ver);
                    dirty = true;
                }
            }
            self.noc.send(
                MsgClass::Ack,
                Endpoint::Node(NodeId::new(t as u8)),
                Endpoint::FarSide,
            );
        }
        if dirty {
            self.noc.offchip(MsgClass::MemWrite);
            self.ctr.writebacks += 1;
            self.oracle.write_memory(line, best_version);
        }
    }

    /// Installs a line in node `n`'s L1, evicting as needed.
    fn install_l1(
        &mut self,
        n: usize,
        is_i: bool,
        line: LineAddr,
        state: Mesi,
        version: u64,
        ready_at: u64,
    ) {
        let key = line.raw();
        let has_l2 = self.nodes[n].l2.is_some();
        let l1 = if is_i {
            &mut self.nodes[n].l1i
        } else {
            &mut self.nodes[n].l1d
        };
        let set = l1.set_index(key);
        let way = l1.victim_way(set);
        let evicted = l1.insert_at(
            set,
            way,
            key,
            PrivLine {
                state,
                version,
                ready_at,
            },
        );
        if let Some((old_key, old)) = evicted {
            if old.state == Mesi::Modified {
                self.writeback_from_l1(n, has_l2, LineAddr::new(old_key), old.version);
            }
            // E/S evictions are silent (directory keeps a stale superset).
        }
    }

    /// Writes a dirty L1 victim back: to the L2 (Base-3L) or the LLC
    /// (Base-2L).
    fn writeback_from_l1(&mut self, n: usize, has_l2: bool, line: LineAddr, version: u64) {
        self.ctr.writebacks += 1;
        let key = line.raw();
        if has_l2 {
            let l2 = self.nodes[n].l2.as_mut().expect("3L");
            let s2 = l2.set_index(key);
            if let Some(w2) = l2.way_of(s2, key) {
                let (_, v2) = l2.at_mut(s2, w2).expect("occupied");
                v2.version = version;
                v2.state = Mesi::Modified;
                return;
            }
            // Inclusion should prevent this, but fall through to LLC if the
            // L2 copy vanished (back-invalidation race is impossible here,
            // so this is defensive).
        }
        self.noc.send(
            MsgClass::WbData,
            Endpoint::Node(NodeId::new(n as u8)),
            Endpoint::FarSide,
        );
        let set = self.llc.set_index(key);
        if let Some(e) = self.llc.get_mut(set, key) {
            e.version = version;
            e.dirty = true;
            e.owner = None;
        }
    }

    /// Installs a line in the inclusive private L2 (Base-3L).
    fn install_l2(&mut self, n: usize, line: LineAddr, state: Mesi, version: u64, _ready: u64) {
        let key = line.raw();
        let l2 = self.nodes[n].l2.as_mut().expect("3L");
        let s2 = l2.set_index(key);
        let w2 = l2.victim_way(s2);
        let evicted = l2.insert_at(
            s2,
            w2,
            key,
            PrivLine {
                state,
                version,
                ready_at: 0,
            },
        );
        if let Some((old_key, old)) = evicted {
            let old_line = LineAddr::new(old_key);
            // L2 inclusion over L1: purge the L1 copy of the victim.
            let mut fresh = (old.version, old.state == Mesi::Modified);
            let node = &mut self.nodes[n];
            for arr in [&mut node.l1d, &mut node.l1i] {
                let s1 = arr.set_index(old_key);
                if let Some(w1) = arr.way_of(s1, old_key) {
                    if let Some((_, pl)) = arr.remove(s1, w1) {
                        if pl.version > fresh.0 {
                            fresh = (pl.version, pl.state == Mesi::Modified);
                        } else if pl.state == Mesi::Modified {
                            fresh.1 = true;
                        }
                        self.ctr.back_invalidations += 1;
                    }
                }
            }
            if fresh.1 {
                self.noc.send(
                    MsgClass::WbData,
                    Endpoint::Node(NodeId::new(n as u8)),
                    Endpoint::FarSide,
                );
                self.ctr.writebacks += 1;
                let set = self.llc.set_index(old_key);
                if let Some(e) = self.llc.get_mut(set, old_key) {
                    e.version = fresh.0;
                    e.dirty = true;
                    e.owner = None;
                }
            }
            let _ = old_line;
        }
    }

    /// Structural invariant check used by tests:
    ///
    /// * inclusion — every private copy has an LLC entry;
    /// * every Modified copy's holder is the directory owner.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (n, node) in self.nodes.iter().enumerate() {
            let mut arrays: Vec<(&str, &SetAssoc<PrivLine>)> =
                vec![("l1d", &node.l1d), ("l1i", &node.l1i)];
            if let Some(l2) = &node.l2 {
                arrays.push(("l2", l2));
            }
            for (name, arr) in arrays {
                for (_, _, key, pl) in arr.iter() {
                    let set = self.llc.set_index(key);
                    let Some(e) = self.llc.peek(set, key) else {
                        return Err(format!(
                            "inclusion violated: node {n} {name} holds {key:#x} absent from LLC"
                        ));
                    };
                    if pl.state == Mesi::Modified && e.owner != Some(n as u8) {
                        return Err(format!(
                            "node {n} {name} holds {key:#x} in M but directory owner is {:?}",
                            e.owner
                        ));
                    }
                    if pl.state == Mesi::Shared
                        && e.owner != Some(n as u8)
                        && e.sharers & Self::node_bit(n) == 0
                    {
                        return Err(format!(
                            "node {n} {name} holds {key:#x} in S but is not in sharers"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2m_common::addr::{Asid, VAddr};
    use d2m_workloads::{catalog, TraceGen};

    fn cfg() -> MachineConfig {
        let mut c = MachineConfig::default();
        c.check_coherence = true;
        c
    }

    fn acc(node: u8, kind: AccessKind, va: u64) -> Access {
        Access {
            node: NodeId::new(node),
            asid: Asid(0),
            kind,
            vaddr: VAddr::new(va),
        }
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::TwoLevel);
        let r1 = sys.access(&acc(0, AccessKind::Load, 0x10_0000), 0);
        assert!(!r1.l1_hit);
        assert_eq!(r1.serviced_by, ServicedBy::Mem);
        let r2 = sys.access(&acc(0, AccessKind::Load, 0x10_0000), 1000);
        assert!(r2.l1_hit);
        assert!(r2.latency < r1.latency);
    }

    #[test]
    fn second_node_read_is_sourced_from_owner_or_llc() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::TwoLevel);
        sys.access(&acc(0, AccessKind::Load, 0x20_0000), 0);
        let r = sys.access(&acc(1, AccessKind::Load, 0x20_0000), 0);
        assert!(!r.l1_hit);
        // Node 0 got an E grant, so the read is forwarded to it.
        assert_eq!(r.serviced_by, ServicedBy::RemoteNode);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn store_invalidates_sharers() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::TwoLevel);
        for n in 0..4 {
            sys.access(&acc(n, AccessKind::Load, 0x30_0000), 0);
        }
        let inv_before = sys.raw_counters().invalidations_received;
        sys.access(&acc(0, AccessKind::Store, 0x30_0000), 0);
        assert!(sys.raw_counters().invalidations_received > inv_before);
        // Readers must now see the new version (serviced by owner node 0).
        let r = sys.access(&acc(2, AccessKind::Load, 0x30_0000), 0);
        assert!(!r.l1_hit);
        assert_eq!(sys.coherence_errors(), 0);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn store_then_remote_load_returns_latest_value() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::TwoLevel);
        sys.access(&acc(0, AccessKind::Store, 0x40_0000), 0);
        sys.access(&acc(1, AccessKind::Load, 0x40_0000), 0);
        sys.access(&acc(1, AccessKind::Load, 0x40_0000), 10_000);
        assert_eq!(sys.coherence_errors(), 0);
    }

    #[test]
    fn three_level_uses_l2() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::ThreeLevel);
        sys.access(&acc(0, AccessKind::Load, 0x50_0000), 0);
        // Evict from tiny L1 by touching many same-set lines; L1 has 64 sets,
        // so addresses 64 lines apart collide.
        for i in 1..=9u64 {
            sys.access(&acc(0, AccessKind::Load, 0x50_0000 + i * 64 * 64), 0);
        }
        let r = sys.access(&acc(0, AccessKind::Load, 0x50_0000), 0);
        assert!(!r.l1_hit);
        assert_eq!(r.serviced_by, ServicedBy::L2);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn late_hit_detected_when_fill_in_flight() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::TwoLevel);
        let r1 = sys.access(&acc(0, AccessKind::Load, 0x60_0000), 100);
        // Immediately re-access at the same node-local time: fill not done.
        let r2 = sys.access(&acc(0, AccessKind::Load, 0x60_0000), 101);
        assert!(r2.l1_hit && r2.late);
        assert!(r2.latency >= r1.latency - 2);
        assert_eq!(sys.raw_counters().late_hits_d, 1);
    }

    #[test]
    fn late_hit_latency_survives_waits_beyond_u32() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::TwoLevel);
        // Fill far past u32::MAX cycles, then re-access at cycle 0: the
        // in-flight window exceeds u32::MAX, which a u32 accumulator wraps.
        let far = u32::MAX as u64 * 4;
        sys.access(&acc(0, AccessKind::Load, 0x60_0000), far);
        let r = sys.access(&acc(0, AccessKind::Load, 0x60_0000), 0);
        assert!(r.l1_hit && r.late);
        assert!(
            r.latency > u64::from(u32::MAX),
            "late-hit latency truncated to {}",
            r.latency
        );
    }

    #[test]
    fn random_workload_preserves_coherence_and_invariants() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::TwoLevel);
        let spec = catalog::by_name("fluidanimate").unwrap();
        let mut gen = TraceGen::new(&spec, 8, 11);
        let mut batch = Vec::new();
        for _ in 0..300 {
            batch.clear();
            gen.next_batch(&mut batch);
            for a in &batch {
                sys.access(a, 0);
            }
        }
        assert_eq!(sys.coherence_errors(), 0);
        sys.check_invariants().unwrap();
        assert!(sys.raw_counters().llc_misses > 0);
    }

    #[test]
    fn random_workload_3l_preserves_coherence() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::ThreeLevel);
        let spec = catalog::by_name("ocean_cp").unwrap();
        let mut gen = TraceGen::new(&spec, 8, 13);
        let mut batch = Vec::new();
        for _ in 0..300 {
            batch.clear();
            gen.next_batch(&mut batch);
            for a in &batch {
                sys.access(a, 0);
            }
        }
        assert_eq!(sys.coherence_errors(), 0);
        sys.check_invariants().unwrap();
        assert!(sys.raw_counters().l2_hits > 0);
    }

    #[test]
    fn upgrade_counts_and_messages_flow() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::TwoLevel);
        // Two sharers, then one stores: upgrade, not a miss.
        sys.access(&acc(0, AccessKind::Load, 0x70_0000), 0);
        sys.access(&acc(1, AccessKind::Load, 0x70_0000), 0);
        sys.access(&acc(0, AccessKind::Load, 0x70_0000), 10_000);
        let r = sys.access(&acc(0, AccessKind::Store, 0x70_0000), 20_000);
        assert!(r.l1_hit);
        assert_eq!(sys.raw_counters().upgrades, 1);
        assert!(sys.noc().count(MsgClass::UpgradeReq) == 1);
    }

    #[test]
    fn sram_kb_is_larger_for_3l() {
        let a = Baseline::new(&cfg(), BaselineKind::TwoLevel).sram_kb();
        let b = Baseline::new(&cfg(), BaselineKind::ThreeLevel).sram_kb();
        assert!(b > a + 8.0 * 256.0, "3L adds 8×256 KB of L2");
    }

    #[test]
    fn ifetches_use_l1i() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::TwoLevel);
        sys.access(&acc(0, AccessKind::IFetch, 0x80_0000), 0);
        let r = sys.access(&acc(0, AccessKind::IFetch, 0x80_0000), 10_000);
        assert!(r.l1_hit);
        assert_eq!(sys.raw_counters().l1i_hits, 1);
        assert_eq!(sys.raw_counters().l1i_misses, 1);
        // A data load of the same line misses separately.
        let r2 = sys.access(&acc(0, AccessKind::Load, 0x80_0000), 10_000);
        assert!(!r2.l1_hit);
    }

    #[test]
    fn llc_eviction_back_invalidates_private_copies() {
        // A tiny LLC forces evictions whose inclusive back-invalidations
        // must purge L1 copies and write dirty data to memory.
        let mut c = cfg();
        c.llc = d2m_common::config::CacheGeometry::from_capacity(64 << 10, 4);
        c.ns_slice = d2m_common::config::CacheGeometry::from_capacity(8 << 10, 4);
        let mut sys = Baseline::new(&c, BaselineKind::TwoLevel);
        // Dirty a line, then stream enough lines through its LLC set to
        // force it out.
        sys.access(&acc(0, AccessKind::Store, 0xA0_0000), 0);
        for i in 1..=64u64 {
            // 256 sets in this LLC; stride by one set-cycle of lines.
            sys.access(&acc(1, AccessKind::Load, 0xA0_0000 + i * 256 * 64), 0);
        }
        assert!(sys.raw_counters().back_invalidations > 0);
        // The dirty value must have reached memory: a re-read is coherent.
        sys.access(&acc(2, AccessKind::Load, 0xA0_0000), 1_000_000);
        assert_eq!(sys.coherence_errors(), 0);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn l2_eviction_purges_l1_copy_in_3l() {
        let mut c = cfg();
        c.l2 = d2m_common::config::CacheGeometry::new(4, 2); // tiny L2
        let mut sys = Baseline::new(&c, BaselineKind::ThreeLevel);
        sys.access(&acc(0, AccessKind::Store, 0xB0_0000), 0);
        // Thrash the tiny L2 set (4 sets → lines 4*64 B apart collide).
        for i in 1..=8u64 {
            sys.access(&acc(0, AccessKind::Load, 0xB0_0000 + i * 4 * 64), 0);
        }
        assert!(sys.raw_counters().back_invalidations > 0);
        sys.access(&acc(1, AccessKind::Load, 0xB0_0000), 1_000_000);
        assert_eq!(sys.coherence_errors(), 0);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn false_invalidations_from_stale_sharer_bits() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::TwoLevel);
        // Node 1 reads then silently drops its S copy via L1 conflict
        // evictions; node 0's later store still sends node 1 an Inv.
        sys.access(&acc(0, AccessKind::Load, 0xC0_0000), 0);
        sys.access(&acc(1, AccessKind::Load, 0xC0_0000), 0);
        for i in 1..=10u64 {
            sys.access(&acc(1, AccessKind::Load, 0xC0_0000 + i * 64 * 64), 0);
        }
        let inv_before = sys.raw_counters().invalidations_received;
        sys.access(&acc(0, AccessKind::Store, 0xC0_0000), 100_000);
        assert!(
            sys.raw_counters().invalidations_received > inv_before,
            "stale sharer bits still draw an invalidation"
        );
        assert_eq!(sys.coherence_errors(), 0);
    }

    #[test]
    fn writeback_chain_reaches_memory_through_l2() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::ThreeLevel);
        sys.access(&acc(0, AccessKind::Store, 0xD0_0000), 0);
        // Push it out of L1 (dirty → L2), then read from another node: the
        // freshest copy must be forwarded from node 0's L2.
        for i in 1..=10u64 {
            sys.access(&acc(0, AccessKind::Load, 0xD0_0000 + i * 64 * 64), 0);
        }
        let r = sys.access(&acc(1, AccessKind::Load, 0xD0_0000), 500_000);
        assert!(!r.l1_hit);
        assert_eq!(sys.coherence_errors(), 0);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn tlb_miss_adds_walk_latency() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::TwoLevel);
        let r1 = sys.access(&acc(0, AccessKind::Load, 0xE0_0000), 0);
        // Same line ⇒ same page: the second access hits the TLB and the L1.
        let r2 = sys.access(&acc(0, AccessKind::Load, 0xE0_0000), 1_000_000);
        assert!(r1.latency > r2.latency + sys.cfg_lat_walk() - 1);
    }

    #[test]
    fn counters_snapshot_includes_noc() {
        let mut sys = Baseline::new(&cfg(), BaselineKind::TwoLevel);
        sys.access(&acc(0, AccessKind::Load, 0x90_0000), 0);
        let c = sys.counters();
        assert!(c.get("noc.msg_total") > 0);
        assert_eq!(c.get("accesses"), 1);
    }
}
