//! A set-associative array with explicit way control.
//!
//! This single structure backs every table in the simulator:
//!
//! * **Baseline caches** use keyed lookup ([`SetAssoc::get`]) — the
//!   associative tag search whose energy the baselines pay.
//! * **D2M data arrays** use only direct `(set, way)` addressing
//!   ([`SetAssoc::at`], [`SetAssoc::insert_at`]) — they have no tags, and the
//!   type makes that discipline auditable (the D2M crate never calls `get`).
//! * **Metadata stores** use keyed lookup plus *cost-biased* victim selection
//!   ([`SetAssoc::victim_way_with_cost`]) to implement the paper's
//!   region-aware replacement (prefer evicting regions with few tracked
//!   lines / unset PB bits).
//!
//! Replacement is true LRU per set via a global use-tick, which is
//! deterministic and cheap; a random policy is available through
//! [`SetAssoc::victim_way_random`].
//!
//! Storage is split structure-of-arrays: the per-slot scan record (key +
//! recency tick, 16 bytes) lives apart from the value payload, so tag
//! searches and victim scans stride over a dense array — the software
//! analogue of a hardware tag array sitting next to a data array — instead
//! of skipping over value bytes.

use d2m_common::rng::SimRng;

/// Per-slot scan record. `last_use == 0` means the slot is empty — ticks
/// start at 1, so an occupied slot always has a nonzero tick.
#[derive(Clone, Copy, Debug)]
struct SlotMeta {
    key: u64,
    last_use: u64,
}

const EMPTY: SlotMeta = SlotMeta {
    key: 0,
    last_use: 0,
};

/// A set-associative array mapping `u64` keys to `V` values.
#[derive(Clone, Debug)]
pub struct SetAssoc<V> {
    sets: usize,
    ways: usize,
    /// Scan records, `set * ways + way` indexed.
    meta: Vec<SlotMeta>,
    /// Value payloads, same indexing. `vals[i].is_some()` ⇔
    /// `meta[i].last_use != 0`.
    vals: Vec<Option<V>>,
    tick: u64,
    hashed: bool,
}

impl<V> SetAssoc<V> {
    /// Creates an empty array with plain low-bit set indexing.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self::build(sets, ways, false)
    }

    /// Creates an array whose [`Self::set_index`] XOR-folds the key — the
    /// skewed indexing used by the metadata stores so that regular
    /// region-stride patterns do not collapse onto a few sets.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn with_hashed_index(sets: usize, ways: usize) -> Self {
        Self::build(sets, ways, true)
    }

    fn build(sets: usize, ways: usize, hashed: bool) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        let n = sets * ways;
        let mut vals = Vec::with_capacity(n);
        vals.resize_with(n, || None);
        Self {
            sets,
            ways,
            meta: vec![EMPTY; n],
            vals,
            tick: 0,
            hashed,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Set index for a key: low bits, or an XOR-fold of the whole key for
    /// arrays built with [`Self::with_hashed_index`].
    #[inline]
    pub fn set_index(&self, key: u64) -> usize {
        let k = if self.hashed {
            key ^ (key >> 10) ^ (key >> 21) ^ (key >> 34)
        } else {
            key
        };
        (k as usize) & (self.sets - 1)
    }

    #[inline]
    fn base(&self, set: usize) -> usize {
        debug_assert!(set < self.sets, "set {set} out of range");
        set * self.ways
    }

    #[inline]
    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Finds the way holding `key` in `set`, if present. No LRU update.
    /// A dense scan over the 16-byte records only.
    #[inline]
    pub fn way_of(&self, set: usize, key: u64) -> Option<usize> {
        let b = self.base(set);
        self.meta[b..b + self.ways]
            .iter()
            .position(|m| m.last_use != 0 && m.key == key)
    }

    /// Keyed lookup with LRU touch. Returns the value if present.
    pub fn get(&mut self, set: usize, key: u64) -> Option<&V> {
        let way = self.way_of(set, key)?;
        self.touch(set, way);
        let b = self.base(set);
        self.vals[b + way].as_ref()
    }

    /// Keyed mutable lookup with LRU touch.
    pub fn get_mut(&mut self, set: usize, key: u64) -> Option<&mut V> {
        let way = self.way_of(set, key)?;
        self.touch(set, way);
        let b = self.base(set);
        self.vals[b + way].as_mut()
    }

    /// Keyed lookup without LRU update.
    pub fn peek(&self, set: usize, key: u64) -> Option<&V> {
        let way = self.way_of(set, key)?;
        let b = self.base(set);
        self.vals[b + way].as_ref()
    }

    /// Direct slot read: `(key, value)` at `(set, way)` if occupied.
    pub fn at(&self, set: usize, way: usize) -> Option<(u64, &V)> {
        assert!(way < self.ways, "way {way} out of range");
        let i = self.base(set) + way;
        let key = self.meta[i].key;
        self.vals[i].as_ref().map(|v| (key, v))
    }

    /// Direct mutable slot access (no LRU update; pair with [`Self::touch`]).
    pub fn at_mut(&mut self, set: usize, way: usize) -> Option<(u64, &mut V)> {
        assert!(way < self.ways, "way {way} out of range");
        let i = self.base(set) + way;
        let key = self.meta[i].key;
        self.vals[i].as_mut().map(|v| (key, v))
    }

    /// Marks `(set, way)` most-recently used.
    pub fn touch(&mut self, set: usize, way: usize) {
        let t = self.bump();
        let i = self.base(set) + way;
        let m = &mut self.meta[i];
        if m.last_use != 0 {
            m.last_use = t;
        }
    }

    /// True if `(set, way)` is the most-recently-used valid entry of its set.
    ///
    /// D2M's replication heuristic replicates data read from the MRU position
    /// of a remote NS-LLC slice (§IV-C).
    pub fn is_mru(&self, set: usize, way: usize) -> bool {
        let b = self.base(set);
        let me = self.meta[b + way];
        if me.last_use == 0 {
            return false;
        }
        self.meta[b..b + self.ways]
            .iter()
            .all(|m| m.last_use <= me.last_use)
    }

    /// Inserts at an explicit `(set, way)`, returning any evicted `(key, value)`.
    pub fn insert_at(&mut self, set: usize, way: usize, key: u64, value: V) -> Option<(u64, V)> {
        assert!(way < self.ways, "way {way} out of range");
        let t = self.bump();
        let i = self.base(set) + way;
        let old_key = self.meta[i].key;
        self.meta[i] = SlotMeta { key, last_use: t };
        self.vals[i].replace(value).map(|v| (old_key, v))
    }

    /// Removes and returns the entry at `(set, way)`.
    pub fn remove(&mut self, set: usize, way: usize) -> Option<(u64, V)> {
        assert!(way < self.ways, "way {way} out of range");
        let i = self.base(set) + way;
        let key = self.meta[i].key;
        self.meta[i] = EMPTY;
        self.vals[i].take().map(|v| (key, v))
    }

    /// LRU victim way: the first invalid way if any, otherwise the
    /// least-recently-used way. Scans records only — empty slots (tick 0)
    /// naturally win the minimum, and strict `<` keeps the first one.
    pub fn victim_way(&self, set: usize) -> usize {
        let b = self.base(set);
        let mut victim = 0;
        let mut best = u64::MAX;
        for (w, m) in self.meta[b..b + self.ways].iter().enumerate() {
            if m.last_use < best {
                best = m.last_use;
                victim = w;
            }
        }
        victim
    }

    /// Random victim way among valid entries (invalid ways still win first).
    pub fn victim_way_random(&self, set: usize, rng: &mut SimRng) -> usize {
        let b = self.base(set);
        for (w, m) in self.meta[b..b + self.ways].iter().enumerate() {
            if m.last_use == 0 {
                return w;
            }
        }
        rng.below(self.ways as u64) as usize
    }

    /// Cost-biased victim: picks the valid way minimizing
    /// `(cost(key, value), last_use)`; invalid ways win outright.
    ///
    /// The metadata stores use this to prefer evicting regions with few
    /// tracked cachelines (MD2, paper §II-A) or no presence bits (MD3).
    pub fn victim_way_with_cost<F>(&self, set: usize, cost: F) -> usize
    where
        F: Fn(u64, &V) -> u64,
    {
        let b = self.base(set);
        let mut victim = 0;
        let mut best = (u64::MAX, u64::MAX);
        for (w, m) in self.meta[b..b + self.ways].iter().enumerate() {
            if m.last_use == 0 {
                return w;
            }
            let v = self.vals[b + w].as_ref().expect("meta/vals in sync");
            let c = (cost(m.key, v), m.last_use);
            if c < best {
                best = c;
                victim = w;
            }
        }
        victim
    }

    /// Iterates over all occupied slots as `(set, way, key, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, u64, &V)> {
        self.meta
            .iter()
            .zip(&self.vals)
            .enumerate()
            .filter_map(move |(i, (m, v))| {
                v.as_ref().map(|v| (i / self.ways, i % self.ways, m.key, v))
            })
    }

    /// Iterates over the occupied slots of one set as `(way, key, &value)`.
    pub fn iter_set(&self, set: usize) -> impl Iterator<Item = (usize, u64, &V)> {
        let b = self.base(set);
        self.meta[b..b + self.ways]
            .iter()
            .zip(&self.vals[b..b + self.ways])
            .enumerate()
            .filter_map(|(w, (m, v))| v.as_ref().map(|v| (w, m.key, v)))
    }

    /// Number of occupied slots in a set.
    pub fn set_occupancy(&self, set: usize) -> usize {
        let b = self.base(set);
        self.meta[b..b + self.ways]
            .iter()
            .filter(|m| m.last_use != 0)
            .count()
    }

    /// Total occupied slots.
    pub fn occupancy(&self) -> usize {
        self.meta.iter().filter(|m| m.last_use != 0).count()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        for m in &mut self.meta {
            *m = EMPTY;
        }
        for v in &mut self.vals {
            *v = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(sets: usize, ways: usize, n: u64) -> SetAssoc<u64> {
        let mut c = SetAssoc::new(sets, ways);
        for k in 0..n {
            let set = c.set_index(k);
            let way = c.victim_way(set);
            c.insert_at(set, way, k, k * 10);
        }
        c
    }

    #[test]
    fn insert_then_get() {
        let mut c: SetAssoc<u64> = SetAssoc::new(4, 2);
        let set = c.set_index(5);
        let way = c.victim_way(set);
        assert!(c.insert_at(set, way, 5, 50).is_none());
        assert_eq!(c.get(set, 5), Some(&50));
        assert_eq!(c.peek(set, 5), Some(&50));
        assert_eq!(c.get(set, 9), None);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: SetAssoc<u64> = SetAssoc::new(1, 2);
        c.insert_at(0, 0, 1, 1);
        c.insert_at(0, 1, 2, 2);
        let _ = c.get(0, 1); // key 1 is now MRU, key 2 LRU? no: touching 1 makes 2 LRU
        assert_eq!(c.victim_way(0), 1);
        let _ = c.get(0, 2);
        assert_eq!(c.victim_way(0), 0);
    }

    #[test]
    fn invalid_way_preferred_as_victim() {
        let mut c: SetAssoc<u64> = SetAssoc::new(1, 4);
        c.insert_at(0, 0, 1, 1);
        c.insert_at(0, 2, 3, 3);
        assert_eq!(c.victim_way(0), 1);
    }

    #[test]
    fn cost_biased_victim_prefers_low_cost() {
        let mut c: SetAssoc<u64> = SetAssoc::new(1, 3);
        c.insert_at(0, 0, 1, 100); // high cost
        c.insert_at(0, 1, 2, 1); // low cost
        c.insert_at(0, 2, 3, 100);
        assert_eq!(c.victim_way_with_cost(0, |_, v| *v), 1);
    }

    #[test]
    fn cost_tie_broken_by_lru() {
        let mut c: SetAssoc<u64> = SetAssoc::new(1, 2);
        c.insert_at(0, 0, 1, 5);
        c.insert_at(0, 1, 2, 5);
        c.touch(0, 0); // way 1 becomes LRU
        assert_eq!(c.victim_way_with_cost(0, |_, v| *v), 1);
    }

    #[test]
    fn remove_and_occupancy() {
        let mut c = filled(4, 2, 8);
        assert_eq!(c.occupancy(), 8);
        let (k, v) = c.remove(0, 0).unwrap();
        assert_eq!(v, k * 10);
        assert_eq!(c.occupancy(), 7);
        assert_eq!(c.set_occupancy(0), 1);
    }

    #[test]
    fn removed_slot_is_not_found_by_its_old_key() {
        // A stale key in an emptied record must not produce a phantom hit —
        // occupancy is part of the scan predicate.
        let mut c: SetAssoc<u64> = SetAssoc::new(1, 2);
        c.insert_at(0, 0, 0, 10); // key 0 == the EMPTY sentinel key
        assert_eq!(c.way_of(0, 0), Some(0));
        c.remove(0, 0);
        assert_eq!(c.way_of(0, 0), None);
        assert_eq!(c.at(0, 0), None);
    }

    #[test]
    fn direct_addressing_roundtrip() {
        let mut c: SetAssoc<&'static str> = SetAssoc::new(2, 2);
        c.insert_at(1, 1, 42, "hello");
        assert_eq!(c.at(1, 1), Some((42, &"hello")));
        assert_eq!(c.at(1, 0), None);
        let (k, v) = c.at_mut(1, 1).unwrap();
        assert_eq!(k, 42);
        *v = "world";
        assert_eq!(c.at(1, 1), Some((42, &"world")));
    }

    #[test]
    fn mru_tracking() {
        let mut c: SetAssoc<u64> = SetAssoc::new(1, 3);
        c.insert_at(0, 0, 1, 1);
        c.insert_at(0, 1, 2, 2);
        assert!(c.is_mru(0, 1));
        assert!(!c.is_mru(0, 0));
        c.touch(0, 0);
        assert!(c.is_mru(0, 0));
        assert!(!c.is_mru(0, 2)); // empty slot is never MRU
    }

    #[test]
    fn iter_set_and_iter() {
        let c = filled(4, 2, 8);
        assert_eq!(c.iter().count(), 8);
        assert_eq!(c.iter_set(1).count(), 2);
        for (set, _way, key, _v) in c.iter() {
            assert_eq!(c.set_index(key), set);
        }
    }

    #[test]
    fn eviction_returns_old_entry() {
        let mut c: SetAssoc<u64> = SetAssoc::new(1, 1);
        c.insert_at(0, 0, 1, 10);
        let old = c.insert_at(0, 0, 2, 20);
        assert_eq!(old, Some((1, 10)));
        assert_eq!(c.peek(0, 2), Some(&20));
    }

    #[test]
    fn random_victim_in_range() {
        let mut rng = SimRng::from_label(1, "victim");
        let c = filled(1, 4, 4);
        for _ in 0..100 {
            assert!(c.victim_way_random(0, &mut rng) < 4);
        }
    }

    #[test]
    fn clear_empties() {
        let mut c = filled(4, 2, 8);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.way_of(0, 0), None, "cleared keys must not resolve");
    }

    #[test]
    #[should_panic(expected = "way")]
    fn at_rejects_out_of_range_way() {
        let c: SetAssoc<u64> = SetAssoc::new(2, 2);
        let _ = c.at(0, 2);
    }

    #[test]
    fn hashed_indexing_spreads_regular_strides() {
        // Keys a power-of-two stride apart collapse onto one set with plain
        // indexing but must fan out with the hashed variant.
        let plain: SetAssoc<u64> = SetAssoc::new(64, 4);
        let hashed: SetAssoc<u64> = SetAssoc::with_hashed_index(64, 4);
        let keys: Vec<u64> = (0..256).map(|i| i * 64).collect();
        let plain_sets: std::collections::HashSet<_> =
            keys.iter().map(|k| plain.set_index(*k)).collect();
        let hashed_sets: std::collections::HashSet<_> =
            keys.iter().map(|k| hashed.set_index(*k)).collect();
        assert_eq!(plain_sets.len(), 1, "plain indexing collapses the stride");
        assert!(
            hashed_sets.len() >= 8,
            "hashed indexing spreads it: {}",
            hashed_sets.len()
        );
    }

    #[test]
    fn hashed_indexing_is_consistent_for_lookup() {
        let mut c: SetAssoc<u64> = SetAssoc::with_hashed_index(64, 4);
        for k in [3u64, 999, 123_456_789] {
            let set = c.set_index(k);
            let way = c.victim_way(set);
            c.insert_at(set, way, k, k * 2);
            assert_eq!(c.peek(c.set_index(k), k), Some(&(k * 2)));
        }
    }
}
