//! A banked set-associative arena: every bank of a replicated structure
//! (one MD1 per node, one L1 per node, one LLC slice per node, ...) lives
//! in ONE contiguous allocation, addressed by `(bank, set, way)` arithmetic.
//!
//! Semantically each bank is an independent [`crate::SetAssoc`]: it has its
//! own LRU use-tick and the same hashed/plain set indexing, so replacing a
//! `Vec<SetAssoc<V>>` (or per-node struct fields) with one [`Banked`] arena
//! is behavior-preserving down to the exact victim choices — simulation
//! output stays byte-identical. What changes is the memory layout: the hot
//! path walks a single flat slice instead of chasing `Vec<Vec<...>>`
//! indirections, mirroring how D2M's own LI scheme keeps metadata lookups
//! pointer-free in hardware.
//!
//! Storage is split structure-of-arrays: the per-slot scan record (key +
//! recency tick, 16 bytes) lives apart from the value payload, so the
//! associative scans (`way_of`, victim selection, `is_mru`) stride over a
//! dense tag array — the software analogue of a hardware tag array sitting
//! next to a data array — instead of skipping over value bytes.

use d2m_common::rng::SimRng;

/// Per-slot scan record. `last_use == 0` means the slot is empty — ticks
/// start at 1, so an occupied slot always has a nonzero tick.
#[derive(Clone, Copy, Debug)]
struct SlotMeta {
    key: u64,
    last_use: u64,
}

const EMPTY: SlotMeta = SlotMeta {
    key: 0,
    last_use: 0,
};

/// A fixed geometry of `banks × sets × ways` slots in one contiguous arena,
/// mapping `u64` keys to `V` values within each `(bank, set)`.
#[derive(Clone, Debug)]
pub struct Banked<V> {
    banks: usize,
    sets: usize,
    ways: usize,
    /// Scan records, `(bank * sets + set) * ways + way` indexed.
    meta: Vec<SlotMeta>,
    /// Value payloads, same indexing. `vals[i].is_some()` ⇔
    /// `meta[i].last_use != 0`.
    vals: Vec<Option<V>>,
    /// One LRU clock per bank — identical tick sequences to per-bank
    /// `SetAssoc` instances, which is what keeps replacement byte-identical.
    ticks: Vec<u64>,
    hashed: bool,
}

impl<V> Banked<V> {
    /// Creates an empty arena with plain low-bit set indexing.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, or `banks`/`ways` is zero.
    pub fn new(banks: usize, sets: usize, ways: usize) -> Self {
        Self::build(banks, sets, ways, false)
    }

    /// Creates an arena whose [`Self::set_index`] XOR-folds the key (the
    /// skewed indexing used by the metadata stores).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, or `banks`/`ways` is zero.
    pub fn with_hashed_index(banks: usize, sets: usize, ways: usize) -> Self {
        Self::build(banks, sets, ways, true)
    }

    fn build(banks: usize, sets: usize, ways: usize, hashed: bool) -> Self {
        assert!(banks > 0, "banks must be nonzero");
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        let n = banks * sets * ways;
        let mut vals = Vec::with_capacity(n);
        vals.resize_with(n, || None);
        Self {
            banks,
            sets,
            ways,
            meta: vec![EMPTY; n],
            vals,
            ticks: vec![0; banks],
            hashed,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Number of sets per bank.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Set index for a key: low bits, or an XOR-fold of the whole key for
    /// arenas built with [`Self::with_hashed_index`]. Identical to
    /// [`crate::SetAssoc::set_index`].
    #[inline]
    pub fn set_index(&self, key: u64) -> usize {
        let k = if self.hashed {
            key ^ (key >> 10) ^ (key >> 21) ^ (key >> 34)
        } else {
            key
        };
        (k as usize) & (self.sets - 1)
    }

    /// Flat offset of `(bank, set)`'s first way — the whole point of the
    /// arena: one multiply-add instead of two pointer dereferences.
    #[inline]
    fn base(&self, bank: usize, set: usize) -> usize {
        debug_assert!(bank < self.banks, "bank {bank} out of range");
        debug_assert!(set < self.sets, "set {set} out of range");
        (bank * self.sets + set) * self.ways
    }

    #[inline]
    fn bump(&mut self, bank: usize) -> u64 {
        self.ticks[bank] += 1;
        self.ticks[bank]
    }

    /// Finds the way holding `key` in `(bank, set)`, if present. No LRU
    /// update. A dense scan over the 16-byte records only.
    #[inline]
    pub fn way_of(&self, bank: usize, set: usize, key: u64) -> Option<usize> {
        let b = self.base(bank, set);
        self.meta[b..b + self.ways]
            .iter()
            .position(|m| m.last_use != 0 && m.key == key)
    }

    /// Keyed lookup with LRU touch. Returns the value if present.
    pub fn get(&mut self, bank: usize, set: usize, key: u64) -> Option<&V> {
        let way = self.way_of(bank, set, key)?;
        self.touch(bank, set, way);
        let b = self.base(bank, set);
        self.vals[b + way].as_ref()
    }

    /// Keyed mutable lookup with LRU touch.
    pub fn get_mut(&mut self, bank: usize, set: usize, key: u64) -> Option<&mut V> {
        let way = self.way_of(bank, set, key)?;
        self.touch(bank, set, way);
        let b = self.base(bank, set);
        self.vals[b + way].as_mut()
    }

    /// Keyed lookup without LRU update.
    pub fn peek(&self, bank: usize, set: usize, key: u64) -> Option<&V> {
        let way = self.way_of(bank, set, key)?;
        let b = self.base(bank, set);
        self.vals[b + way].as_ref()
    }

    /// Direct slot read: `(key, value)` at `(bank, set, way)` if occupied.
    #[inline]
    pub fn at(&self, bank: usize, set: usize, way: usize) -> Option<(u64, &V)> {
        assert!(way < self.ways, "way {way} out of range");
        let i = self.base(bank, set) + way;
        let key = self.meta[i].key;
        self.vals[i].as_ref().map(|v| (key, v))
    }

    /// Direct mutable slot access (no LRU update; pair with [`Self::touch`]).
    #[inline]
    pub fn at_mut(&mut self, bank: usize, set: usize, way: usize) -> Option<(u64, &mut V)> {
        assert!(way < self.ways, "way {way} out of range");
        let i = self.base(bank, set) + way;
        let key = self.meta[i].key;
        self.vals[i].as_mut().map(|v| (key, v))
    }

    /// Marks `(bank, set, way)` most-recently used.
    pub fn touch(&mut self, bank: usize, set: usize, way: usize) {
        let t = self.bump(bank);
        let i = self.base(bank, set) + way;
        let m = &mut self.meta[i];
        if m.last_use != 0 {
            m.last_use = t;
        }
    }

    /// True if `(bank, set, way)` is the most-recently-used valid entry of
    /// its set.
    pub fn is_mru(&self, bank: usize, set: usize, way: usize) -> bool {
        let b = self.base(bank, set);
        let me = self.meta[b + way];
        if me.last_use == 0 {
            return false;
        }
        self.meta[b..b + self.ways]
            .iter()
            .all(|m| m.last_use <= me.last_use)
    }

    /// Inserts at an explicit `(bank, set, way)`, returning any evicted
    /// `(key, value)`.
    pub fn insert_at(
        &mut self,
        bank: usize,
        set: usize,
        way: usize,
        key: u64,
        value: V,
    ) -> Option<(u64, V)> {
        assert!(way < self.ways, "way {way} out of range");
        let t = self.bump(bank);
        let i = self.base(bank, set) + way;
        let old_key = self.meta[i].key;
        self.meta[i] = SlotMeta { key, last_use: t };
        self.vals[i].replace(value).map(|v| (old_key, v))
    }

    /// Removes and returns the entry at `(bank, set, way)`.
    pub fn remove(&mut self, bank: usize, set: usize, way: usize) -> Option<(u64, V)> {
        assert!(way < self.ways, "way {way} out of range");
        let i = self.base(bank, set) + way;
        let key = self.meta[i].key;
        self.meta[i] = EMPTY;
        self.vals[i].take().map(|v| (key, v))
    }

    /// LRU victim way: the first invalid way if any, otherwise the
    /// least-recently-used way. Scans records only — empty slots (tick 0)
    /// naturally win the minimum.
    pub fn victim_way(&self, bank: usize, set: usize) -> usize {
        let b = self.base(bank, set);
        let mut victim = 0;
        let mut best = u64::MAX;
        for (w, m) in self.meta[b..b + self.ways].iter().enumerate() {
            if m.last_use < best {
                best = m.last_use;
                victim = w;
            }
        }
        victim
    }

    /// Random victim way among valid entries (invalid ways still win first).
    pub fn victim_way_random(&self, bank: usize, set: usize, rng: &mut SimRng) -> usize {
        let b = self.base(bank, set);
        for (w, m) in self.meta[b..b + self.ways].iter().enumerate() {
            if m.last_use == 0 {
                return w;
            }
        }
        rng.below(self.ways as u64) as usize
    }

    /// Cost-biased victim: picks the valid way minimizing
    /// `(cost(key, value), last_use)`; invalid ways win outright.
    pub fn victim_way_with_cost<F>(&self, bank: usize, set: usize, cost: F) -> usize
    where
        F: Fn(u64, &V) -> u64,
    {
        let b = self.base(bank, set);
        let mut victim = 0;
        let mut best = (u64::MAX, u64::MAX);
        for (w, m) in self.meta[b..b + self.ways].iter().enumerate() {
            if m.last_use == 0 {
                return w;
            }
            let v = self.vals[b + w].as_ref().expect("meta/vals in sync");
            let c = (cost(m.key, v), m.last_use);
            if c < best {
                best = c;
                victim = w;
            }
        }
        victim
    }

    /// Iterates over the occupied slots of one bank as
    /// `(set, way, key, &value)`.
    pub fn iter_bank(&self, bank: usize) -> impl Iterator<Item = (usize, usize, u64, &V)> {
        let b = self.base(bank, 0);
        let n = self.sets * self.ways;
        self.meta[b..b + n]
            .iter()
            .zip(&self.vals[b..b + n])
            .enumerate()
            .filter_map(move |(i, (m, v))| {
                v.as_ref().map(|v| (i / self.ways, i % self.ways, m.key, v))
            })
    }

    /// Iterates over the occupied slots of one `(bank, set)` as
    /// `(way, key, &value)`.
    pub fn iter_set(&self, bank: usize, set: usize) -> impl Iterator<Item = (usize, u64, &V)> {
        let b = self.base(bank, set);
        self.meta[b..b + self.ways]
            .iter()
            .zip(&self.vals[b..b + self.ways])
            .enumerate()
            .filter_map(|(w, (m, v))| v.as_ref().map(|v| (w, m.key, v)))
    }

    /// Number of occupied slots in `(bank, set)`.
    pub fn set_occupancy(&self, bank: usize, set: usize) -> usize {
        let b = self.base(bank, set);
        self.meta[b..b + self.ways]
            .iter()
            .filter(|m| m.last_use != 0)
            .count()
    }

    /// Total occupied slots across all banks.
    pub fn occupancy(&self) -> usize {
        self.meta.iter().filter(|m| m.last_use != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SetAssoc;

    /// The load-bearing property: one `Banked` arena makes exactly the same
    /// hit/miss/victim decisions as independent per-bank `SetAssoc`s under
    /// an interleaved access stream.
    #[test]
    fn banked_matches_independent_set_assocs() {
        let banks = 4;
        let mut arena: Banked<u64> = Banked::with_hashed_index(banks, 8, 2);
        let mut split: Vec<SetAssoc<u64>> = (0..banks)
            .map(|_| SetAssoc::with_hashed_index(8, 2))
            .collect();
        let mut rng = SimRng::from_label(7, "banked-equiv");
        for i in 0..4000u64 {
            let bank = rng.below(banks as u64) as usize;
            let key = rng.below(200);
            let set = arena.set_index(key);
            assert_eq!(set, split[bank].set_index(key));
            match rng.below(3) {
                0 => {
                    let va = arena.victim_way(bank, set);
                    let vs = split[bank].victim_way(set);
                    assert_eq!(va, vs, "victim diverged at step {i}");
                    let ea = arena.insert_at(bank, set, va, key, i);
                    let es = split[bank].insert_at(set, vs, key, i);
                    assert_eq!(ea, es);
                }
                1 => {
                    let wa = arena.way_of(bank, set, key);
                    let ws = split[bank].way_of(set, key);
                    assert_eq!(wa, ws);
                    if let Some(w) = wa {
                        arena.touch(bank, set, w);
                        split[bank].touch(set, w);
                        assert_eq!(arena.is_mru(bank, set, w), split[bank].is_mru(set, w));
                    }
                }
                _ => {
                    let va = arena.victim_way_with_cost(bank, set, |_, v| *v % 5);
                    let vs = split[bank].victim_way_with_cost(set, |_, v| *v % 5);
                    assert_eq!(va, vs, "cost victim diverged at step {i}");
                }
            }
        }
        for bank in 0..banks {
            let a: Vec<_> = arena
                .iter_bank(bank)
                .map(|(s, w, k, v)| (s, w, k, *v))
                .collect();
            let s: Vec<_> = split[bank]
                .iter()
                .map(|(s, w, k, v)| (s, w, k, *v))
                .collect();
            assert_eq!(a, s);
        }
    }

    #[test]
    fn banks_have_independent_lru_clocks() {
        let mut c: Banked<u64> = Banked::new(2, 1, 2);
        c.insert_at(0, 0, 0, 1, 1);
        c.insert_at(0, 0, 1, 2, 2);
        // Bank 1 activity must not disturb bank 0's recency order.
        for i in 0..10 {
            c.insert_at(1, 0, (i % 2) as usize, 50 + i, i);
        }
        c.touch(0, 0, 0);
        assert_eq!(c.victim_way(0, 0), 1);
        assert!(c.is_mru(0, 0, 0));
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut c: Banked<&'static str> = Banked::new(2, 2, 2);
        c.insert_at(1, 1, 1, 42, "hello");
        assert_eq!(c.at(1, 1, 1), Some((42, &"hello")));
        assert_eq!(c.at(1, 1, 0), None);
        assert_eq!(c.at(0, 1, 1), None, "other bank is untouched");
        assert_eq!(c.peek(1, 1, 42), Some(&"hello"));
        assert_eq!(c.get(1, 1, 42), Some(&"hello"));
        *c.get_mut(1, 1, 42).unwrap() = "world";
        assert_eq!(c.remove(1, 1, 1), Some((42, "world")));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn removed_slot_is_not_found_by_its_old_key() {
        // A stale key in an emptied record must not produce a phantom hit —
        // occupancy is part of the scan predicate.
        let mut c: Banked<u64> = Banked::new(1, 1, 2);
        c.insert_at(0, 0, 0, 0, 10); // key 0 == the EMPTY sentinel key
        assert_eq!(c.way_of(0, 0, 0), Some(0));
        c.remove(0, 0, 0);
        assert_eq!(c.way_of(0, 0, 0), None);
        assert_eq!(c.at(0, 0, 0), None);
    }

    #[test]
    fn iter_set_and_occupancy_scope_to_bank() {
        let mut c: Banked<u64> = Banked::new(3, 2, 2);
        c.insert_at(2, 0, 0, 1, 10);
        c.insert_at(2, 0, 1, 2, 20);
        c.insert_at(0, 0, 0, 3, 30);
        assert_eq!(c.set_occupancy(2, 0), 2);
        assert_eq!(c.set_occupancy(1, 0), 0);
        assert_eq!(c.iter_set(2, 0).count(), 2);
        assert_eq!(c.iter_bank(2).count(), 2);
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn random_victim_prefers_invalid_ways() {
        let mut rng = SimRng::from_label(1, "banked-victim");
        let mut c: Banked<u64> = Banked::new(1, 1, 4);
        c.insert_at(0, 0, 0, 1, 1);
        assert_eq!(c.victim_way_random(0, 0, &mut rng), 1);
        for w in 1..4 {
            c.insert_at(0, 0, w, w as u64 + 1, 0);
        }
        for _ in 0..50 {
            assert!(c.victim_way_random(0, 0, &mut rng) < 4);
        }
    }

    #[test]
    #[should_panic(expected = "way")]
    fn at_rejects_out_of_range_way() {
        let c: Banked<u64> = Banked::new(1, 2, 2);
        let _ = c.at(0, 0, 2);
    }
}
