//! A banked set-associative arena: every bank of a replicated structure
//! (one MD1 per node, one L1 per node, one LLC slice per node, ...) lives
//! in ONE contiguous allocation, addressed by `(bank, set, way)` arithmetic.
//!
//! Semantically each bank is an independent [`crate::SetAssoc`]: it has its
//! own LRU use-tick and the same hashed/plain set indexing, so replacing a
//! `Vec<SetAssoc<V>>` (or per-node struct fields) with one [`Banked`] arena
//! is behavior-preserving down to the exact victim choices — simulation
//! output stays byte-identical. What changes is the memory layout: the hot
//! path walks a single flat slice instead of chasing `Vec<Vec<...>>`
//! indirections, mirroring how D2M's own LI scheme keeps metadata lookups
//! pointer-free in hardware.

use d2m_common::rng::SimRng;

#[derive(Clone, Debug)]
struct Slot<V> {
    key: u64,
    last_use: u64,
    value: V,
}

/// A fixed geometry of `banks × sets × ways` slots in one contiguous arena,
/// mapping `u64` keys to `V` values within each `(bank, set)`.
#[derive(Clone, Debug)]
pub struct Banked<V> {
    banks: usize,
    sets: usize,
    ways: usize,
    slots: Vec<Option<Slot<V>>>,
    /// One LRU clock per bank — identical tick sequences to per-bank
    /// `SetAssoc` instances, which is what keeps replacement byte-identical.
    ticks: Vec<u64>,
    hashed: bool,
}

impl<V> Banked<V> {
    /// Creates an empty arena with plain low-bit set indexing.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, or `banks`/`ways` is zero.
    pub fn new(banks: usize, sets: usize, ways: usize) -> Self {
        Self::build(banks, sets, ways, false)
    }

    /// Creates an arena whose [`Self::set_index`] XOR-folds the key (the
    /// skewed indexing used by the metadata stores).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, or `banks`/`ways` is zero.
    pub fn with_hashed_index(banks: usize, sets: usize, ways: usize) -> Self {
        Self::build(banks, sets, ways, true)
    }

    fn build(banks: usize, sets: usize, ways: usize, hashed: bool) -> Self {
        assert!(banks > 0, "banks must be nonzero");
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        let mut slots = Vec::with_capacity(banks * sets * ways);
        slots.resize_with(banks * sets * ways, || None);
        Self {
            banks,
            sets,
            ways,
            slots,
            ticks: vec![0; banks],
            hashed,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Number of sets per bank.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Set index for a key: low bits, or an XOR-fold of the whole key for
    /// arenas built with [`Self::with_hashed_index`]. Identical to
    /// [`crate::SetAssoc::set_index`].
    #[inline]
    pub fn set_index(&self, key: u64) -> usize {
        let k = if self.hashed {
            key ^ (key >> 10) ^ (key >> 21) ^ (key >> 34)
        } else {
            key
        };
        (k as usize) & (self.sets - 1)
    }

    /// Flat offset of `(bank, set)`'s first way — the whole point of the
    /// arena: one multiply-add instead of two pointer dereferences.
    #[inline]
    fn base(&self, bank: usize, set: usize) -> usize {
        debug_assert!(bank < self.banks, "bank {bank} out of range");
        debug_assert!(set < self.sets, "set {set} out of range");
        (bank * self.sets + set) * self.ways
    }

    #[inline]
    fn bump(&mut self, bank: usize) -> u64 {
        self.ticks[bank] += 1;
        self.ticks[bank]
    }

    /// Finds the way holding `key` in `(bank, set)`, if present. No LRU
    /// update.
    pub fn way_of(&self, bank: usize, set: usize, key: u64) -> Option<usize> {
        let b = self.base(bank, set);
        self.slots[b..b + self.ways]
            .iter()
            .position(|s| s.as_ref().is_some_and(|s| s.key == key))
    }

    /// Keyed lookup with LRU touch. Returns the value if present.
    pub fn get(&mut self, bank: usize, set: usize, key: u64) -> Option<&V> {
        let way = self.way_of(bank, set, key)?;
        self.touch(bank, set, way);
        let b = self.base(bank, set);
        self.slots[b + way].as_ref().map(|s| &s.value)
    }

    /// Keyed mutable lookup with LRU touch.
    pub fn get_mut(&mut self, bank: usize, set: usize, key: u64) -> Option<&mut V> {
        let way = self.way_of(bank, set, key)?;
        self.touch(bank, set, way);
        let b = self.base(bank, set);
        self.slots[b + way].as_mut().map(|s| &mut s.value)
    }

    /// Keyed lookup without LRU update.
    pub fn peek(&self, bank: usize, set: usize, key: u64) -> Option<&V> {
        let way = self.way_of(bank, set, key)?;
        let b = self.base(bank, set);
        self.slots[b + way].as_ref().map(|s| &s.value)
    }

    /// Direct slot read: `(key, value)` at `(bank, set, way)` if occupied.
    pub fn at(&self, bank: usize, set: usize, way: usize) -> Option<(u64, &V)> {
        assert!(way < self.ways, "way {way} out of range");
        let b = self.base(bank, set);
        self.slots[b + way].as_ref().map(|s| (s.key, &s.value))
    }

    /// Direct mutable slot access (no LRU update; pair with [`Self::touch`]).
    pub fn at_mut(&mut self, bank: usize, set: usize, way: usize) -> Option<(u64, &mut V)> {
        assert!(way < self.ways, "way {way} out of range");
        let b = self.base(bank, set);
        self.slots[b + way].as_mut().map(|s| (s.key, &mut s.value))
    }

    /// Marks `(bank, set, way)` most-recently used.
    pub fn touch(&mut self, bank: usize, set: usize, way: usize) {
        let t = self.bump(bank);
        let b = self.base(bank, set);
        if let Some(s) = self.slots[b + way].as_mut() {
            s.last_use = t;
        }
    }

    /// True if `(bank, set, way)` is the most-recently-used valid entry of
    /// its set.
    pub fn is_mru(&self, bank: usize, set: usize, way: usize) -> bool {
        let b = self.base(bank, set);
        let Some(me) = self.slots[b + way].as_ref() else {
            return false;
        };
        self.slots[b..b + self.ways]
            .iter()
            .flatten()
            .all(|s| s.last_use <= me.last_use)
    }

    /// Inserts at an explicit `(bank, set, way)`, returning any evicted
    /// `(key, value)`.
    pub fn insert_at(
        &mut self,
        bank: usize,
        set: usize,
        way: usize,
        key: u64,
        value: V,
    ) -> Option<(u64, V)> {
        assert!(way < self.ways, "way {way} out of range");
        let t = self.bump(bank);
        let b = self.base(bank, set);
        let old = self.slots[b + way].replace(Slot {
            key,
            last_use: t,
            value,
        });
        old.map(|s| (s.key, s.value))
    }

    /// Removes and returns the entry at `(bank, set, way)`.
    pub fn remove(&mut self, bank: usize, set: usize, way: usize) -> Option<(u64, V)> {
        assert!(way < self.ways, "way {way} out of range");
        let b = self.base(bank, set);
        self.slots[b + way].take().map(|s| (s.key, s.value))
    }

    /// LRU victim way: the first invalid way if any, otherwise the
    /// least-recently-used way.
    pub fn victim_way(&self, bank: usize, set: usize) -> usize {
        let b = self.base(bank, set);
        let mut victim = 0;
        let mut best = u64::MAX;
        for (w, slot) in self.slots[b..b + self.ways].iter().enumerate() {
            match slot {
                None => return w,
                Some(s) if s.last_use < best => {
                    best = s.last_use;
                    victim = w;
                }
                _ => {}
            }
        }
        victim
    }

    /// Random victim way among valid entries (invalid ways still win first).
    pub fn victim_way_random(&self, bank: usize, set: usize, rng: &mut SimRng) -> usize {
        let b = self.base(bank, set);
        for (w, slot) in self.slots[b..b + self.ways].iter().enumerate() {
            if slot.is_none() {
                return w;
            }
        }
        rng.below(self.ways as u64) as usize
    }

    /// Cost-biased victim: picks the valid way minimizing
    /// `(cost(key, value), last_use)`; invalid ways win outright.
    pub fn victim_way_with_cost<F>(&self, bank: usize, set: usize, cost: F) -> usize
    where
        F: Fn(u64, &V) -> u64,
    {
        let b = self.base(bank, set);
        let mut victim = 0;
        let mut best = (u64::MAX, u64::MAX);
        for (w, slot) in self.slots[b..b + self.ways].iter().enumerate() {
            match slot {
                None => return w,
                Some(s) => {
                    let c = (cost(s.key, &s.value), s.last_use);
                    if c < best {
                        best = c;
                        victim = w;
                    }
                }
            }
        }
        victim
    }

    /// Iterates over the occupied slots of one bank as
    /// `(set, way, key, &value)`.
    pub fn iter_bank(&self, bank: usize) -> impl Iterator<Item = (usize, usize, u64, &V)> {
        let b = self.base(bank, 0);
        self.slots[b..b + self.sets * self.ways]
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| {
                s.as_ref()
                    .map(|s| (i / self.ways, i % self.ways, s.key, &s.value))
            })
    }

    /// Iterates over the occupied slots of one `(bank, set)` as
    /// `(way, key, &value)`.
    pub fn iter_set(&self, bank: usize, set: usize) -> impl Iterator<Item = (usize, u64, &V)> {
        let b = self.base(bank, set);
        self.slots[b..b + self.ways]
            .iter()
            .enumerate()
            .filter_map(|(w, s)| s.as_ref().map(|s| (w, s.key, &s.value)))
    }

    /// Number of occupied slots in `(bank, set)`.
    pub fn set_occupancy(&self, bank: usize, set: usize) -> usize {
        let b = self.base(bank, set);
        self.slots[b..b + self.ways]
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// Total occupied slots across all banks.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SetAssoc;

    /// The load-bearing property: one `Banked` arena makes exactly the same
    /// hit/miss/victim decisions as independent per-bank `SetAssoc`s under
    /// an interleaved access stream.
    #[test]
    fn banked_matches_independent_set_assocs() {
        let banks = 4;
        let mut arena: Banked<u64> = Banked::with_hashed_index(banks, 8, 2);
        let mut split: Vec<SetAssoc<u64>> = (0..banks)
            .map(|_| SetAssoc::with_hashed_index(8, 2))
            .collect();
        let mut rng = SimRng::from_label(7, "banked-equiv");
        for i in 0..4000u64 {
            let bank = rng.below(banks as u64) as usize;
            let key = rng.below(200);
            let set = arena.set_index(key);
            assert_eq!(set, split[bank].set_index(key));
            match rng.below(3) {
                0 => {
                    let va = arena.victim_way(bank, set);
                    let vs = split[bank].victim_way(set);
                    assert_eq!(va, vs, "victim diverged at step {i}");
                    let ea = arena.insert_at(bank, set, va, key, i);
                    let es = split[bank].insert_at(set, vs, key, i);
                    assert_eq!(ea, es);
                }
                1 => {
                    let wa = arena.way_of(bank, set, key);
                    let ws = split[bank].way_of(set, key);
                    assert_eq!(wa, ws);
                    if let Some(w) = wa {
                        arena.touch(bank, set, w);
                        split[bank].touch(set, w);
                        assert_eq!(arena.is_mru(bank, set, w), split[bank].is_mru(set, w));
                    }
                }
                _ => {
                    let va = arena.victim_way_with_cost(bank, set, |_, v| *v % 5);
                    let vs = split[bank].victim_way_with_cost(set, |_, v| *v % 5);
                    assert_eq!(va, vs, "cost victim diverged at step {i}");
                }
            }
        }
        for bank in 0..banks {
            let a: Vec<_> = arena
                .iter_bank(bank)
                .map(|(s, w, k, v)| (s, w, k, *v))
                .collect();
            let s: Vec<_> = split[bank]
                .iter()
                .map(|(s, w, k, v)| (s, w, k, *v))
                .collect();
            assert_eq!(a, s);
        }
    }

    #[test]
    fn banks_have_independent_lru_clocks() {
        let mut c: Banked<u64> = Banked::new(2, 1, 2);
        c.insert_at(0, 0, 0, 1, 1);
        c.insert_at(0, 0, 1, 2, 2);
        // Bank 1 activity must not disturb bank 0's recency order.
        for i in 0..10 {
            c.insert_at(1, 0, (i % 2) as usize, 50 + i, i);
        }
        c.touch(0, 0, 0);
        assert_eq!(c.victim_way(0, 0), 1);
        assert!(c.is_mru(0, 0, 0));
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut c: Banked<&'static str> = Banked::new(2, 2, 2);
        c.insert_at(1, 1, 1, 42, "hello");
        assert_eq!(c.at(1, 1, 1), Some((42, &"hello")));
        assert_eq!(c.at(1, 1, 0), None);
        assert_eq!(c.at(0, 1, 1), None, "other bank is untouched");
        assert_eq!(c.peek(1, 1, 42), Some(&"hello"));
        assert_eq!(c.get(1, 1, 42), Some(&"hello"));
        *c.get_mut(1, 1, 42).unwrap() = "world";
        assert_eq!(c.remove(1, 1, 1), Some((42, "world")));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn iter_set_and_occupancy_scope_to_bank() {
        let mut c: Banked<u64> = Banked::new(3, 2, 2);
        c.insert_at(2, 0, 0, 1, 10);
        c.insert_at(2, 0, 1, 2, 20);
        c.insert_at(0, 0, 0, 3, 30);
        assert_eq!(c.set_occupancy(2, 0), 2);
        assert_eq!(c.set_occupancy(1, 0), 0);
        assert_eq!(c.iter_set(2, 0).count(), 2);
        assert_eq!(c.iter_bank(2).count(), 2);
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn random_victim_prefers_invalid_ways() {
        let mut rng = SimRng::from_label(1, "banked-victim");
        let mut c: Banked<u64> = Banked::new(1, 1, 4);
        c.insert_at(0, 0, 0, 1, 1);
        assert_eq!(c.victim_way_random(0, 0, &mut rng), 1);
        for w in 1..4 {
            c.insert_at(0, 0, w, w as u64 + 1, 0);
        }
        for _ in 0..50 {
            assert!(c.victim_way_random(0, 0, &mut rng) < 4);
        }
    }

    #[test]
    #[should_panic(expected = "way")]
    fn at_rejects_out_of_range_way() {
        let c: Banked<u64> = Banked::new(1, 2, 2);
        let _ = c.at(0, 0, 2);
    }
}
