//! TLB model.
//!
//! The baselines consult a TLB1 before every L1 access; D2M replaces TLB1
//! with the virtually-tagged MD1 and only needs a TLB2 on the MD2 path
//! (paper §II-A). Translation itself is the deterministic bijection from
//! [`d2m_common::addr::translate`]; the TLB only models reach, so the
//! hierarchy sees realistic hit/miss behaviour and energy.

use d2m_common::addr::{translate, Asid, PAddr, VAddr};

use crate::set_assoc::SetAssoc;

/// Small set-associative TLB keyed by `(asid, virtual page)`.
#[derive(Clone, Debug)]
pub struct Tlb {
    arr: SetAssoc<()>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with the given geometry.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            arr: SetAssoc::new(sets, ways),
            hits: 0,
            misses: 0,
        }
    }

    fn key(asid: Asid, va: VAddr) -> u64 {
        (va.vpage() << 16) ^ asid.0 as u64
    }

    /// Translates `va`, recording a hit or a miss (with fill).
    ///
    /// Returns `(paddr, hit)`.
    pub fn access(&mut self, asid: Asid, va: VAddr) -> (PAddr, bool) {
        let key = Self::key(asid, va);
        let set = self.arr.set_index(key);
        let hit = self.arr.get(set, key).is_some();
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            let way = self.arr.victim_way(set);
            self.arr.insert_at(set, way, key, ());
        }
        (translate(asid, va), hit)
    }

    /// Translation without touching the TLB state (for metadata paths that
    /// bypass the TLB entirely).
    pub fn translate_only(asid: Asid, va: VAddr) -> PAddr {
        translate(asid, va)
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accesses recorded so far.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut tlb = Tlb::new(16, 4);
        let va = VAddr::new(0x1234_5000);
        let (p1, h1) = tlb.access(Asid(0), va);
        assert!(!h1);
        let (p2, h2) = tlb.access(Asid(0), VAddr::new(0x1234_5040));
        assert!(h2, "same page must hit");
        assert_eq!(p1.raw() >> 12, p2.raw() >> 12);
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn distinct_asids_do_not_alias() {
        let mut tlb = Tlb::new(16, 4);
        let va = VAddr::new(0x9000);
        let _ = tlb.access(Asid(1), va);
        let (_, h) = tlb.access(Asid(2), va);
        assert!(!h, "different ASID must miss");
    }

    #[test]
    fn capacity_misses_occur() {
        let mut tlb = Tlb::new(1, 2);
        for page in 0..4u64 {
            let _ = tlb.access(Asid(0), VAddr::new(page << 12));
        }
        // Revisit the first page: evicted by now.
        let (_, h) = tlb.access(Asid(0), VAddr::new(0));
        assert!(!h);
    }

    #[test]
    fn translate_only_matches_access() {
        let mut tlb = Tlb::new(4, 2);
        let va = VAddr::new(0xabc_d123);
        let (p, _) = tlb.access(Asid(5), va);
        assert_eq!(p, Tlb::translate_only(Asid(5), va));
    }
}
