//! Index scrambling for the dynamic-indexing optimization (paper §IV-D).
//!
//! D2M stores a few random *scramble bits* with each region's metadata when
//! the region is loaded into MD3 and XORs them into the data caches' set
//! index. Regular (strided) address patterns that would pile onto a few sets
//! are thereby spread uniformly, eliminating conflict misses for malicious
//! patterns such as LU's power-of-two strides — without any change to the
//! data arrays themselves, because the metadata is the only thing that ever
//! locates data.

/// Number of scramble bits stored per region (enough to cover the largest
/// set-index width we use).
pub const SCRAMBLE_BITS: u32 = 16;

/// Derives a region's scramble value from a per-run salt.
///
/// In hardware this is a random value latched at MD3 fill time; here it is a
/// deterministic hash of `(region, salt)` so simulations are reproducible
/// while remaining uncorrelated with the address bits that form the index.
#[inline]
pub fn region_scramble(region: u64, salt: u64) -> u16 {
    let mut x = region ^ salt.rotate_left(17) ^ 0xd6e8_feb8_6659_fd93;
    x ^= x >> 32;
    x = x.wrapping_mul(0xd6e8_feb8_6659_fd93);
    x ^= x >> 29;
    (x & 0xffff) as u16
}

/// Applies a scramble to a set index.
///
/// `sets` must be a power of two; only the low `log2(sets)` scramble bits
/// participate so the result stays a valid index.
#[inline]
pub fn scrambled_index(base_index: usize, scramble: u16, sets: usize) -> usize {
    debug_assert!(sets.is_power_of_two());
    (base_index ^ scramble as usize) & (sets - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrambled_index_stays_in_range() {
        for i in 0..1024usize {
            let s = region_scramble(i as u64, 42);
            assert!(scrambled_index(i, s, 64) < 64);
        }
    }

    #[test]
    fn zero_scramble_is_identity() {
        assert_eq!(scrambled_index(37, 0, 64), 37);
    }

    #[test]
    fn scramble_is_deterministic_per_salt() {
        assert_eq!(region_scramble(123, 7), region_scramble(123, 7));
        assert_ne!(region_scramble(123, 7), region_scramble(123, 8));
    }

    #[test]
    fn strided_pattern_spreads_across_sets() {
        // A pathological stride that always hits set 0 un-scrambled…
        let sets = 64usize;
        let stride_regions: Vec<u64> = (0..256).map(|i| i * sets as u64).collect();
        let mut hit_sets = std::collections::HashSet::new();
        for r in &stride_regions {
            let s = region_scramble(*r, 99);
            hit_sets.insert(scrambled_index((*r as usize) & (sets - 1), s, sets));
        }
        // …must fan out over many sets once scrambled.
        assert!(
            hit_sets.len() > sets / 2,
            "only {} sets used",
            hit_sets.len()
        );
    }
}
