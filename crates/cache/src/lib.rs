//! Generic cache structures shared by the baselines and D2M.
//!
//! * [`set_assoc`] — a set-associative array with LRU/random replacement,
//!   cost-biased victim selection (used by the metadata stores' region-aware
//!   policies) and direct `(set, way)` addressing (used by D2M's tag-less
//!   data arrays, which are never searched by key).
//! * [`banked`] — a banked arena of set-associative banks in one contiguous
//!   allocation, addressed by `(bank, set, way)` arithmetic; per-bank
//!   structures (MD1s, L1s, LLC slices) flatten onto it with byte-identical
//!   replacement behavior.
//! * [`tlb`] — a small TLB model with deterministic translation.
//! * [`scramble`] — index-scrambling helpers for the paper's dynamic-indexing
//!   optimization (§IV-D).
//!
//! # Example
//!
//! ```
//! use d2m_cache::set_assoc::SetAssoc;
//!
//! let mut l1: SetAssoc<u32> = SetAssoc::new(64, 8);
//! let set = l1.set_index(0x40);
//! let way = l1.victim_way(set);
//! l1.insert_at(set, way, 0x40, 7);
//! assert_eq!(l1.get(set, 0x40), Some(&7));
//! ```

pub mod banked;
pub mod scramble;
pub mod set_assoc;
pub mod tlb;

pub use banked::Banked;
pub use set_assoc::SetAssoc;
pub use tlb::Tlb;
