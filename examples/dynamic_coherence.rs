//! Dynamic coherence from presence-bit classification (paper §IV-A).
//!
//! Drives a D2M system access-by-access to show the region life cycle of
//! Table II — uncached → private → shared — and how private regions skip
//! every directory interaction (silent write upgrades, case-B write misses),
//! while shared writes pay the blocking case-C round.
//!
//! Run with: `cargo run --release --example dynamic_coherence`

use d2m_common::addr::{Asid, NodeId, VAddr};
use d2m_common::MachineConfig;
use d2m_core::{D2mSystem, D2mVariant};
use d2m_workloads::{Access, AccessKind};

fn acc(node: u8, kind: AccessKind, va: u64) -> Access {
    Access {
        node: NodeId::new(node),
        asid: Asid(0),
        kind,
        vaddr: VAddr::new(va),
    }
}

fn main() {
    let mut cfg = MachineConfig::default();
    cfg.check_coherence = true; // every load validated against the oracle
    let mut sys = D2mSystem::new(&cfg, D2mVariant::FarSide);
    let region = 0x4200_0000u64; // one 1 KB region = 16 cachelines

    println!("1) Node 0 touches a brand-new region:");
    sys.access(&acc(0, AccessKind::Load, region), 0).unwrap();
    let ev = *sys.protocol_events();
    println!(
        "   → case D4 (uncached → private): {} transition, region now owned by node 0\n",
        ev.d4_uncached_to_private
    );

    println!("2) Node 0 writes two lines of its private region:");
    let md3_before = sys.raw_counters().md3_accesses;
    sys.access(&acc(0, AccessKind::Store, region), 1000)
        .unwrap(); // hit → silent upgrade
    sys.access(&acc(0, AccessKind::Store, region + 64), 1000)
        .unwrap(); // miss → case B
    let ev = *sys.protocol_events();
    println!(
        "   → {} silent upgrade + {} case-B write miss, MD3 consulted {} times (zero!)\n",
        ev.silent_upgrades,
        ev.b_write_private,
        sys.raw_counters().md3_accesses - md3_before
    );

    println!("3) Node 1 reads the region — first foreign access:");
    sys.access(&acc(1, AccessKind::Load, region), 2000).unwrap();
    let ev = *sys.protocol_events();
    println!(
        "   → case D2 (private → shared): {} conversion; node 0's metadata was\n\
         \x20    uploaded to MD3 and its private bit cleared\n",
        ev.d2_private_to_shared
    );

    println!("4) Node 2 also reads, then node 1 writes the line node 0 masters:");
    sys.access(&acc(2, AccessKind::Load, region), 2500).unwrap();
    let inv_before = sys.raw_counters().invalidations_received;
    sys.access(&acc(1, AccessKind::Store, region), 3000)
        .unwrap();
    let ev = *sys.protocol_events();
    println!(
        "   → case C (blocking MD3 round): {} transaction; the old master got a\n\
         \x20    DirectReadEx and {} sharer(s) an Inv via the region-grain PB multicast\n",
        ev.c_write_shared,
        sys.raw_counters().invalidations_received - inv_before
    );

    println!("5) Node 0 re-reads — the LI now names node 1 directly:");
    let r = sys.access(&acc(0, AccessKind::Load, region), 4000).unwrap();
    println!(
        "   → serviced by {:?} with no directory lookup on the way\n",
        r.serviced_by
    );

    sys.check_invariants().expect("all invariants hold");
    assert_eq!(sys.coherence_errors(), 0);
    println!("value-coherence oracle and all structural invariants: clean ✓");
}
