//! Exploring a custom machine: every structure in the hierarchy is
//! configurable, so the library can answer "what if" questions the paper
//! does not — here, how D2M behaves when the metadata budget is halved
//! versus doubled on a metadata-hungry workload (canneal).
//!
//! Run with: `cargo run --release --example custom_machine`

use d2m_common::MachineConfig;
use d2m_sim::{run_one, RunConfig, SystemKind};
use d2m_workloads::catalog;

fn main() {
    let spec = catalog::by_name("canneal").expect("catalog workload");
    let rc = RunConfig {
        instructions: 800_000,
        warmup_instructions: 300_000,
        seed: 3,
    };

    println!("workload: canneal (the paper's MD2-thrashing outlier)\n");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>10}",
        "metadata budget", "msgs/KI", "ReadMM/KI", "MD2-evict/KI", "miss-lat"
    );
    for (label, factor) in [("half (÷2)", 0), ("paper (1x)", 1), ("double (2x)", 2)] {
        let cfg = match factor {
            0 => {
                let mut c = MachineConfig::default();
                c.md1.sets /= 2;
                c.md2.sets /= 2;
                c.md3.sets /= 2;
                c
            }
            f => MachineConfig::default().scale_metadata(1 << (f - 1)),
        };
        let m = run_one(SystemKind::D2mNsR, &cfg, &spec, &rc);
        let ki = m.instructions as f64 / 1000.0;
        println!(
            "{:<18} {:>10.1} {:>12.2} {:>12.2} {:>10.1}",
            label,
            m.msgs_per_kilo_inst,
            m.counters.get("case.d") as f64 / ki,
            m.counters.get("md2.evictions") as f64 / ki,
            m.avg_miss_latency,
        );
    }
    println!(
        "\nCanneal's pointer-chasing footprint overwhelms the region metadata:\n\
         more MD capacity directly translates into fewer ReadMM rounds and\n\
         forced region evictions — the mechanism behind the paper's footnote-5\n\
         scaling study."
    );
}
