//! Quickstart: simulate one workload on the D2M split hierarchy and a
//! traditional baseline, and compare the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use d2m_common::MachineConfig;
use d2m_sim::{run_one, RunConfig, SystemKind};
use d2m_workloads::catalog;

fn main() {
    // The evaluation machine: 8 nodes, 32 KB L1s, 8 MB LLC, MD1/MD2/MD3
    // metadata stores (see MachineConfig for every knob).
    let cfg = MachineConfig::default();

    // One of the 45 named workloads of the paper's evaluation.
    let spec = catalog::by_name("facebook").expect("catalog workload");

    let rc = RunConfig {
        instructions: 1_000_000,
        warmup_instructions: 300_000,
        seed: 7,
    };

    println!("workload: {} ({})\n", spec.name, spec.category.name());
    let base = run_one(SystemKind::Base2L, &cfg, &spec, &rc);
    for kind in [SystemKind::Base2L, SystemKind::D2mFs, SystemKind::D2mNsR] {
        let m = run_one(kind, &cfg, &spec, &rc);
        println!(
            "{:<9}  ipc {:.2}   {:6.1} msgs/KI   miss-lat {:5.1} cyc   EDP {:.2}x   speedup {:+.1}%",
            m.system,
            m.ipc,
            m.msgs_per_kilo_inst,
            m.avg_miss_latency,
            m.edp_vs(&base),
            (m.speedup_vs(&base) - 1.0) * 100.0,
        );
    }
    println!(
        "\nD2M replaces tag searches and directory indirections with direct\n\
         metadata-guided accesses; the near-side LLC keeps data local to the\n\
         node, which is where the traffic and latency reductions come from."
    );
}
