//! Near-side LLC placement and cooperative replication (paper §IV-B/C).
//!
//! Runs an instruction-heavy Database workload on the three D2M variants
//! and shows how the near-side slices — and then the replication heuristic —
//! turn far-side LLC round trips into local-slice hits, which is where the
//! paper's Database speedup (28%) comes from.
//!
//! Run with: `cargo run --release --example nsllc_replication`

use d2m_common::MachineConfig;
use d2m_sim::{run_one, RunConfig, SystemKind};
use d2m_workloads::catalog;

fn main() {
    let cfg = MachineConfig::default();
    let spec = catalog::by_name("tpc-c").expect("catalog workload");
    let rc = RunConfig {
        instructions: 1_500_000,
        warmup_instructions: 500_000,
        seed: 11,
    };

    println!("workload: tpc-c (8.8% L1-I miss ratio — instructions dominate)\n");
    let base = run_one(SystemKind::Base2L, &cfg, &spec, &rc);
    println!(
        "{:<9}  local-NS hits: I {:>4.0}%  D {:>4.0}%   miss-lat {:5.1}   speedup {:+5.1}%",
        base.system, 0.0, 0.0, base.avg_miss_latency, 0.0
    );
    for kind in [SystemKind::D2mFs, SystemKind::D2mNs, SystemKind::D2mNsR] {
        let m = run_one(kind, &cfg, &spec, &rc);
        println!(
            "{:<9}  local-NS hits: I {:>4.0}%  D {:>4.0}%   miss-lat {:5.1}   speedup {:+5.1}%",
            m.system,
            m.ns_hit_ratio_i * 100.0,
            m.ns_hit_ratio_d * 100.0,
            m.avg_miss_latency,
            (m.speedup_vs(&base) - 1.0) * 100.0,
        );
    }
    println!(
        "\nD2M-FS still crosses the interconnect for every LLC hit. Moving the\n\
         slices to the near side (D2M-NS) removes that crossing for locally\n\
         placed data, and replication (D2M-NS-R) lets each node use its slice\n\
         as a de-facto private L2 for shared instructions — the paper's\n\
         'automatic private L2' effect."
    );
}
