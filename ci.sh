#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, strict clippy.
# Run from the repository root. Requires no network access (the workspace
# has zero external dependencies; see README.md "Offline builds").
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== throughput harness (smoke) =="
# The binary panics (non-zero exit) on any protocol error or schema
# violation; it also self-validates the emitted JSON by re-parsing it.
# The committed smoke snapshot is stashed first so the fresh run can be
# diffed against it: any counter-checksum or access-count drift fails the
# build, while throughput/allocation deltas are machine noise and only warn.
committed_smoke="$(mktemp)"
trap 'rm -f "$committed_smoke"' EXIT
cp BENCH_throughput.smoke.json "$committed_smoke"
cargo run --release -q -p d2m-bench --bin throughput -- --smoke
test -s BENCH_throughput.smoke.json
for key in name mode systems total accesses_per_sec counter_checksum metadata_footprint; do
    grep -q "\"$key\"" BENCH_throughput.smoke.json \
        || { echo "BENCH_throughput.smoke.json missing key: $key"; exit 1; }
done

echo "== throughput compare (committed smoke vs fresh smoke) =="
cargo run --release -q -p d2m-bench --bin throughput -- \
    compare "$committed_smoke" BENCH_throughput.smoke.json \
    || { echo "simulation behavior drifted from the committed smoke snapshot"; exit 1; }

echo "== ci.sh: all checks passed =="
