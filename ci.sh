#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, strict clippy.
# Run from the repository root. Requires no network access (the workspace
# has zero external dependencies; see README.md "Offline builds").
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== ci.sh: all checks passed =="
