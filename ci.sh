#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, strict clippy.
# Run from the repository root. Requires no network access (the workspace
# has zero external dependencies; see README.md "Offline builds").
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== throughput harness (smoke) =="
# The binary panics (non-zero exit) on any protocol error or schema
# violation; it also self-validates the emitted JSON by re-parsing it.
# The committed smoke snapshot is stashed first so the fresh run can be
# diffed against it: any counter-checksum or access-count drift fails the
# build, while throughput/allocation deltas are machine noise and only warn.
committed_smoke="$(mktemp)"
fault_dir="$(mktemp -d)"
trap 'rm -f "$committed_smoke"; rm -rf "$fault_dir"' EXIT
cp BENCH_throughput.smoke.json "$committed_smoke"
cargo run --release -q -p d2m-bench --bin throughput -- --smoke
test -s BENCH_throughput.smoke.json
for key in name mode systems total accesses_per_sec counter_checksum metadata_footprint; do
    grep -q "\"$key\"" BENCH_throughput.smoke.json \
        || { echo "BENCH_throughput.smoke.json missing key: $key"; exit 1; }
done

echo "== throughput compare (committed smoke vs fresh smoke) =="
cargo run --release -q -p d2m-bench --bin throughput -- \
    compare "$committed_smoke" BENCH_throughput.smoke.json \
    || { echo "simulation behavior drifted from the committed smoke snapshot"; exit 1; }

echo "== fault-tolerant sweep smoke (inject, kill, resume, diff) =="
# End-to-end proof of the sweep engine's fault-tolerance contract, against
# the real release binary and a real process death (not an in-process
# simulation): a cell panic must not abort the sweep, and a sweep killed
# mid-run must resume to byte-identical JSON.
SWEEP_ARGS=(--sweep ci-fault --workloads swaptions,mix2 --systems base-2l,d2m-ns-r
            --instructions 20000 --warmup 5000 --jobs 2)

# 1. Clean run with one injected cell panic: exit 0, failure recorded in JSON.
D2M_FAULT="cell@ci-fault:1:panic" \
    cargo run --release -q -p d2m-sim --bin d2m-simulate -- \
    "${SWEEP_ARGS[@]}" --out "$fault_dir/clean.json"
grep -q '"error"' "$fault_dir/clean.json" \
    || { echo "injected panic left no error in the sweep JSON"; exit 1; }

# 2. Same sweep, killed right after the second checkpointed cell.
set +e
D2M_FAULT="cell@ci-fault:1:panic,checkpoint@ci-fault:2:exit" \
    cargo run --release -q -p d2m-sim --bin d2m-simulate -- \
    "${SWEEP_ARGS[@]}" --checkpoint "$fault_dir/sweep.ckpt"
kill_status=$?
set -e
[ "$kill_status" -eq 43 ] \
    || { echo "injected kill exited with $kill_status, expected 43"; exit 1; }

# 3. Resume past the kill (same injected panic, still deterministic) and
#    require byte-identity with the uninterrupted run.
D2M_FAULT="cell@ci-fault:1:panic" \
    cargo run --release -q -p d2m-sim --bin d2m-simulate -- \
    "${SWEEP_ARGS[@]}" --checkpoint "$fault_dir/sweep.ckpt" --resume \
    --out "$fault_dir/resumed.json"
cmp "$fault_dir/clean.json" "$fault_dir/resumed.json" \
    || { echo "resumed sweep JSON differs from the uninterrupted run"; exit 1; }

echo "== ci.sh: all checks passed =="
