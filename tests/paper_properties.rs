//! Qualitative paper properties as integration tests: the *shape* of the
//! evaluation (who wins, where, and why) must hold at moderate simulation
//! lengths. Exact magnitudes are checked by the benchmark harness and
//! recorded in EXPERIMENTS.md.

use d2m_common::MachineConfig;
use d2m_sim::{run_one, RunConfig, SystemKind};
use d2m_workloads::catalog;

fn rc() -> RunConfig {
    // Long enough for warm working sets to see real reuse (see DESIGN.md §6
    // on window-length effects); release-mode runtime is a few seconds.
    RunConfig {
        instructions: 2_000_000,
        warmup_instructions: 800_000,
        seed: 42,
    }
}

#[test]
fn server_mixes_are_fully_private_and_d2m_cuts_their_traffic() {
    // Table V: Server misses are 100% to private regions; Figure 5 shows a
    // large traffic reduction for the mixes.
    let cfg = MachineConfig::default();
    let spec = catalog::by_name("mix2").unwrap();
    let base = run_one(SystemKind::Base2L, &cfg, &spec, &rc());
    let nsr = run_one(SystemKind::D2mNsR, &cfg, &spec, &rc());
    assert!(nsr.private_miss_frac > 0.999, "{}", nsr.private_miss_frac);
    assert!(
        nsr.msgs_per_kilo_inst < 0.5 * base.msgs_per_kilo_inst,
        "NSR {} vs base {}",
        nsr.msgs_per_kilo_inst,
        base.msgs_per_kilo_inst
    );
}

#[test]
fn canneal_is_a_traffic_outlier_for_d2m() {
    // Paper §V-B: canneal's MD2 misses make it one of the two workloads
    // where D2M does not win on traffic.
    let cfg = MachineConfig::default();
    let spec = catalog::by_name("canneal").unwrap();
    let base = run_one(SystemKind::Base2L, &cfg, &spec, &rc());
    let nsr = run_one(SystemKind::D2mNsR, &cfg, &spec, &rc());
    assert!(
        nsr.msgs_per_kilo_inst > 0.9 * base.msgs_per_kilo_inst,
        "canneal should not show a traffic win: {} vs {}",
        nsr.msgs_per_kilo_inst,
        base.msgs_per_kilo_inst
    );
}

#[test]
fn streamcluster_gets_latency_but_no_traffic_advantage() {
    let cfg = MachineConfig::default();
    let spec = catalog::by_name("streamcluster").unwrap();
    let base = run_one(SystemKind::Base2L, &cfg, &spec, &rc());
    let fs = run_one(SystemKind::D2mFs, &cfg, &spec, &rc());
    assert!(fs.mem_service_frac > 0.5, "streaming misses go to memory");
    assert!(
        fs.msgs_per_kilo_inst > 0.85 * base.msgs_per_kilo_inst,
        "no traffic advantage expected"
    );
    assert!(
        fs.avg_miss_latency < base.avg_miss_latency,
        "but a latency advantage is"
    );
}

#[test]
fn near_side_and_replication_each_add_speedup_on_instruction_heavy_work() {
    // Figure 7's Database story: FS < NS < NS-R, with replication providing
    // the big jump by serving L1-I misses from the local slice.
    let cfg = MachineConfig::default();
    let spec = catalog::by_name("tpc-c").unwrap();
    let base = run_one(SystemKind::Base2L, &cfg, &spec, &rc());
    let fs = run_one(SystemKind::D2mFs, &cfg, &spec, &rc());
    let ns = run_one(SystemKind::D2mNs, &cfg, &spec, &rc());
    let nsr = run_one(SystemKind::D2mNsR, &cfg, &spec, &rc());
    let s = |m: &d2m_sim::RunMetrics| m.speedup_vs(&base);
    assert!(s(&fs) > 1.0, "FS {}", s(&fs));
    assert!(s(&ns) > s(&fs), "NS {} vs FS {}", s(&ns), s(&fs));
    assert!(s(&nsr) > s(&ns), "NSR {} vs NS {}", s(&nsr), s(&ns));
    assert!(
        nsr.ns_hit_ratio_i > ns.ns_hit_ratio_i + 0.2,
        "replication must lift local instruction service: {} vs {}",
        nsr.ns_hit_ratio_i,
        ns.ns_hit_ratio_i
    );
}

#[test]
fn d2m_reduces_miss_latency_and_edp_on_mobile_work() {
    let cfg = MachineConfig::default();
    let spec = catalog::by_name("google").unwrap();
    let base = run_one(SystemKind::Base2L, &cfg, &spec, &rc());
    let nsr = run_one(SystemKind::D2mNsR, &cfg, &spec, &rc());
    assert!(nsr.avg_miss_latency < 0.8 * base.avg_miss_latency);
    assert!(nsr.edp < base.edp);
}

#[test]
fn directory_free_fraction_is_high_for_d2m() {
    // Appendix: cases A+B (no MD3 involvement) dominate the miss mix.
    let cfg = MachineConfig::default();
    for name in ["mix4", "mix2"] {
        let spec = catalog::by_name(name).unwrap();
        let m = run_one(SystemKind::D2mFs, &cfg, &spec, &rc());
        let a = m.counters.get("case.a") + m.counters.get("case.b");
        let all = a + m.counters.get("case.c") + m.counters.get("case.d");
        let frac = a as f64 / all.max(1) as f64;
        assert!(frac > 0.8, "{name}: directory-free only {frac}");
    }
}

#[test]
fn base3l_l2_helps_server_but_not_instruction_thrashers() {
    // §V-D: Base-3L's L2 filters LLC accesses for data-heavy work, but
    // Database-style instruction footprints still miss past it.
    let cfg = MachineConfig::default();
    let mix = catalog::by_name("mix2").unwrap();
    let b3 = run_one(SystemKind::Base3L, &cfg, &mix, &rc());
    assert!(
        b3.ns_hit_ratio_d > 0.3,
        "L2 should filter: {}",
        b3.ns_hit_ratio_d
    );
    let db = catalog::by_name("tpc-c").unwrap();
    let b3db = run_one(SystemKind::Base3L, &cfg, &db, &rc());
    let nsr = run_one(SystemKind::D2mNsR, &cfg, &db, &rc());
    // NS-R's 1 MB slice beats the 256 KB L2 for instructions.
    assert!(nsr.ns_hit_ratio_i > b3db.ns_hit_ratio_i);
}
