//! Cross-crate integration: every system must stay value-coherent and
//! structurally sound on real catalog workloads, and simulations must be
//! bit-reproducible.

use d2m_common::MachineConfig;
use d2m_core::{D2mSystem, D2mVariant};
use d2m_sim::{run_one, RunConfig, SystemKind};
use d2m_workloads::{catalog, TraceGen};

fn rc() -> RunConfig {
    RunConfig {
        instructions: 80_000,
        warmup_instructions: 20_000,
        seed: 5,
    }
}

#[test]
fn all_systems_stay_coherent_on_a_shared_workload() {
    let mut cfg = MachineConfig::default();
    cfg.check_coherence = true;
    let spec = catalog::by_name("fluidanimate").unwrap();
    for kind in SystemKind::ALL {
        // run_one asserts coherence_errors == 0 internally.
        let m = run_one(kind, &cfg, &spec, &rc());
        assert!(m.cycles > 0, "{}", kind.name());
    }
}

#[test]
fn d2m_invariants_hold_after_real_workloads() {
    let mut cfg = MachineConfig::default();
    cfg.check_coherence = true;
    for name in ["dedup", "radiosity", "tpc-c", "mix3", "cnn"] {
        let spec = catalog::by_name(name).unwrap();
        for variant in [D2mVariant::FarSide, D2mVariant::NearSideRepl] {
            let mut sys = D2mSystem::new(&cfg, variant);
            let mut gen = TraceGen::new(&spec, cfg.nodes, 9);
            let mut batch = Vec::new();
            for _ in 0..400 {
                batch.clear();
                gen.next_batch(&mut batch);
                for a in &batch {
                    sys.access(a, 0).unwrap();
                }
            }
            assert_eq!(sys.coherence_errors(), 0, "{name}/{variant:?}");
            assert_eq!(sys.determinism_errors(), 0, "{name}/{variant:?}");
            sys.check_invariants()
                .unwrap_or_else(|e| panic!("{name}/{variant:?}: {e}"));
        }
    }
}

#[test]
fn simulations_are_bit_reproducible() {
    let cfg = MachineConfig::default();
    let spec = catalog::by_name("x264").unwrap();
    for kind in [SystemKind::Base3L, SystemKind::D2mNsR] {
        let a = run_one(kind, &cfg, &spec, &rc());
        let b = run_one(kind, &cfg, &spec, &rc());
        assert_eq!(a.cycles, b.cycles, "{}", kind.name());
        assert_eq!(a.counters, b.counters, "{}", kind.name());
    }
}

#[test]
fn every_catalog_workload_runs_on_every_system_briefly() {
    let cfg = MachineConfig::default();
    let quick = RunConfig {
        instructions: 6_000,
        warmup_instructions: 1_000,
        seed: 2,
    };
    for spec in catalog::all().unwrap() {
        for kind in SystemKind::ALL {
            let m = run_one(kind, &cfg, &spec, &quick);
            assert!(
                m.ipc > 0.0 && m.ipc <= cfg.core.base_ipc * cfg.nodes as f64,
                "{} {}",
                spec.name,
                kind.name()
            );
            assert!(m.energy_pj > 0.0, "{} {}", spec.name, kind.name());
        }
    }
}

#[test]
fn interleaved_writers_leave_identical_final_state() {
    // Multi-core interleaved-writer scenario: 6 cores hammer a shared
    // segment (3 regions, 48 lines) in write/read round-robin while also
    // touching private per-core regions. After the interleaving, every core
    // reads back every shared line and its own private lines.
    //
    // Both systems run with the value-coherence oracle enabled: the oracle
    // is a pure function of the (identical) access trace, and every readback
    // load is validated against it. `coherence_errors() == 0` on both
    // systems therefore proves the baseline's and D2M's final data states
    // both equal the oracle's — i.e. they are equal to each other —
    // despite completely different coherence machinery (MESI directory vs
    // metadata-tracked single-copy ownership).
    use d2m_common::addr::{Asid, NodeId, VAddr};
    use d2m_sim::AnySystem;
    use d2m_workloads::{Access, AccessKind};

    const CORES: u8 = 6;
    const SHARED_LINES: u64 = 48; // 3 regions of 16 lines
    const SHARED_BASE: u64 = 0x3000_0000;
    const PRIVATE_BASE: u64 = 0x4000_0000;
    const PRIVATE_LINES: u64 = 24;

    let acc = |node: u8, kind: AccessKind, va: u64| Access {
        node: NodeId::new(node),
        asid: Asid(0),
        kind,
        vaddr: VAddr::new(va),
    };
    let shared = |i: u64| SHARED_BASE + (i % SHARED_LINES) * 64;
    let private =
        |node: u8, i: u64| PRIVATE_BASE + u64::from(node) * 0x10_0000 + (i % PRIVATE_LINES) * 64;

    let mut trace = Vec::new();
    for step in 0u64..600 {
        for node in 0..CORES {
            let n = u64::from(node);
            // Interleaved writers: each core stores to a rotating shared
            // line, then reads one written earlier by a different core.
            trace.push(acc(node, AccessKind::Store, shared(step + 7 * n)));
            trace.push(acc(node, AccessKind::Load, shared(step * 5 + n + 1)));
            // Private traffic mixed in so classification (private vs shared
            // regions) is exercised alongside the ping-ponging.
            trace.push(acc(node, AccessKind::Store, private(node, step)));
            trace.push(acc(node, AccessKind::Load, private(node, step + 3)));
        }
    }
    // Final readback: every core observes the whole shared segment and its
    // own private region; the oracle checks every returned value.
    for node in 0..CORES {
        for i in 0..SHARED_LINES {
            trace.push(acc(node, AccessKind::Load, shared(i)));
        }
        for i in 0..PRIVATE_LINES {
            trace.push(acc(node, AccessKind::Load, private(node, i)));
        }
    }

    let mut cfg = MachineConfig::default();
    cfg.check_coherence = true;
    for kind in SystemKind::ALL {
        let mut sys = AnySystem::build(kind, &cfg, 1);
        for a in &trace {
            sys.access(a, 0).unwrap();
        }
        assert_eq!(
            sys.coherence_errors(),
            0,
            "{}: final data state diverged from the shared oracle",
            kind.name()
        );
    }
}

#[test]
fn recorded_traces_replay_identically() {
    use d2m_sim::AnySystem;
    use d2m_workloads::trace_io::{read_trace, write_trace, ReplayGen};
    use d2m_workloads::TraceGen;

    let mut cfg = MachineConfig::default();
    cfg.check_coherence = true;
    let spec = catalog::by_name("barnes").unwrap();
    let mut gen = TraceGen::new(&spec, cfg.nodes, 17);
    let mut trace = Vec::new();
    for _ in 0..300 {
        gen.next_batch(&mut trace);
    }
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).unwrap();
    let loaded = read_trace(&buf[..]).unwrap();

    // Driving a system from the in-memory trace and from the decoded file
    // must produce identical counters.
    let drive = |accs: &[d2m_workloads::Access]| {
        let mut sys = AnySystem::build(SystemKind::D2mNsR, &cfg, 1);
        for a in accs {
            sys.access(a, 0).unwrap();
        }
        assert_eq!(sys.coherence_errors(), 0);
        sys.counters()
    };
    assert_eq!(drive(&trace), drive(&loaded));

    // And the ReplayGen wrapper yields the same stream.
    let mut rep = ReplayGen::new(loaded, 6);
    let mut first = Vec::new();
    rep.next_batch(&mut first);
    assert_eq!(&first[..], &trace[..first.len()]);
}
