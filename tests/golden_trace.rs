//! Golden-trace regression tests.
//!
//! Each golden case is a small canned `D2MT` trace committed under
//! `tests/golden/` together with a JSON snapshot of the full counter state
//! (cache hits/misses, NoC message classes, DRAM traffic, …) produced by
//! driving the baseline (`Base-2L`) and the full D2M system (`D2M-NS-R`)
//! over it. Any change to hit/miss accounting, the coherence protocol, or
//! message generation shows up as a counter diff against the snapshot.
//!
//! To regenerate the fixtures after an *intentional* behavioural change:
//!
//! ```text
//! D2M_BLESS=1 cargo test --test golden_trace
//! ```
//!
//! Blessing rewrites both the traces (deterministically generated from the
//! workload catalog) and the snapshots; review the diff before committing.

use std::path::{Path, PathBuf};

use d2m_common::json::{FromJson, Json, ToJson};
use d2m_common::stats::Counters;
use d2m_common::MachineConfig;
use d2m_sim::{AnySystem, SystemKind};
use d2m_workloads::trace_io::{read_trace, write_trace};
use d2m_workloads::{catalog, Access, TraceGen};

/// The committed golden cases: (name, workload, generator seed, batches).
/// Batches are small on purpose — each trace is a few thousand records.
const CASES: [(&str, &str, u64, usize); 3] = [
    ("swaptions", "swaptions", 11, 40),
    ("mix2", "mix2", 23, 40),
    ("tpc-c", "tpc-c", 37, 40),
];

/// Systems snapshotted per trace: the mobile baseline and the full D2M.
const SYSTEMS: [SystemKind; 2] = [SystemKind::Base2L, SystemKind::D2mNsR];

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn blessing() -> bool {
    std::env::var("D2M_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn generate(workload: &str, seed: u64, batches: usize) -> Vec<Access> {
    let spec = catalog::by_name(workload).expect("catalog workload");
    let mut gen = TraceGen::new(&spec, 8, seed);
    let mut trace = Vec::new();
    for _ in 0..batches {
        gen.next_batch(&mut trace);
    }
    trace
}

/// Drives `kind` over the trace with the value-coherence oracle on and
/// returns the final counter state.
fn drive(kind: SystemKind, trace: &[Access]) -> Counters {
    let mut cfg = MachineConfig::default();
    cfg.check_coherence = true;
    let mut sys = AnySystem::build(kind, &cfg, 1);
    for a in trace {
        sys.access(a, 0).unwrap();
    }
    assert_eq!(sys.coherence_errors(), 0, "{}", kind.name());
    sys.counters()
}

fn snapshot(trace: &[Access]) -> Json {
    Json::Obj(
        SYSTEMS
            .iter()
            .map(|&k| (k.name().to_string(), drive(k, trace).to_json()))
            .collect(),
    )
}

#[test]
fn golden_traces_match_counter_snapshots() {
    let dir = golden_dir();
    if blessing() {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    for (name, workload, seed, batches) in CASES {
        let trace_path = dir.join(format!("{name}.trace"));
        let snap_path = dir.join(format!("{name}.counters.json"));
        if blessing() {
            let trace = generate(workload, seed, batches);
            let mut buf = Vec::new();
            write_trace(&mut buf, &trace).expect("encode trace");
            std::fs::write(&trace_path, &buf).expect("write trace");
            let mut text = snapshot(&trace).to_string_pretty();
            text.push('\n');
            std::fs::write(&snap_path, text).expect("write snapshot");
            eprintln!("[bless] {name}: {} records", trace.len());
            continue;
        }
        let bytes = std::fs::read(&trace_path).unwrap_or_else(|e| {
            panic!("missing golden trace {trace_path:?} ({e}); run D2M_BLESS=1 to create")
        });
        let trace = read_trace(&bytes[..]).expect("valid D2MT trace");
        let expected = Json::parse(&std::fs::read_to_string(&snap_path).unwrap_or_else(|e| {
            panic!("missing snapshot {snap_path:?} ({e}); run D2M_BLESS=1 to create")
        }))
        .expect("valid snapshot JSON");
        for kind in SYSTEMS {
            let got = drive(kind, &trace);
            let want = Counters::from_json(
                expected
                    .get(kind.name())
                    .unwrap_or_else(|| panic!("{name}: snapshot lacks {}", kind.name())),
            )
            .expect("snapshot counters decode");
            assert_eq!(
                got,
                want,
                "{name}/{}: counters diverged from golden snapshot \
                 (if intentional, re-bless with D2M_BLESS=1)",
                kind.name()
            );
        }
    }
}

#[test]
fn golden_traces_are_regenerable() {
    // The committed traces must stay reproducible from the generator, so a
    // bless run can never silently change the inputs.
    if blessing() {
        return; // the bless pass itself rewrites the traces
    }
    for (name, workload, seed, batches) in CASES {
        let path = golden_dir().join(format!("{name}.trace"));
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing {path:?} ({e}); run D2M_BLESS=1"));
        let committed = read_trace(&bytes[..]).expect("valid D2MT trace");
        assert_eq!(
            committed,
            generate(workload, seed, batches),
            "{name}: committed trace no longer matches its generator recipe"
        );
    }
}
