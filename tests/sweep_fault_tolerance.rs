//! Fault-tolerance guarantees of the sweep engine, end to end: injected
//! panics stay confined to their cell, a killed checkpointed sweep resumes
//! to **byte-identical** JSON from any kill point, and retry bookkeeping
//! survives the journal round-trip.
//!
//! Every test holds a [`d2m_common::faultpoint::FaultGuard`] — even the
//! ones that inject nothing (`arm("")`) — because fault rules are process
//! globals and the guard's lock is what keeps concurrently scheduled tests
//! from tripping each other's rules (the `build@…` rule below is scoped by
//! *system* name, which any concurrent sweep would match).

use d2m_common::{faultpoint, MachineConfig};
use d2m_sim::{run_sweep_checkpointed, run_sweep_with_jobs, ConfigPoint, SweepSpec, SystemKind};
use d2m_workloads::catalog;
use std::path::PathBuf;

fn spec(name: &str) -> SweepSpec {
    SweepSpec {
        name: name.into(),
        configs: vec![ConfigPoint {
            label: "default".into(),
            config: MachineConfig::default(),
        }],
        systems: vec![SystemKind::Base2L, SystemKind::D2mNsR],
        workloads: vec![
            catalog::by_name("swaptions").unwrap(),
            catalog::by_name("mix2").unwrap(),
        ],
        instructions: 20_000,
        warmup_instructions: 5_000,
        master_seed: 42,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("d2m-ft-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn injected_panic_is_isolated_and_thread_count_invariant() {
    let s = spec("ft-panic");
    // Unlimited count: the rule fires identically in both runs.
    let _g = faultpoint::arm("cell@ft-panic:2:panic").unwrap();
    let serial = run_sweep_with_jobs(&s, 1);
    let parallel = run_sweep_with_jobs(&s, 8);
    assert_eq!(
        serial.to_json_string(),
        parallel.to_json_string(),
        "a faulted sweep must stay thread-count invariant"
    );
    let failures = serial.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].index, 2);
    assert!(
        failures[0]
            .error
            .as_deref()
            .unwrap()
            .contains("injected fault at cell:2"),
        "{:?}",
        failures[0].error
    );
}

#[test]
fn panic_deep_inside_system_construction_is_isolated_to_its_cells() {
    let s = spec("ft-build");
    // Scoped by *system* name and wildcard key: every D2M-NS-R cell dies in
    // `AnySystem::build`, far below the sweep engine.
    let _g = faultpoint::arm("build@D2M-NS-R:*:panic").unwrap();
    let res = run_sweep_with_jobs(&s, 4);
    assert_eq!(res.cells.len(), s.num_cells(), "no cell may be lost");
    for c in &res.cells {
        if c.system == SystemKind::D2mNsR {
            let err = c.error.as_deref().expect("D2M-NS-R cells must fail");
            assert!(
                err.contains("worker panicked") && err.contains("injected fault at build"),
                "{err}"
            );
        } else {
            assert!(
                c.ok(),
                "cell {} ({}) must be unaffected",
                c.index,
                c.workload
            );
        }
    }
}

#[test]
fn resume_is_byte_identical_at_every_kill_point() {
    let _g = faultpoint::arm("").unwrap();
    let s = spec("ft-resume");
    let reference = run_sweep_with_jobs(&s, 1).to_json_string();

    // A full journal, written serially so line k is cell k.
    let full = tmp("resume-full.ckpt");
    let res = run_sweep_checkpointed(&s, 1, &full, false).unwrap();
    assert_eq!(res.to_json_string(), reference);
    let journal = std::fs::read_to_string(&full).unwrap();
    let lines: Vec<&str> = journal.lines().collect();
    assert_eq!(lines.len(), 1 + s.num_cells());

    let path = tmp("resume-cut.ckpt");
    for kill_after in 0..=s.num_cells() {
        // The journal as a kill right after `kill_after` cells would leave it.
        let kept = lines[..=kill_after].join("\n") + "\n";
        std::fs::write(&path, &kept).unwrap();
        // Alternate worker counts: resume must not care how the remainder
        // is scheduled.
        let jobs = if kill_after % 2 == 0 { 1 } else { 8 };
        let resumed = run_sweep_checkpointed(&s, jobs, &path, true).unwrap();
        assert_eq!(
            resumed.to_json_string(),
            reference,
            "kill after {kill_after} cells, resumed on {jobs} jobs"
        );
    }

    // A kill mid-append: the last line is torn. It must be discarded (with
    // its cell re-run), not treated as corruption.
    let torn = lines[..2].join("\n") + "\n" + &lines[2][..lines[2].len() / 2];
    std::fs::write(&path, &torn).unwrap();
    let resumed = run_sweep_checkpointed(&s, 2, &path, true).unwrap();
    assert_eq!(
        resumed.to_json_string(),
        reference,
        "torn final journal line"
    );
}

#[test]
fn deterministic_fault_survives_kill_and_resume_byte_identically() {
    // A cell that panics *deterministically* (unlimited-count rule) must
    // serialize the same whether its failure was journaled before the kill
    // or reproduced after the resume.
    let s = spec("ft-kill-fault");
    let _g = faultpoint::arm("cell@ft-kill-fault:3:panic").unwrap();
    let path = tmp("kill-fault.ckpt");
    let reference = run_sweep_checkpointed(&s, 1, &path, false)
        .unwrap()
        .to_json_string();
    let journal = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = journal.lines().collect();

    // Kill before the faulty cell 3 was journaled: the resume re-runs it
    // and the fault fires again, with the same deterministic message.
    let kept = lines[..=2].join("\n") + "\n";
    std::fs::write(&path, kept).unwrap();
    let resumed = run_sweep_checkpointed(&s, 8, &path, true).unwrap();
    assert_eq!(resumed.to_json_string(), reference);
    assert_eq!(resumed.failures().len(), 1);

    // Kill after it was journaled: the resume loads the failure as data.
    let kept = lines.join("\n") + "\n";
    std::fs::write(&path, kept).unwrap();
    let resumed = run_sweep_checkpointed(&s, 1, &path, true).unwrap();
    assert_eq!(resumed.to_json_string(), reference);
}

#[test]
fn retry_attempt_counts_survive_the_journal_round_trip() {
    let s = spec("ft-attempts");
    // Fail cell 1's first attempt only: it recovers on attempt 2.
    let _g = faultpoint::arm("cell@ft-attempts:1:error:1").unwrap();
    let path = tmp("attempts.ckpt");
    let full = run_sweep_checkpointed(&s, 1, &path, false).unwrap();
    assert!(full.failures().is_empty(), "the retry must have recovered");
    assert_eq!(full.cells[1].attempts, 2);
    assert!(full.to_json_string().contains("\"attempts\": 2"));

    // Truncate the journal after cell 1 (serial run: line k is cell k), so
    // the resume must take the attempt count from the journal, not rerun.
    let journal = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = journal.lines().collect();
    let kept = lines[..=2].join("\n") + "\n";
    std::fs::write(&path, kept).unwrap();
    let resumed = run_sweep_checkpointed(&s, 1, &path, true).unwrap();
    assert_eq!(resumed.to_json_string(), full.to_json_string());
    assert_eq!(resumed.cells[1].attempts, 2);
}
