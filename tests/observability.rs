//! The observability layer's two contracts, end to end:
//!
//! 1. **Zero cost when off, zero perturbation when on.** Driving a system
//!    through `access_probed` — with no probe, a [`NoopProbe`], or a full
//!    [`RecordingProbe`] — must leave every counter byte-identical to the
//!    plain `access` path. The probe only *reads* the transaction stream.
//! 2. **Deterministic aggregation.** An observed sweep's histogram JSON is
//!    byte-identical regardless of the worker-thread count, like the scalar
//!    sweep JSON before it.

use d2m_common::json::ToJson;
use d2m_common::probe::{NoopProbe, Probe, RecordingProbe};
use d2m_common::stats::Counters;
use d2m_common::MachineConfig;
use d2m_sim::{
    run_one, run_one_observed, run_sweep_observed_with_jobs, run_sweep_with_jobs, AnySystem,
    ConfigPoint, RunConfig, SweepSpec, SystemKind,
};
use d2m_workloads::{catalog, Access, TraceGen};

fn trace(workload: &str, seed: u64, batches: usize) -> Vec<Access> {
    let spec = catalog::by_name(workload).expect("catalog workload");
    let mut gen = TraceGen::new(&spec, 8, seed);
    let mut out = Vec::new();
    for _ in 0..batches {
        gen.next_batch(&mut out);
    }
    out
}

fn drive(kind: SystemKind, accs: &[Access], mut probe: Option<&mut dyn Probe>) -> Counters {
    let cfg = MachineConfig::default();
    let mut sys = AnySystem::build(kind, &cfg, 1);
    for a in accs {
        match probe.as_deref_mut() {
            Some(p) => sys.access_probed(a, 0, Some(p)).unwrap(),
            None => sys.access(a, 0).unwrap(),
        };
    }
    sys.counters()
}

#[test]
fn probes_never_perturb_the_simulation() {
    let accs = trace("swaptions", 11, 20);
    for kind in [SystemKind::Base2L, SystemKind::Base3L, SystemKind::D2mNsR] {
        let plain = drive(kind, &accs, None);
        let mut noop = NoopProbe;
        let nooped = drive(kind, &accs, Some(&mut noop));
        let mut rec = RecordingProbe::new();
        let recorded = drive(kind, &accs, Some(&mut rec));
        assert_eq!(
            plain.to_json().to_string_pretty(),
            nooped.to_json().to_string_pretty(),
            "{}: NoopProbe changed counters",
            kind.name()
        );
        assert_eq!(
            plain.to_json().to_string_pretty(),
            recorded.to_json().to_string_pretty(),
            "{}: RecordingProbe changed counters",
            kind.name()
        );
        assert_eq!(rec.events, accs.len() as u64, "{}", kind.name());
        assert_eq!(rec.latency.count(), accs.len() as u64, "{}", kind.name());
    }
}

#[test]
fn recording_probe_tallies_are_consistent() {
    let accs = trace("tpc-c", 37, 20);
    let mut rec = RecordingProbe::new();
    drive(SystemKind::D2mNsR, &accs, Some(&mut rec));
    let n = accs.len() as u64;
    assert_eq!(rec.by_kind.iter().sum::<u64>(), n);
    assert_eq!(rec.by_level.iter().sum::<u64>(), n);
    assert_eq!(rec.by_serviced.iter().sum::<u64>(), n);
    assert!(rec.l1_hits > 0 && rec.l1_hits < n);
    // A shared workload must exercise lookups beyond the node level: an
    // L1 miss whose location is already cached in MD1 legitimately resolves
    // at level "l1", but some misses must still reach MD2/MD3.
    assert!(rec.by_level[1] + rec.by_level[2] > 0);
}

#[test]
fn observed_run_metrics_equal_plain_run_metrics() {
    let cfg = MachineConfig::default();
    let spec = catalog::by_name("swaptions").unwrap();
    let rc = RunConfig {
        instructions: 30_000,
        warmup_instructions: 10_000,
        seed: 3,
    };
    for kind in [SystemKind::Base3L, SystemKind::D2mNs] {
        let plain = run_one(kind, &cfg, &spec, &rc);
        let obs = run_one_observed(kind, &cfg, &spec, &rc).unwrap();
        assert_eq!(
            plain.to_json().to_string_pretty(),
            obs.metrics.to_json().to_string_pretty(),
            "{}: observation perturbed the metrics",
            kind.name()
        );
        // Phase markers bracket the two windows in order.
        let phases: Vec<&str> = obs.probe.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(phases, ["warmup", "measured"]);
        assert!(obs.probe.events > 0);
        assert!(obs.traffic.total() > 0, "{}", kind.name());
    }
}

#[test]
fn observed_sweep_histograms_are_thread_count_invariant() {
    let spec = SweepSpec {
        name: "obs-grid".into(),
        configs: vec![ConfigPoint {
            label: "default".into(),
            config: MachineConfig::default(),
        }],
        systems: vec![SystemKind::Base2L, SystemKind::D2mNsR],
        workloads: vec![
            catalog::by_name("swaptions").unwrap(),
            catalog::by_name("mix2").unwrap(),
        ],
        instructions: 15_000,
        warmup_instructions: 4_000,
        master_seed: 42,
    };
    let one = run_sweep_observed_with_jobs(&spec, 1);
    let four = run_sweep_observed_with_jobs(&spec, 4);
    assert_eq!(
        one.histograms_json().to_string_pretty(),
        four.histograms_json().to_string_pretty(),
        "histogram JSON must not depend on the worker count"
    );
    assert_eq!(
        one.result.to_json_string(),
        four.result.to_json_string(),
        "scalar JSON must not depend on the worker count"
    );
    // And observation must not change the scalar sweep output either.
    let plain = run_sweep_with_jobs(&spec, 2);
    assert_eq!(plain.to_json_string(), one.result.to_json_string());
}
