//! The sweep engine's core guarantee: results are **byte-identical**
//! regardless of worker-thread count. A 1-thread run and a multi-thread run
//! of the same spec must serialize to exactly the same JSON text.

use d2m_common::MachineConfig;
use d2m_sim::{run_sweep_with_jobs, ConfigPoint, SweepSpec, SystemKind};
use d2m_workloads::catalog;

fn spec() -> SweepSpec {
    SweepSpec {
        name: "determinism".into(),
        configs: vec![
            ConfigPoint {
                label: "default".into(),
                config: MachineConfig::default(),
            },
            ConfigPoint {
                label: "md2x".into(),
                config: MachineConfig::default().scale_metadata(2),
            },
        ],
        systems: vec![SystemKind::Base2L, SystemKind::D2mFs, SystemKind::D2mNsR],
        workloads: vec![
            catalog::by_name("swaptions").unwrap(),
            catalog::by_name("mix2").unwrap(),
        ],
        instructions: 25_000,
        warmup_instructions: 5_000,
        master_seed: 42,
    }
}

#[test]
fn parallel_sweep_json_is_byte_identical_to_serial() {
    let s = spec();
    assert!(s.num_cells() >= 8, "grid must exercise real fan-out");
    let serial = run_sweep_with_jobs(&s, 1);
    let parallel = run_sweep_with_jobs(&s, 4);
    assert_eq!(serial.jobs_used, 1);
    assert_eq!(parallel.jobs_used, 4);
    let a = serial.to_json_string();
    let b = parallel.to_json_string();
    assert!(
        a.as_bytes() == b.as_bytes(),
        "1-thread and 4-thread sweeps must serialize identically"
    );
}

#[test]
fn oversubscribed_pool_is_also_identical() {
    // More workers than cells: most workers find the queue empty.
    let s = spec();
    let a = run_sweep_with_jobs(&s, 2).to_json_string();
    let b = run_sweep_with_jobs(&s, 32).to_json_string();
    assert_eq!(a, b);
}

#[test]
fn systems_see_the_same_trace_per_workload() {
    // The per-cell seed excludes the system axis, so paired comparisons
    // (speedup, relative EDP) are over the exact same access stream.
    let s = spec();
    let res = run_sweep_with_jobs(&s, 4);
    for cells in res.cells.chunks(s.systems.len()) {
        for c in &cells[1..] {
            assert_eq!(c.seed, cells[0].seed, "workload {}", cells[0].workload);
            assert_eq!(c.workload, cells[0].workload);
            assert_eq!(
                c.metrics.instructions, cells[0].metrics.instructions,
                "same trace ⇒ same instruction count"
            );
        }
    }
}
