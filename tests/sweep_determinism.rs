//! The sweep engine's core guarantee: results are **byte-identical**
//! regardless of worker-thread count. A 1-thread run and a multi-thread run
//! of the same spec must serialize to exactly the same JSON text.

use d2m_common::MachineConfig;
use d2m_sim::{run_sweep_with_jobs, ConfigPoint, SweepSpec, SystemKind};
use d2m_workloads::catalog;

fn spec() -> SweepSpec {
    SweepSpec {
        name: "determinism".into(),
        configs: vec![
            ConfigPoint {
                label: "default".into(),
                config: MachineConfig::default(),
            },
            ConfigPoint {
                label: "md2x".into(),
                config: MachineConfig::default().scale_metadata(2),
            },
        ],
        systems: vec![SystemKind::Base2L, SystemKind::D2mFs, SystemKind::D2mNsR],
        workloads: vec![
            catalog::by_name("swaptions").unwrap(),
            catalog::by_name("mix2").unwrap(),
        ],
        instructions: 25_000,
        warmup_instructions: 5_000,
        master_seed: 42,
    }
}

#[test]
fn parallel_sweep_json_is_byte_identical_to_serial() {
    let s = spec();
    assert!(s.num_cells() >= 8, "grid must exercise real fan-out");
    let serial = run_sweep_with_jobs(&s, 1);
    let parallel = run_sweep_with_jobs(&s, 4);
    assert_eq!(serial.jobs_used, 1);
    assert_eq!(parallel.jobs_used, 4);
    let a = serial.to_json_string();
    let b = parallel.to_json_string();
    assert!(
        a.as_bytes() == b.as_bytes(),
        "1-thread and 4-thread sweeps must serialize identically"
    );
}

#[test]
fn oversubscribed_pool_is_also_identical() {
    // More workers than cells: most workers find the queue empty.
    let s = spec();
    let a = run_sweep_with_jobs(&s, 2).to_json_string();
    let b = run_sweep_with_jobs(&s, 32).to_json_string();
    assert_eq!(a, b);
}

#[test]
fn faulted_kill_and_resume_stays_byte_identical_across_thread_counts() {
    // The determinism guarantee must hold on the recovery path too: a sweep
    // with an injected per-cell fault, killed mid-run (simulated by
    // truncating the checkpoint journal) and resumed, serializes exactly
    // like an uninterrupted run — at 1 worker and at 8.
    let mut s = spec();
    s.name = "det-fault".into();
    // Scoped to this sweep's name so the concurrently running tests in this
    // binary never trip it; unlimited count so it fires deterministically
    // in every run, including post-resume reruns.
    let _g = d2m_common::faultpoint::arm("cell@det-fault:5:panic").unwrap();
    let reference = run_sweep_with_jobs(&s, 1);
    assert_eq!(reference.failures().len(), 1);
    assert_eq!(
        reference.to_json_string(),
        run_sweep_with_jobs(&s, 8).to_json_string()
    );

    let dir = std::env::temp_dir().join(format!("d2m-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("det-fault.ckpt");
    let full = d2m_sim::run_sweep_checkpointed(&s, 1, &path, false).unwrap();
    assert_eq!(full.to_json_string(), reference.to_json_string());

    // Kill after 4 journaled cells (serial run: line k is cell k), then
    // resume at both thread counts.
    let journal = std::fs::read_to_string(&path).unwrap();
    let kept: Vec<&str> = journal.lines().take(5).collect();
    for jobs in [1, 8] {
        std::fs::write(&path, kept.join("\n") + "\n").unwrap();
        let resumed = d2m_sim::run_sweep_checkpointed(&s, jobs, &path, true).unwrap();
        assert_eq!(
            resumed.to_json_string(),
            reference.to_json_string(),
            "kill/resume on {jobs} jobs"
        );
    }
}

#[test]
fn systems_see_the_same_trace_per_workload() {
    // The per-cell seed excludes the system axis, so paired comparisons
    // (speedup, relative EDP) are over the exact same access stream.
    let s = spec();
    let res = run_sweep_with_jobs(&s, 4);
    for cells in res.cells.chunks(s.systems.len()) {
        for c in &cells[1..] {
            assert_eq!(c.seed, cells[0].seed, "workload {}", cells[0].workload);
            assert_eq!(c.workload, cells[0].workload);
            assert_eq!(
                c.metrics.instructions, cells[0].metrics.instructions,
                "same trace ⇒ same instruction count"
            );
        }
    }
}
